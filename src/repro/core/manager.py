"""The proposed system, assembled: content-centric display management.

:class:`ContentCentricManager` is the one-stop facade a downstream user
instantiates: given a panel and a framebuffer it builds the meter, the
section table for the panel's rate levels, the section-based governor
and (by default) the touch-boost wrapper, and drives them on the
simulation clock.  Sessions that want a different policy (a baseline,
an ablation) can pass their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..display.panel import DisplayPanel
from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..graphics.framebuffer import Framebuffer
from ..sim.engine import Simulator
from ..telemetry.hub import TelemetryHub
from ..units import ensure_positive
from .content_rate import ContentRateMeter, MeterConfig
from .governor import (
    GovernorDriver,
    GovernorPolicy,
    SectionBasedGovernor,
    TouchBoostGovernor,
)
from .section_table import SectionTable
from .watchdog import GovernorWatchdog, WatchdogConfig


@dataclass(frozen=True)
class ManagerConfig:
    """Tunables of the proposed system.

    Parameters
    ----------
    meter:
        Content-rate meter configuration (grid budget, window).
    decision_period_s:
        Governor decision period.
    touch_boost:
        Enable the touch-boosting wrapper (the paper's full system).
    boost_hold_s:
        How long a touch pins the maximum refresh rate.
    watchdog:
        Supervise the policy stack with a
        :class:`~repro.core.watchdog.GovernorWatchdog` when a fault
        injector is attached (robustness extension).  Without an
        injector the meter never fails, so no wrapper is added and the
        manager behaves exactly as before.
    watchdog_config:
        Degradation-ladder tunables for the watchdog.
    """

    meter: MeterConfig = MeterConfig()
    decision_period_s: float = 0.2
    touch_boost: bool = True
    boost_hold_s: float = 1.0
    watchdog: bool = True
    watchdog_config: WatchdogConfig = WatchdogConfig()

    def __post_init__(self) -> None:
        ensure_positive(self.decision_period_s, "decision_period_s")
        ensure_positive(self.boost_hold_s, "boost_hold_s")


class ContentCentricManager:
    """The paper's display power-management system.

    Parameters
    ----------
    sim:
        Simulation clock.
    panel:
        The display panel to control.
    framebuffer:
        The framebuffer the meter observes.
    config:
        System tunables; defaults reproduce the paper's configuration
        (9K-sample grid, 1 s window, touch boosting on).
    policy:
        Override the decision policy.  When omitted, a
        :class:`SectionBasedGovernor` over the panel's Equation (1)
        table is built, wrapped in :class:`TouchBoostGovernor` when
        ``config.touch_boost`` is set.
    injector:
        Optional fault injector (robustness extension): the meter gets
        its metering faults from it, and — when ``config.watchdog`` is
        set — the policy stack is wrapped in a
        :class:`~repro.core.watchdog.GovernorWatchdog` that fails safe
        to the panel maximum when metering breaks.
    telemetry:
        Optional telemetry hub (observability extension), threaded
        into the meter, the watchdog and the driver.  The panel is
        constructed by the caller, so instrument it there.  None — the
        default — builds the uninstrumented system.
    """

    def __init__(self, sim: Simulator, panel: DisplayPanel,
                 framebuffer: Framebuffer,
                 config: Optional[ManagerConfig] = None,
                 policy: Optional[GovernorPolicy] = None,
                 injector: Optional[FaultInjector] = None,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.config = config or ManagerConfig()
        self.panel = panel
        self.meter = ContentRateMeter(framebuffer, self.config.meter,
                                      injector=injector,
                                      telemetry=telemetry)
        self.table = SectionTable.for_panel(panel.spec)
        if policy is None:
            section = SectionBasedGovernor(self.table, self.meter)
            if self.config.touch_boost:
                policy = TouchBoostGovernor(
                    section, boost_rate_hz=panel.spec.max_refresh_hz,
                    hold_s=self.config.boost_hold_s)
            else:
                policy = section
        self.watchdog: Optional[GovernorWatchdog] = None
        if injector is not None and self.config.watchdog:
            self.watchdog = GovernorWatchdog(
                policy, failsafe_rate_hz=panel.spec.max_refresh_hz,
                config=self.config.watchdog_config,
                telemetry=telemetry)
            policy = self.watchdog
        self.policy = policy
        self.driver = GovernorDriver(sim, panel, policy,
                                     self.config.decision_period_s,
                                     telemetry=telemetry)
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin governing the panel."""
        if self._started:
            raise ConfigurationError("manager already started")
        self._started = True
        self.driver.start()

    def stop(self) -> None:
        """Stop governing; the panel keeps its last rate."""
        if not self._started:
            return
        self._started = False
        self.driver.stop()

    # ------------------------------------------------------------------
    # Event entry points
    # ------------------------------------------------------------------
    def on_touch(self, time: float) -> None:
        """Report a touch event (from the input subsystem)."""
        self.driver.notify_touch(time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def governor_name(self) -> str:
        """Display name of the active policy."""
        return self.policy.name

    def content_rate(self, now: float) -> float:
        """Convenience passthrough to the meter."""
        return self.meter.content_rate(now)
