"""The content-rate meter (Section 3.1 of the paper).

The **content rate** is the number of *meaningful* frames per second:
frame updates whose pixels actually differ from the previous frame.  It
equals the frame rate minus the redundant frame rate.

The meter hooks framebuffer updates.  On each update it compares the new
frame against the stored previous frame at the grid sample points; a
mismatch means the frame carried new content.  Timestamps of meaningful
frames feed a sliding-window rate estimate that the refresh-rate
governor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError, MeteringError
from ..faults.injector import FaultInjector
from ..faults.plan import SITE_METER_FAIL
from ..graphics.framebuffer import Framebuffer
from ..sim.tracing import EventLog
from ..telemetry.hub import TelemetryHub
from ..telemetry.profiling import timed
from ..units import ensure_positive
from .double_buffer import DoubleBuffer, SampledDoubleBuffer
from .grid import GridComparator, GridSpec

#: Span names of the metering hot path (Figure 6's measured cost).
SPAN_GRID_COMPARE = "meter.grid_compare"
SPAN_BUFFER_COPY = "meter.buffer_copy"
SPAN_CONTENT_READ = "meter.content_rate"


@dataclass(frozen=True)
class MeterConfig:
    """Configuration of the content-rate meter.

    Parameters
    ----------
    sample_count:
        Pixel budget for the comparison grid.  The paper recommends the
        9K operating point (72x128 grid on a 720x1280 panel): the
        smallest budget whose accuracy was 100 % on the worst-case
        wallpaper (Figure 6).
    window_s:
        Length of the sliding window over which the rate is computed.
    store_full_frames:
        True (paper's design) keeps full frames in the double buffer;
        False stores only grid samples (the bandwidth ablation).
    min_changed_cells:
        Significance filter (extension): a frame counts as meaningful
        only if at least this many grid cells changed.  1 reproduces
        the paper exactly (any detected change is meaningful); higher
        values ignore cosmetically tiny updates (a blinking cursor, a
        clock colon) that would otherwise hold the refresh rate up.
        Caveat: comparison is still against the immediately previous
        frame, so a change that creeps below the threshold every frame
        is never counted — keep thresholds small.
    """

    sample_count: int = 9216
    window_s: float = 1.0
    store_full_frames: bool = True
    min_changed_cells: int = 1

    def __post_init__(self) -> None:
        if self.sample_count <= 0:
            raise ConfigurationError(
                f"sample_count must be > 0, got {self.sample_count}")
        ensure_positive(self.window_s, "window_s")
        if self.min_changed_cells < 1:
            raise ConfigurationError(
                f"min_changed_cells must be >= 1, got "
                f"{self.min_changed_cells}")


class ContentRateMeter:
    """Measures the content rate of a framebuffer at runtime.

    Parameters
    ----------
    framebuffer:
        The framebuffer to monitor.  The meter registers itself as an
        update listener; every frame update triggers one grid
        comparison.
    config:
        Meter configuration; defaults to the paper's recommended
        operating point.
    injector:
        Optional fault injector.  When present, content-rate reads can
        fail (``meter_fail`` site): the snapshot/compare machinery is
        treated as having lost its previous-frame copy mid-read and
        :meth:`content_rate` raises :class:`~repro.errors.MeteringError`
        with structured context.  None leaves the meter exactly as
        before.
    telemetry:
        Optional telemetry hub.  When present the metering hot path is
        profiled (``meter.grid_compare``, ``meter.buffer_copy`` spans
        per frame, ``meter.content_rate`` per read) and per-frame
        totals are counted under ``meter.*``.  None — the default —
        runs the original code path with no timing calls.
    """

    def __init__(self, framebuffer: Framebuffer,
                 config: Optional[MeterConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.config = config or MeterConfig()
        self._framebuffer = framebuffer
        self._injector = injector
        self._telemetry = telemetry
        self._read_failures = 0
        shape = (framebuffer.height, framebuffer.width)
        self.grid = GridSpec.from_sample_count(shape,
                                               self.config.sample_count)
        self.comparator = GridComparator(self.grid)
        self._store: Union[DoubleBuffer, SampledDoubleBuffer]
        if self.config.store_full_frames:
            self._store = DoubleBuffer(framebuffer.shape)
        else:
            self._store = SampledDoubleBuffer(self.grid)
        self._frames = EventLog("frame_updates")
        self._meaningful = EventLog("meaningful_frames")
        # Capture what the screen already shows: the first observed
        # update is compared against the existing framebuffer contents,
        # exactly like the compositor's own redundancy ground truth.
        # (On the device the extra buffer would likewise be primed from
        # the live framebuffer when metering starts.)
        self._store.capture(framebuffer.pixels)
        framebuffer.add_update_listener(self._on_frame_update)

    # ------------------------------------------------------------------
    # Frame-update hook
    # ------------------------------------------------------------------
    def _on_frame_update(self, time: float, framebuffer: Framebuffer) -> None:
        pixels = framebuffer.pixels
        self._frames.append(time)
        previous = self._store.previous
        telemetry = self._telemetry
        if telemetry is None:
            if framebuffer.last_write_unchanged:
                # The compositor proved this update's pixels identical
                # to the previous frame (coherence fast path): the
                # comparison outcome is known — not meaningful — and
                # the capture would re-store identical bytes.  Keep
                # the accounting exactly as the full path would have
                # left it: frames_equal would have bumped the
                # comparison counter (count_changed does not), and the
                # store charges the copy it conceptually performed.
                if self.config.min_changed_cells == 1:
                    self.comparator.note_equal()
                self._store.note_redundant_capture()
                return
            # The uninstrumented fast path: no clock reads, no
            # allocations beyond the comparison itself.
            meaningful = self._frame_meaningful(pixels, previous)
            if meaningful:
                self._meaningful.append(time)
            self._store.capture(pixels)
            return
        with telemetry.span(SPAN_GRID_COMPARE, time):
            meaningful = self._frame_meaningful(pixels, previous)
        if meaningful:
            self._meaningful.append(time)
            telemetry.metrics.counter("meter.meaningful_frames").inc()
        telemetry.metrics.counter("meter.frames").inc()
        with telemetry.span(SPAN_BUFFER_COPY, time):
            self._store.capture(pixels)

    def _frame_meaningful(self, pixels, previous) -> bool:
        """The frame-diff judgement (the grid-comparison hot path)."""
        if self.config.min_changed_cells == 1:
            return not self.comparator.frames_equal(pixels, previous)
        changed = self.comparator.count_changed(pixels, previous)
        return changed >= self.config.min_changed_cells

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------
    @timed(SPAN_CONTENT_READ, time_arg=0)
    def content_rate(self, now: float,
                     window_s: Optional[float] = None) -> float:
        """Meaningful frames per second over the trailing window.

        Raises
        ------
        MeteringError
            When an injected ``meter_fail`` fault fires for this read
            (never without an injector): the snapshot/compare pipeline
            failed, so no rate estimate is available this decision.
        """
        if self._injector is not None and self._injector.fires(
                SITE_METER_FAIL, now, detail="content_rate read"):
            self._read_failures += 1
            raise MeteringError(
                f"content-rate read failed at t={now:.3f}s: injected "
                f"framebuffer snapshot/compare fault",
                context={"subsystem": "meter", "sim_time_s": now,
                         "component": "content_rate"})
        return self._windowed_rate(self._meaningful, now, window_s)

    def frame_rate(self, now: float,
                   window_s: Optional[float] = None) -> float:
        """All frame updates per second over the trailing window."""
        return self._windowed_rate(self._frames, now, window_s)

    def redundant_rate(self, now: float,
                       window_s: Optional[float] = None) -> float:
        """Redundant frames per second: frame rate minus content rate."""
        return (self.frame_rate(now, window_s) -
                self.content_rate(now, window_s))

    def content_rates_batch(self, times: "np.ndarray",
                            window_s: Optional[float] = None
                            ) -> "np.ndarray":
        """Content rate at many query times in one vectorised pass.

        Element ``i`` equals ``content_rate(times[i], window_s)``
        exactly: the window arithmetic is the same float64 operations
        elementwise, and the windowed count uses
        :meth:`~repro.sim.tracing.EventLog.count_in_batch` (searchsorted
        == bisect).  The vector engine uses this to price a whole run
        of governor decisions against a static meaningful-frame log.

        Only valid without a fault injector: injected read failures
        are per-read control flow a batch cannot replicate.
        """
        if self._injector is not None:
            raise MeteringError(
                "content_rates_batch cannot replicate injected "
                "meter faults; use per-read content_rate")
        window = self.config.window_s if window_s is None else \
            ensure_positive(window_s, "window_s")
        now = np.asarray(times, dtype=np.float64)
        start = np.maximum(0.0, now - window)
        span = now - start
        counts = self._meaningful.count_in_batch(start, now)
        rates = np.zeros_like(now)
        positive = span > 0
        np.divide(counts, span, out=rates, where=positive)
        return rates

    def _windowed_rate(self, log: EventLog, now: float,
                       window_s: Optional[float]) -> float:
        window = self.config.window_s if window_s is None else \
            ensure_positive(window_s, "window_s")
        start = max(0.0, now - window)
        span = now - start
        if span <= 0:
            return 0.0
        return log.count_in(start, now) / span

    # ------------------------------------------------------------------
    # Session totals
    # ------------------------------------------------------------------
    @property
    def frame_updates(self) -> EventLog:
        """Timestamps of every observed frame update."""
        return self._frames

    @property
    def meaningful_frames(self) -> EventLog:
        """Timestamps of frames the meter judged meaningful."""
        return self._meaningful

    @property
    def total_frames(self) -> int:
        """Total frame updates observed."""
        return len(self._frames)

    @property
    def total_meaningful(self) -> int:
        """Total frames judged meaningful."""
        return len(self._meaningful)

    @property
    def total_redundant(self) -> int:
        """Total frames judged redundant."""
        return self.total_frames - self.total_meaningful

    @property
    def bytes_copied(self) -> int:
        """Previous-frame storage traffic (double-buffer accounting)."""
        return self._store.bytes_copied

    @property
    def read_failures(self) -> int:
        """Content-rate reads that failed under fault injection."""
        return self._read_failures

    def detach(self) -> None:
        """Stop observing the framebuffer."""
        self._framebuffer.remove_update_listener(self._on_frame_update)


def measure_accuracy(meter_meaningful: int, truth_meaningful: int) -> float:
    """Metering error rate against ground truth, as a fraction.

    Figure 6 reports ``error rate (%)``; this returns the fraction
    ``|measured - actual| / actual`` (0.0 when both are zero).
    """
    if truth_meaningful == 0:
        return 0.0 if meter_meaningful == 0 else float("inf")
    return abs(meter_meaningful - truth_meaningful) / truth_meaningful


def sample_counts_for_paper_budgets() -> "dict[str, int]":
    """The Figure 6 pixel budgets (label -> sample count)."""
    from .grid import PAPER_PIXEL_BUDGETS
    return dict(PAPER_PIXEL_BUDGETS)
