"""Hysteresis wrapper for refresh-rate policies (extension).

The paper's section-based governor re-evaluates every decision period
and switches the panel whenever the table says so.  Panel mode switches
are not free on real hardware (the scan reconfigures at a frame
boundary, and some panels flicker when switching), so a production
implementation wants *asymmetric damping*: follow increases immediately
(quality is at stake — this is the same instinct as touch boosting) but
require the lower rate to be requested several times in a row before
stepping down (saving power is never urgent).

This is a faithful "future work" extension: the paper's own
section-table thresholds already act as amplitude hysteresis; this adds
time hysteresis on the downward direction.  The ablation benchmark
``benchmarks/ablations/bench_ablation_hysteresis.py`` quantifies the
trade: fewer rate switches for a small power give-back at equal
quality.
"""

from __future__ import annotations

from typing import Optional

from ..units import ensure_positive_int
from .governor import GovernorPolicy


class HysteresisGovernor(GovernorPolicy):
    """Damps downward rate changes of an inner policy.

    Parameters
    ----------
    inner:
        The policy producing raw decisions.
    down_confirmations:
        Number of *consecutive* decisions at or below a candidate rate
        required before the rate is allowed to drop.  1 reproduces the
        inner policy exactly.
    """

    def __init__(self, inner: GovernorPolicy,
                 down_confirmations: int = 3) -> None:
        self.inner = inner
        self.down_confirmations = ensure_positive_int(
            down_confirmations, "down_confirmations")
        self.name = f"{inner.name}+hysteresis"
        self._current: Optional[float] = None
        self._pending_down: Optional[float] = None
        self._down_count = 0
        self._suppressed_downs = 0

    @property
    def suppressed_downs(self) -> int:
        """Downward switches damped away (thrash avoided)."""
        return self._suppressed_downs

    def select_rate(self, now: float) -> float:
        raw = self.inner.select_rate(now)
        if self._current is None or raw >= self._current:
            # Upward (or first, or equal) decisions pass through and
            # reset any pending down-step; interrupted confirmations
            # were thrash the damping absorbed.
            if self._pending_down is not None:
                self._suppressed_downs += self._down_count
            self._current = raw
            self._pending_down = None
            self._down_count = 0
            return raw
        # Downward decision: require consecutive confirmations.  The
        # candidate tracks the *highest* rate seen during confirmation,
        # so an oscillating signal steps down conservatively.
        if self._pending_down is None or raw > self._pending_down:
            self._pending_down = raw
        self._down_count += 1
        if self._down_count >= self.down_confirmations:
            self._current = self._pending_down
            self._pending_down = None
            self._down_count = 0
        return self._current

    def on_touch(self, time: float) -> Optional[float]:
        immediate = self.inner.on_touch(time)
        if immediate is not None:
            # A touch boost is an upward jump: adopt it and clear any
            # pending down-step.
            self._current = max(immediate, self._current or immediate)
            self._pending_down = None
            self._down_count = 0
        return immediate
