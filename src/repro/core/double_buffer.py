"""Double buffering for previous-frame storage (Section 3.1).

Comparing the current framebuffer against the previous one needs the
previous one to still exist after it has been overwritten on screen.
The paper keeps an extra buffer and flips between two slots — while one
slot is being filled with the new frame (asynchronous I/O), the other
still holds the comparison reference, so metering never blocks the
update path.

In simulation there is no real asynchronous I/O to win back, but the
structure is preserved faithfully because its *accounting* matters: the
number of full-frame copies is the memory-bandwidth cost of the scheme,
and one ablation (:class:`SampledDoubleBuffer`) shows that storing only
the grid samples cuts that cost by the grid's coverage fraction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import MeteringError
from .grid import GridSpec


class DoubleBuffer:
    """Two full-frame slots flipped on every capture.

    Usage pattern (per frame update)::

        previous = buf.previous          # may be None on the first frame
        # ... compare current framebuffer against `previous` ...
        buf.capture(framebuffer.pixels)  # store for the next comparison
    """

    def __init__(self, shape: Tuple[int, ...],
                 dtype: np.dtype = np.uint8) -> None:
        if len(shape) < 2:
            raise MeteringError(
                f"double buffer needs an image shape, got {shape}")
        self._slots = (np.zeros(shape, dtype=dtype),
                       np.zeros(shape, dtype=dtype))
        self._front = 0
        self._captures = 0
        self._bytes_copied = 0

    @property
    def captures(self) -> int:
        """Number of frames stored so far."""
        return self._captures

    @property
    def bytes_copied(self) -> int:
        """Total bytes moved into the buffer (bandwidth accounting)."""
        return self._bytes_copied

    @property
    def previous(self) -> Optional[np.ndarray]:
        """The most recently captured frame, or None before the first
        capture.  The returned array stays valid until the capture
        after next (two slots deep)."""
        if self._captures == 0:
            return None
        return self._slots[self._front]

    def capture(self, pixels: np.ndarray) -> None:
        """Copy ``pixels`` into the back slot and flip.

        After this call :attr:`previous` returns (a copy of) ``pixels``.
        """
        back = 1 - self._front
        slot = self._slots[back]
        if pixels.shape != slot.shape:
            raise MeteringError(
                f"capture shape {pixels.shape} does not match buffer "
                f"shape {slot.shape}")
        np.copyto(slot, pixels)
        self._front = back
        self._captures += 1
        self._bytes_copied += slot.nbytes

    def note_redundant_capture(self, count: int = 1) -> None:
        """Account for ``count`` captures identical to the stored frame.

        The coherence fast path proves the new frame equals the stored
        previous one, so copying would re-store the same bytes; the
        capture still *counts* — including its bandwidth charge,
        because the real scheme would have performed the copy — and
        :attr:`previous` keeps returning the identical contents.  The
        vector engine's bulk idle-submit skip accounts a whole run of
        redundant captures in one call.
        """
        if self._captures == 0:
            raise MeteringError(
                "no previous frame to be redundant against")
        self._captures += count
        self._bytes_copied += self._slots[self._front].nbytes * count


class SampledDoubleBuffer:
    """Double buffer that stores only the grid samples of each frame.

    Ablation of the paper's design: since the comparator only ever reads
    the grid points, storing just those points is sufficient for
    metering and shrinks the copy cost from the full frame to
    ``grid.sample_count`` pixels.  The trade-off is that the stored
    frame cannot be re-compared under a *different* grid (the paper's
    full-frame buffer can), so runtime grid reconfiguration needs one
    warm-up frame.
    """

    def __init__(self, grid: GridSpec, channels: int = 3,
                 dtype: np.dtype = np.uint8) -> None:
        self.grid = grid
        shape = (grid.grid_height, grid.grid_width, channels)
        self._slots = (np.zeros(shape, dtype=dtype),
                       np.zeros(shape, dtype=dtype))
        self._front = 0
        self._captures = 0
        self._bytes_copied = 0

    @property
    def captures(self) -> int:
        """Number of frames stored so far."""
        return self._captures

    @property
    def bytes_copied(self) -> int:
        """Total bytes moved into the buffer."""
        return self._bytes_copied

    @property
    def previous(self) -> Optional[np.ndarray]:
        """Grid samples of the most recent capture (None before any)."""
        if self._captures == 0:
            return None
        return self._slots[self._front]

    def capture(self, pixels: np.ndarray) -> None:
        """Sample ``pixels`` on the grid into the back slot and flip."""
        back = 1 - self._front
        slot = self._slots[back]
        sampled = self.grid.sample(pixels)
        if sampled.shape != slot.shape:
            raise MeteringError(
                f"sampled shape {sampled.shape} does not match slot "
                f"shape {slot.shape}")
        np.copyto(slot, sampled)
        self._front = back
        self._captures += 1
        self._bytes_copied += slot.nbytes

    def note_redundant_capture(self, count: int = 1) -> None:
        """Account for ``count`` captures identical to the stored frame.

        Same contract as :meth:`DoubleBuffer.note_redundant_capture`:
        counts the captures and their bandwidth without moving bytes.
        """
        if self._captures == 0:
            raise MeteringError(
                "no previous frame to be redundant against")
        self._captures += count
        self._bytes_copied += self._slots[self._front].nbytes * count
