"""The governor watchdog: graceful degradation under metering faults.

The section-based governor is only as healthy as its content-rate
meter.  On real hardware the framebuffer snapshot/compare can fail —
and a governor that crashes (or silently keeps a stale low rate) would
strand the panel at 20 Hz while the user scrolls.  The watchdog wraps
the policy stack and turns metering failures into a three-state
degradation ladder, trading power for quality exactly like the paper's
touch-boost philosophy (when in doubt, refresh fast):

::

                 read ok                     read ok
    +---------+ <-------- +----------+ <-------------- +----------+
    | NOMINAL |           | RETRYING |                 | FAILSAFE |
    +---------+ --------> +----------+ --------------> +----------+
               read fails              N consecutive
               (hold last              failures (pin
               good rate,              panel maximum,
               backed-off              keep probing)
               retries)

* **NOMINAL** — every decision consults the wrapped policy normally.
* **RETRYING** — a read failed; the last good rate is held and the
  meter is re-probed with bounded exponential backoff *in sim time*
  (each consecutive failure doubles the wait, up to a cap).
* **FAILSAFE** — ``fail_threshold`` consecutive failures: the panel is
  pinned at the fail-safe (maximum) rate.  Quality is preserved at full
  power cost until a probe succeeds, at which point content-centric
  control re-engages immediately.

The wrapper is transparent when nothing fails: it returns exactly the
inner policy's rates and reports the inner policy's name, so fault-free
sessions are numerically identical with or without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError, MeteringError
from ..telemetry.events import EVENT_WATCHDOG_STATE
from ..telemetry.hub import TelemetryHub
from ..units import ensure_positive
from .governor import GovernorPolicy

#: Watchdog state names (stringly-typed for cheap export).
STATE_NOMINAL = "nominal"
STATE_RETRYING = "retrying"
STATE_FAILSAFE = "failsafe"


@dataclass(frozen=True)
class WatchdogConfig:
    """Degradation-ladder tunables.

    Parameters
    ----------
    fail_threshold:
        Consecutive metering failures before failing safe to the
        maximum rate.
    backoff_initial_s:
        Wait after the first failure before the meter is probed again.
    backoff_multiplier:
        Growth factor of the wait per additional consecutive failure.
    backoff_max_s:
        Upper bound on the probe wait — the watchdog never stops
        probing for longer than this, so recovery latency is bounded.
    """

    fail_threshold: int = 3
    backoff_initial_s: float = 0.2
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ConfigurationError(
                f"fail_threshold must be >= 1, got "
                f"{self.fail_threshold}")
        ensure_positive(self.backoff_initial_s, "backoff_initial_s")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}")
        ensure_positive(self.backoff_max_s, "backoff_max_s")


class GovernorWatchdog(GovernorPolicy):
    """Fail-safe wrapper around any :class:`GovernorPolicy`.

    Parameters
    ----------
    inner:
        The policy stack to supervise (typically the section-based
        governor, possibly already wrapped in touch boosting).
    failsafe_rate_hz:
        The rate pinned while failed safe — the panel maximum, so a
        broken meter costs power, never quality.
    config:
        Degradation-ladder tunables.
    telemetry:
        Optional telemetry hub; every ladder move becomes a
        ``watchdog_state`` event.  Counters are *not* incremented here
        — :meth:`summary_dict` stays the single emission path for
        watchdog totals (the session snapshots it into the metrics
        registry at the end, so ``faults`` and ``telemetry`` schemas
        never double-book).
    """

    def __init__(self, inner: GovernorPolicy, failsafe_rate_hz: float,
                 config: Optional[WatchdogConfig] = None,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.inner = inner
        self._telemetry = telemetry
        self.failsafe_rate_hz = ensure_positive(failsafe_rate_hz,
                                                "failsafe_rate_hz")
        self.config = config or WatchdogConfig()
        # Transparent wrapper: traces and summaries keep reporting the
        # supervised policy's name.
        self.name = inner.name
        self._state = STATE_NOMINAL
        self._held_rate = failsafe_rate_hz
        self._consecutive_failures = 0
        self._retry_at = float("-inf")
        self._meter_failures = 0
        self._failsafe_entries = 0
        self._recoveries = 0
        self._transitions: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    def select_rate(self, now: float) -> float:
        if self._state != STATE_NOMINAL and now < self._retry_at:
            # Backed off: do not touch the meter until the retry time.
            return self._degraded_rate()
        try:
            rate = self.inner.select_rate(now)
        except MeteringError:
            self._on_failure(now)
            return self._degraded_rate()
        self._on_success(now)
        self._held_rate = rate
        return rate

    def on_touch(self, time: float) -> Optional[float]:
        try:
            return self.inner.on_touch(time)
        except MeteringError:
            # A policy that needs the meter to answer a touch is as
            # degraded as a failed decision; boosting to the fail-safe
            # rate is what touch handling wants anyway.
            self._on_failure(time)
            return self.failsafe_rate_hz

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _on_failure(self, now: float) -> None:
        self._meter_failures += 1
        self._consecutive_failures += 1
        backoff = min(
            self.config.backoff_initial_s *
            self.config.backoff_multiplier **
            (self._consecutive_failures - 1),
            self.config.backoff_max_s)
        self._retry_at = now + backoff
        if (self._consecutive_failures >= self.config.fail_threshold
                and self._state != STATE_FAILSAFE):
            self._enter(now, STATE_FAILSAFE)
            self._failsafe_entries += 1
        elif self._state == STATE_NOMINAL:
            self._enter(now, STATE_RETRYING)

    def _on_success(self, now: float) -> None:
        if self._state != STATE_NOMINAL:
            if self._state == STATE_FAILSAFE:
                self._recoveries += 1
            self._enter(now, STATE_NOMINAL)
        self._consecutive_failures = 0
        self._retry_at = float("-inf")

    def _enter(self, now: float, state: str) -> None:
        previous = self._state
        self._state = state
        self._transitions.append((now, state))
        if self._telemetry is not None:
            self._telemetry.emit(EVENT_WATCHDOG_STATE, now,
                                 from_state=previous, to_state=state)

    def _degraded_rate(self) -> float:
        if self._state == STATE_FAILSAFE:
            return self.failsafe_rate_hz
        return self._held_rate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current ladder state: nominal / retrying / failsafe."""
        return self._state

    @property
    def meter_failures(self) -> int:
        """Total metering failures absorbed."""
        return self._meter_failures

    @property
    def failsafe_entries(self) -> int:
        """Times the ladder dropped to the fail-safe state."""
        return self._failsafe_entries

    @property
    def recoveries(self) -> int:
        """Times content-centric control re-engaged from fail-safe."""
        return self._recoveries

    @property
    def consecutive_failures(self) -> int:
        """Current unbroken failure streak (0 when healthy)."""
        return self._consecutive_failures

    @property
    def transitions(self) -> Tuple[Tuple[float, str], ...]:
        """Every state change as ``(sim time, new state)``."""
        return tuple(self._transitions)

    def summary_dict(self) -> dict:
        """JSON-ready counters (feeds session summaries)."""
        return {
            "watchdog_state": self._state,
            "meter_failures": self._meter_failures,
            "failsafe_entries": self._failsafe_entries,
            "recoveries": self._recoveries,
        }
