"""Grid-based framebuffer comparison (Section 3.1 of the paper).

Comparing two full 720x1280 framebuffers takes longer than one V-Sync
interval at 60 Hz (the paper measures >40 ms against a 16.67 ms budget),
so it cannot run per frame.  The paper instead overlays a coarse grid on
the screen and compares only the **centre pixel of each grid cell**.
The five operating points evaluated in Figure 6 are:

==========  ===========  ==============
Budget      Grid (WxH)   Cell size (px)
==========  ===========  ==============
2K          36 x 64      20 x 20
4K          48 x 85      15 x 15
9K          72 x 128     10 x 10
36K         144 x 256    5 x 5
921K        720 x 1280   1 x 1 (all)
==========  ===========  ==============

:class:`GridSpec` computes the sampled pixel coordinates for a buffer
shape; :class:`GridComparator` performs the equality test between two
buffers restricted to those coordinates.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import MeteringError
from ..units import ensure_positive_int

#: The paper's Figure 6 pixel budgets, keyed by their label.
PAPER_PIXEL_BUDGETS = {
    "2K": 36 * 64,
    "4K": 48 * 85,
    "9K": 72 * 128,
    "36K": 144 * 256,
    "921K": 720 * 1280,
}


def gather_samples(pixels: np.ndarray, rows: np.ndarray,
                   cols: np.ndarray,
                   flat: "np.ndarray | None" = None) -> np.ndarray:
    """Gather grid sample points from one buffer or a stacked batch.

    The single implementation of the sample-point extraction: scalar
    metering calls it with a ``(height, width, channels)`` buffer, the
    vector engine with an ``(n, height, width, channels)`` stack — the
    gather is the same expression either way, so the two paths cannot
    drift.  Returns a materialised ``(..., gh, gw, channels)`` array
    (never a view into the live buffer).

    The gather runs as one :func:`numpy.take` over flattened
    ``row * width + col`` indices — numpy's fast contiguous-gather
    path, several times quicker than the equivalent outer fancy
    indexing on small buffers, picking out exactly the same sample
    pixels.  ``flat`` accepts the precomputed index vector
    (:class:`GridSpec` caches it) so per-frame callers skip rebuilding
    it.
    """
    width = pixels.shape[-2]
    channels = pixels.shape[-1]
    if flat is None:
        flat = (rows[:, None] * width + cols[None, :]).ravel()
    stacked = pixels.reshape(pixels.shape[:-3] + (-1, channels))
    gathered = np.take(stacked, flat, axis=-2)
    return gathered.reshape(pixels.shape[:-3]
                            + (len(rows), len(cols), channels))


class GridSpec:
    """Sampling grid over a ``(height, width)`` pixel buffer.

    The grid has ``grid_height x grid_width`` cells; the sample point of
    each cell is its centre pixel.  Construct directly from grid
    dimensions, or use :meth:`from_sample_count` /
    :meth:`from_cell_size` to derive dimensions from a pixel budget.
    """

    def __init__(self, buffer_shape: Tuple[int, int],
                 grid_height: int, grid_width: int) -> None:
        height, width = buffer_shape
        ensure_positive_int(height, "buffer height")
        ensure_positive_int(width, "buffer width")
        ensure_positive_int(grid_height, "grid_height")
        ensure_positive_int(grid_width, "grid_width")
        if grid_height > height or grid_width > width:
            raise MeteringError(
                f"grid {grid_height}x{grid_width} exceeds buffer "
                f"{height}x{width}")
        self.buffer_shape = (height, width)
        self.grid_height = grid_height
        self.grid_width = grid_width
        # Centre pixel of each cell: cell i spans
        # [i*H/gh, (i+1)*H/gh); its centre row is (i + 0.5) * H / gh.
        self._rows = np.minimum(
            ((np.arange(grid_height) + 0.5) * height / grid_height)
            .astype(np.intp),
            height - 1)
        self._cols = np.minimum(
            ((np.arange(grid_width) + 0.5) * width / grid_width)
            .astype(np.intp),
            width - 1)
        # Flattened row*width+col sample indices, precomputed once:
        # the per-frame gather is a single np.take over these.
        self._flat = (self._rows[:, None] * width
                      + self._cols[None, :]).ravel()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sample_count(cls, buffer_shape: Tuple[int, int],
                          sample_count: int) -> "GridSpec":
        """Build a grid of roughly ``sample_count`` square cells.

        The cell is chosen square (as in the paper's operating points),
        so the actual sample count can differ slightly from the request.
        """
        height, width = buffer_shape
        ensure_positive_int(sample_count, "sample_count")
        total = height * width
        if sample_count >= total:
            return cls(buffer_shape, height, width)
        cell = math.sqrt(total / sample_count)
        gh = max(1, min(height, round(height / cell)))
        gw = max(1, min(width, round(width / cell)))
        return cls(buffer_shape, gh, gw)

    @classmethod
    def from_cell_size(cls, buffer_shape: Tuple[int, int],
                       cell_px: int) -> "GridSpec":
        """Build a grid with square cells of ``cell_px`` pixels."""
        height, width = buffer_shape
        ensure_positive_int(cell_px, "cell_px")
        gh = max(1, height // cell_px)
        gw = max(1, width // cell_px)
        return cls(buffer_shape, gh, gw)

    @classmethod
    def full(cls, buffer_shape: Tuple[int, int]) -> "GridSpec":
        """The degenerate all-pixels grid (the paper's 921K point)."""
        return cls(buffer_shape, buffer_shape[0], buffer_shape[1])

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        """Number of sampled pixels."""
        return self.grid_height * self.grid_width

    @property
    def is_full(self) -> bool:
        """True when every pixel is sampled."""
        return (self.grid_height, self.grid_width) == self.buffer_shape

    @property
    def sample_rows(self) -> np.ndarray:
        """Sampled row indices (length ``grid_height``)."""
        return self._rows.copy()

    @property
    def sample_cols(self) -> np.ndarray:
        """Sampled column indices (length ``grid_width``)."""
        return self._cols.copy()

    @property
    def coverage_fraction(self) -> float:
        """Sampled pixels as a fraction of the buffer."""
        return self.sample_count / (self.buffer_shape[0] *
                                    self.buffer_shape[1])

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, pixels: np.ndarray) -> np.ndarray:
        """Extract the grid samples from a pixel buffer.

        Returns a ``(grid_height, grid_width, channels)`` array (a view
        is never returned; samples are materialised so they remain valid
        after the buffer mutates — that is the double-buffer's job for
        full frames, and this method's job for sampled frames).
        """
        self._check_shape(pixels)
        if self.is_full:
            return pixels.copy()
        return gather_samples(pixels, self._rows, self._cols,
                              flat=self._flat)

    def sample_batch(self, stack: np.ndarray) -> np.ndarray:
        """Extract grid samples from ``n`` stacked buffers at once.

        ``stack`` is ``(n, height, width, channels)`` — the vector
        engine's struct-of-arrays view of ``n`` framebuffers; the
        result is ``(n, grid_height, grid_width, channels)`` from a
        single gather.  Row ``i`` is byte-identical to
        ``sample(stack[i])``.
        """
        if stack.ndim != 4 or stack.shape[1:3] != self.buffer_shape:
            raise MeteringError(
                f"batch shape {stack.shape} does not match grid's "
                f"expected (n, {self.buffer_shape[0]}, "
                f"{self.buffer_shape[1]}, channels)")
        if self.is_full:
            return stack.copy()
        return gather_samples(stack, self._rows, self._cols,
                              flat=self._flat)

    def _check_shape(self, pixels: np.ndarray) -> None:
        if pixels.shape[:2] != self.buffer_shape:
            raise MeteringError(
                f"buffer shape {pixels.shape[:2]} does not match grid's "
                f"expected {self.buffer_shape}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GridSpec {self.grid_width}x{self.grid_height} over "
                f"{self.buffer_shape[1]}x{self.buffer_shape[0]} "
                f"({self.sample_count} samples)>")


class GridComparator:
    """Equality test between two buffers restricted to a grid.

    This is the hot path the paper benchmarks in Figure 6; it does no
    allocation beyond numpy's comparison temporaries and counts its own
    invocations for overhead accounting.
    """

    def __init__(self, grid: GridSpec) -> None:
        self.grid = grid
        self._comparisons = 0
        self._mismatches = 0

    @property
    def comparisons(self) -> int:
        """Total equality tests performed."""
        return self._comparisons

    @property
    def mismatches(self) -> int:
        """Tests that found the frames different."""
        return self._mismatches

    def note_equal(self, count: int = 1) -> None:
        """Account for ``count`` comparisons proven equal without running.

        The coherence fast path knows current and previous frames agree
        at every pixel — a fortiori at every sample point — so the
        gather-and-compare is skipped, but the comparison still counts
        toward overhead accounting exactly as if it had run.  The vector
        engine's bulk idle-submit skip accounts a whole run of such
        comparisons in one call.
        """
        self._comparisons += count

    def count_changed(self, current: np.ndarray,
                      previous: np.ndarray) -> int:
        """Number of grid sample points whose pixel differs.

        The magnitude of a change, in grid cells.  ``frames_equal`` is
        ``count_changed == 0``; the significance-filtering extension
        (``MeterConfig.min_changed_cells``) uses the count to ignore
        cosmetically tiny changes (a blinking cursor, a clock colon)
        that would otherwise hold the refresh rate up.
        """
        grid = self.grid
        grid._check_shape(current)
        channels = current.shape[-1]
        cur = self._gather(current)
        if previous.shape == current.shape:
            prev = self._gather(previous)
        elif previous.shape[:2] == (grid.grid_height, grid.grid_width):
            prev = previous.reshape(-1, channels)
        else:
            raise MeteringError(
                f"previous frame shape {previous.shape} matches neither "
                f"the buffer {grid.buffer_shape} nor the grid "
                f"({grid.grid_height}, {grid.grid_width})")
        return int((cur != prev).any(axis=-1).sum())

    def _gather(self, pixels: np.ndarray) -> np.ndarray:
        """Sample points of one full buffer, flattened to ``(n, channels)``.

        Sparse grids ride numpy's contiguous ``np.take`` gather.  The
        all-pixels grid keeps the per-point indexed gather instead:
        Figure 6 prices what a full comparison *costs*, and the paper's
        implementation walks every grid point uniformly — shortcutting
        the full case would underprice the very configuration the
        figure exists to rule out.
        """
        grid = self.grid
        channels = pixels.shape[-1]
        if grid.is_full:
            gathered = pixels[grid._rows[:, None], grid._cols[None, :]]
            return gathered.reshape(-1, channels)
        return np.take(pixels.reshape(-1, channels), grid._flat,
                       axis=0)

    def frames_equal(self, current: np.ndarray,
                     previous: np.ndarray) -> bool:
        """True if the two buffers agree at every grid sample point.

        ``current`` is a live pixel buffer of the grid's expected shape;
        ``previous`` may be either a full buffer of the same shape or a
        pre-sampled ``(grid_height, grid_width, channels)`` array (the
        storage format of :class:`~repro.core.double_buffer.
        SampledDoubleBuffer`).
        """
        grid = self.grid
        grid._check_shape(current)
        self._comparisons += 1
        channels = current.shape[-1]
        if previous.shape == current.shape:
            # Gather the sample points and compare them.  Deliberately
            # *no* memcmp fast path for the all-pixels grid — Figure 6
            # sweeps the cost of the per-sample comparison, and the
            # paper's implementation walks grid points uniformly
            # whatever their count (see _gather).
            equal = bool(
                (self._gather(current) == self._gather(previous)).all())
        elif previous.shape[:2] == (grid.grid_height, grid.grid_width):
            equal = bool(
                (self._gather(current)
                 == previous.reshape(-1, channels)).all())
        else:
            raise MeteringError(
                f"previous frame shape {previous.shape} matches neither "
                f"the buffer {grid.buffer_shape} nor the grid "
                f"({grid.grid_height}, {grid.grid_width})")
        if not equal:
            self._mismatches += 1
        return equal
