"""Refresh-rate governors (Section 3.2 of the paper).

A *policy* decides which refresh rate the panel should run at, given the
meter's current content rate; the :class:`GovernorDriver` applies a
policy periodically and forwards touch events for immediate overrides.

Three policies are provided here:

* :class:`SectionBasedGovernor` — the paper's section-table control.
* :class:`TouchBoostGovernor` — wraps another policy and forces the
  maximum rate for a hold period after every touch event, eliminating
  the ramp-up latency that drops frames on sudden interaction.
* :class:`NaiveMatchGovernor` — the paper's *failed first attempt*
  ("adjust the refresh rate to the current content rate"), kept as a
  baseline because its deadlock is an important negative result: once
  the rate drops, V-Sync clips the measurable content rate and the
  governor can never climb back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..display.panel import DisplayPanel
from ..sim.engine import PeriodicTask, Simulator
from ..sim.tracing import TimeSeries
from ..telemetry.events import (
    EVENT_SECTION_TRANSITION,
    EVENT_TOUCH_BOOST,
)
from ..telemetry.hub import TelemetryHub
from ..units import ensure_positive
from .content_rate import ContentRateMeter
from .section_table import SectionTable


class GovernorPolicy:
    """Interface every refresh-rate policy implements."""

    #: Display name used in traces and reports.
    name = "policy"

    def select_rate(self, now: float) -> float:
        """The refresh rate (Hz) the panel should use right now."""
        raise NotImplementedError

    def on_touch(self, time: float) -> Optional[float]:
        """React to a touch event.

        Returns a rate to apply *immediately* (bypassing the decision
        period), or None when touch does not affect this policy.
        """
        del time
        return None


class SectionBasedGovernor(GovernorPolicy):
    """The paper's section-based control: content rate -> table lookup."""

    name = "section-based"

    def __init__(self, table: SectionTable, meter: ContentRateMeter,
                 window_s: Optional[float] = None) -> None:
        self.table = table
        self.meter = meter
        self.window_s = None if window_s is None else ensure_positive(
            window_s, "window_s")

    def select_rate(self, now: float) -> float:
        content = self.meter.content_rate(now, self.window_s)
        return self.table.lookup(content)


class NaiveMatchGovernor(GovernorPolicy):
    """Match the refresh rate directly to the content rate.

    Chooses the lowest panel level that is >= the measured content rate.
    This is the paper's initial design that "did not work adequately":
    with content at 50 fps and the rate lowered to 20 Hz, the meter can
    never observe more than 20 fps, so the governor latches low.
    """

    name = "naive-match"

    def __init__(self, refresh_rates_hz: Sequence[float],
                 meter: ContentRateMeter,
                 window_s: Optional[float] = None) -> None:
        if not refresh_rates_hz:
            raise ConfigurationError(
                "naive governor needs at least one refresh rate")
        self.rates = tuple(sorted(float(r) for r in refresh_rates_hz))
        self.meter = meter
        self.window_s = None if window_s is None else ensure_positive(
            window_s, "window_s")

    def select_rate(self, now: float) -> float:
        content = self.meter.content_rate(now, self.window_s)
        for rate in self.rates:
            if rate >= content:
                return rate
        return self.rates[-1]


class TouchBoostGovernor(GovernorPolicy):
    """Touch boosting: maximum rate for ``hold_s`` after every touch.

    The section-based controller reacts to a content-rate *measurement*,
    which V-Sync clips at the current refresh rate — so it ramps up one
    table section at a time after a sudden interaction.  Touch boosting
    sidesteps the ramp entirely: any touch forces the maximum rate at
    once, and the section policy takes over again when the boost
    expires.
    """

    name = "touch-boost"

    def __init__(self, inner: GovernorPolicy, boost_rate_hz: float,
                 hold_s: float = 1.0) -> None:
        self.inner = inner
        self.boost_rate_hz = ensure_positive(boost_rate_hz, "boost_rate_hz")
        self.hold_s = ensure_positive(hold_s, "hold_s")
        self._boost_until = float("-inf")
        self._boosts = 0
        self.name = f"{inner.name}+touch-boost"

    @property
    def boosts(self) -> int:
        """Number of touch events that triggered (or extended) a boost."""
        return self._boosts

    @property
    def boost_until(self) -> float:
        """End of the current boost hold (``-inf`` before any touch).

        Exposed so the vector fast path can evaluate the boost
        predicate (``now < boost_until``) for future decision ticks
        with the exact comparison :meth:`boosting` performs.
        """
        return self._boost_until

    def boosting(self, now: float) -> bool:
        """True while a boost hold period is active."""
        return now < self._boost_until

    def select_rate(self, now: float) -> float:
        if self.boosting(now):
            return self.boost_rate_hz
        return self.inner.select_rate(now)

    def on_touch(self, time: float) -> Optional[float]:
        self._boost_until = time + self.hold_s
        self._boosts += 1
        # Chain to the inner policy and honor its immediate rate: a
        # wrapped policy demanding more than the boost rate wins, so
        # composition never *lowers* a touch response.
        inner_rate = self.inner.on_touch(time)
        if inner_rate is not None:
            return max(inner_rate, self.boost_rate_hz)
        return self.boost_rate_hz


class GovernorDriver:
    """Applies a policy to a panel on a fixed decision period.

    Parameters
    ----------
    sim:
        Simulator for the periodic decision task.
    panel:
        The panel whose rate the policy controls.
    policy:
        The decision policy.
    decision_period_s:
        Seconds between periodic decisions.  200 ms keeps control lag
        well under the content-rate window while making the governor's
        own CPU cost negligible.
    telemetry:
        Optional telemetry hub.  When present the driver emits
        ``section_transition`` events when a periodic decision changes
        the selected rate, ``touch_boost`` events for immediate touch
        overrides, counts decisions and touches under ``governor.*``,
        and feeds the ``governor.selected_rate_hz`` histogram (bucket
        edges: the panel's discrete levels).  None adds nothing.
    """

    def __init__(self, sim: Simulator, panel: DisplayPanel,
                 policy: GovernorPolicy,
                 decision_period_s: float = 0.2,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self._sim = sim
        self._panel = panel
        self.policy = policy
        self.decision_period_s = ensure_positive(decision_period_s,
                                                 "decision_period_s")
        self._decisions = TimeSeries("governor_decisions_hz")
        self._task: Optional[PeriodicTask] = None
        self._touch_times: List[float] = []
        self._telemetry = telemetry
        self._last_periodic_rate: Optional[float] = None
        if telemetry is not None:
            # Register the rate histogram up front so its (fixed)
            # bucket edges appear even in sessions with no decisions.
            telemetry.metrics.histogram(
                "governor.selected_rate_hz",
                sorted(panel.spec.refresh_rates_hz))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic decisions."""
        if self._task is not None:
            raise ConfigurationError("governor driver already started")
        self._task = PeriodicTask(self._sim, self.decision_period_s,
                                  self._decide, name="governor-decision")

    def stop(self) -> None:
        """Stop periodic decisions."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def notify_touch(self, time: float) -> None:
        """Forward a touch event to the policy.

        If the policy returns an immediate rate (touch boosting does),
        it is applied without waiting for the next decision tick.
        """
        self._touch_times.append(time)
        if self._telemetry is not None:
            self._telemetry.metrics.counter("governor.touches").inc()
        immediate = self.policy.on_touch(time)
        if immediate is not None:
            self._panel.set_refresh_rate(immediate)
            self._decisions.append(time, immediate)
            if self._telemetry is not None:
                self._telemetry.metrics.counter(
                    "governor.touch_boosts").inc()
                self._telemetry.emit(EVENT_TOUCH_BOOST, time,
                                     rate_hz=immediate)

    def _decide(self, sim: Simulator) -> None:
        rate = self.policy.select_rate(sim.now)
        self._panel.set_refresh_rate(rate)
        self._decisions.append(sim.now, rate)
        if self._telemetry is not None:
            self._telemetry.metrics.counter("governor.decisions").inc()
            self._telemetry.metrics.histogram(
                "governor.selected_rate_hz").observe(rate)
            last = self._last_periodic_rate
            if last is not None and rate != last:
                self._telemetry.emit(EVENT_SECTION_TRANSITION, sim.now,
                                     from_hz=last, to_hz=rate)
        self._last_periodic_rate = rate

    def record_skipped_decisions(self, times: Sequence[float],
                                 rates: Sequence[float]) -> None:
        """Commit decision ticks resolved analytically by the fast path.

        Each ``(time, rate)`` pair replicates exactly what
        :meth:`_decide` would have recorded for a tick whose selected
        rate was proven equal to the panel's current target (so
        ``set_refresh_rate`` would have been a no-op): the decision
        trace entry and the last-periodic-rate latch.  Task-side tick
        accounting is committed separately via
        :meth:`~repro.sim.engine.PeriodicTask.fast_forward`.
        """
        if not times:
            return
        self._decisions.extend(times, rates)
        self._last_periodic_rate = float(rates[-1])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def task(self) -> Optional[PeriodicTask]:
        """The periodic decision task (``None`` before start)."""
        return self._task

    @property
    def decisions(self) -> TimeSeries:
        """Every decision made: ``(time, selected rate)``."""
        return self._decisions

    @property
    def touch_times(self) -> Tuple[float, ...]:
        """Touch events forwarded to the policy."""
        return tuple(self._touch_times)
