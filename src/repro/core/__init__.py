"""The paper's contribution: content-rate metering and refresh control.

Pipeline (Section 3 of the paper):

1. :class:`~repro.core.double_buffer.DoubleBuffer` keeps the previous
   framebuffer available for comparison without stalling updates.
2. :class:`~repro.core.grid.GridSpec` /
   :class:`~repro.core.grid.GridComparator` compare only one
   representative pixel per grid cell, making metering nearly free.
3. :class:`~repro.core.content_rate.ContentRateMeter` counts meaningful
   (content-changing) frames per second — the **content rate**.
4. :class:`~repro.core.section_table.SectionTable` maps a content rate
   to a refresh rate via Equation (1) so the chosen rate always leaves
   headroom above the measurable content rate.
5. :class:`~repro.core.governor.SectionBasedGovernor` applies the table
   periodically; :class:`~repro.core.governor.TouchBoostGovernor` wraps
   it to jump to the maximum rate on touch.
6. :class:`~repro.core.manager.ContentCentricManager` wires all of the
   above onto a panel + framebuffer — the "proposed system".
"""

from .content_rate import ContentRateMeter, MeterConfig
from .double_buffer import DoubleBuffer, SampledDoubleBuffer
from .governor import (
    GovernorPolicy,
    NaiveMatchGovernor,
    SectionBasedGovernor,
    TouchBoostGovernor,
)
from .grid import GridComparator, GridSpec
from .hysteresis import HysteresisGovernor
from .manager import ContentCentricManager, ManagerConfig
from .quality import QualityReport, compute_quality, quality_vs_baseline
from .section_table import Section, SectionTable
from .watchdog import GovernorWatchdog, WatchdogConfig

__all__ = [
    "ContentCentricManager",
    "ContentRateMeter",
    "DoubleBuffer",
    "GovernorPolicy",
    "GovernorWatchdog",
    "GridComparator",
    "GridSpec",
    "HysteresisGovernor",
    "ManagerConfig",
    "MeterConfig",
    "NaiveMatchGovernor",
    "QualityReport",
    "SampledDoubleBuffer",
    "Section",
    "SectionBasedGovernor",
    "SectionTable",
    "TouchBoostGovernor",
    "WatchdogConfig",
    "compute_quality",
    "quality_vs_baseline",
]
