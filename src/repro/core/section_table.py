"""Section-based refresh-rate table — Equation (1) of the paper.

A naive controller that picks the refresh rate *equal to* the measured
content rate deadlocks: V-Sync clips the measurable content rate at the
current refresh rate, so once the rate drops the system can never
observe the content rate rising above it.  The paper's fix is to keep
the selected refresh rate strictly *above* the section of content rates
it serves.

With the panel's rates sorted ascending ``r_1 < r_2 < ... < r_n``,
Equation (1) defines the section thresholds as medians between adjacent
rates, with a half-rate threshold at the bottom::

    t_0 = r_1 / 2
    t_i = (r_i + r_{i+1}) / 2      for i = 1 .. n-1

and a content rate ``c`` selects rate ``r_{k+1}`` where ``k`` is the
number of thresholds <= ``c`` (clamped to ``r_n``).  For the Galaxy S3's
levels (20/24/30/40/60 Hz) this reproduces the table of Figure 5 exactly:

=================  ==============
Content rate       Refresh rate
=================  ==============
[0, 10) fps        20 Hz
[10, 22) fps       24 Hz
[22, 27) fps       30 Hz
[27, 35) fps       40 Hz
[35, ...) fps      60 Hz
=================  ==============

Note the headroom property: every section's refresh rate exceeds the
section's largest content rate, so V-Sync never hides a rising content
rate from the meter (until the panel maximum, where there is nothing
higher to switch to anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_non_negative
from ..display.spec import PanelSpec


@dataclass(frozen=True)
class Section:
    """One row of the section table.

    ``low <= content_rate < high`` selects ``refresh_rate_hz``; the top
    section's ``high`` is infinity.
    """

    low: float
    high: float
    refresh_rate_hz: float

    def contains(self, content_rate: float) -> bool:
        """True if ``content_rate`` falls in this section."""
        return self.low <= content_rate < self.high


class SectionTable:
    """Maps a measured content rate to a panel refresh rate.

    Build with :meth:`from_rates` (explicit level list) or
    :meth:`for_panel` (from a :class:`~repro.display.spec.PanelSpec`).
    """

    def __init__(self, sections: Sequence[Section]) -> None:
        if not sections:
            raise ConfigurationError("section table cannot be empty")
        self._sections = tuple(sections)
        self._validate()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(cls, refresh_rates_hz: Sequence[float]) -> "SectionTable":
        """Build the Equation (1) table for a discrete rate set."""
        if not refresh_rates_hz:
            raise ConfigurationError(
                "need at least one refresh rate to build a section table")
        rates = sorted(float(r) for r in refresh_rates_hz)
        if any(r <= 0 for r in rates):
            raise ConfigurationError(
                f"refresh rates must be > 0, got {rates}")
        if len(set(rates)) != len(rates):
            raise ConfigurationError(
                f"duplicate refresh rates in {rates}")
        if len(rates) == 1:
            return cls([Section(0.0, float("inf"), rates[0])])
        # Equation (1): t_0 = r_1/2, then medians between adjacent
        # rates.  The boundary for stepping from r_k up to r_{k+1} is
        # the median of (r_{k-1}, r_k): once the content rate crosses
        # it, r_k no longer leaves headroom, so the next level up is
        # selected.  This yields n-1 thresholds for n rates and
        # reproduces the Figure 5 table (10/22/27/35 for the Galaxy
        # S3's 20/24/30/40/60 Hz).
        thresholds = [rates[0] / 2.0]
        thresholds += [(rates[i] + rates[i + 1]) / 2.0
                       for i in range(len(rates) - 2)]
        sections = []
        low = 0.0
        for rate, high in zip(rates[:-1], thresholds):
            sections.append(Section(low, high, rate))
            low = high
        sections.append(Section(low, float("inf"), rates[-1]))
        return cls(sections)

    @classmethod
    def for_panel(cls, spec: PanelSpec) -> "SectionTable":
        """Build the table for a panel's supported rates."""
        return cls.from_rates(spec.refresh_rates_hz)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, content_rate: float) -> float:
        """The refresh rate for a measured content rate (fps)."""
        ensure_non_negative(content_rate, "content_rate")
        for section in self._sections:
            if section.contains(content_rate):
                return section.refresh_rate_hz
        # Unreachable: the top section extends to infinity.
        raise AssertionError("section table has a gap")  # pragma: no cover

    def lookup_batch(self, content_rates: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`lookup` over many content rates at once.

        Sections are contiguous from 0 with half-open ``[low, high)``
        bounds, so the linear ``contains`` scan is equivalent to
        counting section *highs* that are ``<= c`` — which is
        ``searchsorted(highs, c, side="right")`` over the same float64
        values (pure comparisons, no arithmetic).  Element ``i``
        therefore equals ``lookup(content_rates[i])`` exactly.
        """
        rates = np.asarray(content_rates, dtype=np.float64)
        if np.any(rates < 0):
            raise ConfigurationError(
                "content rates must be non-negative")
        highs = np.asarray([s.high for s in self._sections[:-1]],
                           dtype=np.float64)
        selected = np.asarray(
            [s.refresh_rate_hz for s in self._sections],
            dtype=np.float64)
        return selected[np.searchsorted(highs, rates, side="right")]

    @property
    def sections(self) -> Tuple[Section, ...]:
        """All sections, ordered by content rate."""
        return self._sections

    @property
    def refresh_rates_hz(self) -> Tuple[float, ...]:
        """The distinct refresh rates the table can select, ascending."""
        return tuple(sorted({s.refresh_rate_hz for s in self._sections}))

    @property
    def max_rate_hz(self) -> float:
        """The highest selectable refresh rate."""
        return self.refresh_rates_hz[-1]

    @property
    def min_rate_hz(self) -> float:
        """The lowest selectable refresh rate."""
        return self.refresh_rates_hz[0]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        prev_high = 0.0
        prev_rate = 0.0
        for i, section in enumerate(self._sections):
            if section.low != prev_high:
                raise ConfigurationError(
                    f"section {i} starts at {section.low}, expected "
                    f"{prev_high} (table must be contiguous from 0)")
            if section.high <= section.low:
                raise ConfigurationError(
                    f"section {i} is empty or inverted: "
                    f"[{section.low}, {section.high})")
            if section.refresh_rate_hz <= prev_rate:
                raise ConfigurationError(
                    f"section {i} refresh rate {section.refresh_rate_hz} "
                    f"does not increase over previous {prev_rate}")
            prev_high = section.high
            prev_rate = section.refresh_rate_hz
        if self._sections[-1].high != float("inf"):
            raise ConfigurationError(
                "last section must extend to infinity")

    def biased(self, steps: int = 1) -> "SectionTable":
        """A quality-priority variant: every section selects a rate
        ``steps`` levels higher (clamped at the panel maximum).

        Extension: the product knob between "battery saver" (the paper
        table) and "smooth" modes.  Extra headroom means bursts climb
        fewer levels (fewer dropped frames) at the cost of some panel
        power; the ablation in
        ``benchmarks/ablations/bench_ablation_boost_hold.py``'s
        companion quantifies the trade.  Sections whose biased rates
        collide are merged, preserving the table invariants.
        """
        if steps < 0:
            raise ConfigurationError(
                f"steps must be >= 0, got {steps}")
        if steps == 0:
            return self
        rates = list(self.refresh_rates_hz)
        index_of = {rate: i for i, rate in enumerate(rates)}
        merged: list = []
        for section in self._sections:
            new_rate = rates[min(index_of[section.refresh_rate_hz]
                                 + steps, len(rates) - 1)]
            if merged and merged[-1].refresh_rate_hz == new_rate:
                merged[-1] = Section(merged[-1].low, section.high,
                                     new_rate)
            else:
                merged.append(Section(section.low, section.high,
                                      new_rate))
        return SectionTable(merged)

    def headroom_ok(self) -> bool:
        """Check the anti-deadlock property: every section except the
        top one assigns a refresh rate strictly above the section's
        highest content rate."""
        return all(s.refresh_rate_hz > s.high - 1e-12
                   or s.high == float("inf")
                   for s in self._sections[:-1]) and \
            self._sections[-1].refresh_rate_hz >= self._sections[-1].low

    def describe(self) -> str:
        """Human-readable rendering (matches the Figure 5 table)."""
        lines = []
        for s in self._sections:
            high = "inf" if s.high == float("inf") else f"{s.high:g}"
            lines.append(
                f"content [{s.low:g}, {high}) fps -> "
                f"{s.refresh_rate_hz:g} Hz")
        return "\n".join(lines)
