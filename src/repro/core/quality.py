"""Display-quality analysis (Section 4.4 of the paper).

Refresh-rate control can hurt quality: while the rate is lower than the
application's true content rate, several content changes coalesce into
one displayed frame — the user sees dropped frames.  The paper
quantifies this as

    display quality = estimated content rate / actual content rate

where *actual* is the rate at which the application generates distinct
content and *estimated* is what actually reaches the screen (equal to
the meter's measurement whenever the meter is accurate).  It also
reports *frames dropped per second* = actual rate - displayed rate.

The simulation has clean ground truth for all three quantities:

* actual content: the application model's content-change event log;
* displayed content: the compositor's full-buffer meaningful-frame
  count (independent of the grid meter);
* measured content: the grid meter's meaningful-frame log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.tracing import EventLog
from ..units import ensure_positive


@dataclass(frozen=True)
class QualityReport:
    """Quality metrics for one session.

    All rates are events per second over the whole session.
    """

    duration_s: float
    actual_content_fps: float
    displayed_content_fps: float
    measured_content_fps: float

    @property
    def display_quality(self) -> float:
        """Displayed / actual content rate, clamped to [0, 1].

        1.0 means every distinct piece of content the app produced made
        it to the screen as its own frame.  With no content at all the
        quality is perfect by definition.
        """
        if self.actual_content_fps == 0:
            return 1.0
        return min(1.0, self.displayed_content_fps /
                   self.actual_content_fps)

    @property
    def measured_quality(self) -> float:
        """Measured / actual content rate (what the paper's Figure 11
        plots: the system's own estimate against ground truth)."""
        if self.actual_content_fps == 0:
            return 1.0
        return min(1.0, self.measured_content_fps /
                   self.actual_content_fps)

    @property
    def dropped_fps(self) -> float:
        """Content frames per second that never reached the screen."""
        return max(0.0, self.actual_content_fps -
                   self.displayed_content_fps)

    @property
    def metering_error(self) -> float:
        """Meter error against displayed ground truth, as a fraction."""
        if self.displayed_content_fps == 0:
            return 0.0 if self.measured_content_fps == 0 else float("inf")
        return abs(self.measured_content_fps -
                   self.displayed_content_fps) / self.displayed_content_fps


def quality_vs_baseline(governed_displayed_fps: float,
                        baseline_displayed_fps: float) -> float:
    """The paper's Figure 11 quality: governed over baseline content rate.

    The paper measures the "actual" content rate in a fixed-60 Hz run
    of the same script and divides the governed system's content rate
    by it.  Even at 60 Hz some content instants coalesce (V-Sync), so
    normalising by the baseline isolates the quality lost *to the
    controller* from the quality ceiling of the panel itself.
    """
    if baseline_displayed_fps < 0 or governed_displayed_fps < 0:
        raise ConfigurationError("content rates must be >= 0")
    if baseline_displayed_fps == 0:
        return 1.0
    return min(1.0, governed_displayed_fps / baseline_displayed_fps)


def compute_quality(actual_content: EventLog, displayed_content: EventLog,
                    measured_content: EventLog,
                    duration_s: float) -> QualityReport:
    """Build a :class:`QualityReport` from session event logs.

    Parameters
    ----------
    actual_content:
        Ground-truth content-change events from the application model.
    displayed_content:
        Meaningful frame updates that reached the framebuffer
        (compositor ground truth).
    measured_content:
        Meaningful frames as judged by the grid meter.
    duration_s:
        Session length in seconds.
    """
    ensure_positive(duration_s, "duration_s")
    displayed = len(displayed_content)
    measured = len(measured_content)
    actual = len(actual_content)
    if displayed > 0 and actual > 0:
        # The first displayed frame (cold framebuffer) is meaningful by
        # definition even for a static app; exclude that bootstrap frame
        # so a zero-content session reports zero displayed content.
        first_actual = actual_content.times[0]
        if displayed_content.times[0] < first_actual:
            displayed -= 1
        if measured > 0 and measured_content.times[0] < first_actual:
            measured -= 1
    elif actual == 0:
        # No content at all: any "meaningful" frames are bootstrap.
        displayed = 0
        measured = 0
    if displayed < 0 or measured < 0:
        raise ConfigurationError("event logs are inconsistent")
    return QualityReport(
        duration_s=duration_s,
        actual_content_fps=actual / duration_s,
        displayed_content_fps=displayed / duration_s,
        measured_content_fps=measured / duration_s,
    )
