"""Vector-engine eligibility probe.

The vector engine (:mod:`repro.sim.vector`) advances many sessions in
lockstep and skips V-Sync ticks it can prove inert.  Those proofs only
hold for sessions whose per-tick behaviour is fully described by the
component state the fast path replicates:

* **No fault injection** — injected faults are per-read control flow
  (a meter read may raise, a panel switch may be refused) the batch
  replication cannot replay.
* **No telemetry** — an instrumented session must observe every tick
  (spans, counters, events); skipping ticks would change the stream.
* **A plain catalog app** — live wallpapers render every V-Sync and
  trace replays drive the framebuffer from recorded frames, so neither
  has skippable ticks.
* **A vectorizable builtin governor** — ``fixed``, ``section``,
  ``section+boost`` and ``naive`` decide from the panel table and the
  meter's windowed count, both of which the fast path can replicate
  exactly (table lookups batch via ``searchsorted``).  Stateful
  deciders (``section+hysteresis``'s dwell counters, ``oracle``'s
  ground-truth reads, ``e3``'s gesture tracking) and custom registered
  governors fall back to the scalar path.

Ineligible specs are not errors: the batch layer routes them through
the scalar engine automatically, and results are byte-identical either
way — that equivalence is the vector engine's acceptance bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple, Union

from ..apps.profile import AppProfile
from .apps import resolve_workload
from .governors import (
    GOVERNOR_FIXED,
    GOVERNOR_NAIVE,
    GOVERNOR_SECTION,
    GOVERNOR_SECTION_BOOST,
)
from .spec import SessionSpec

if TYPE_CHECKING:
    from ..sim.session import SessionConfig

#: Builtin governors whose decisions the vector fast path can replicate.
#: This is an *allowlist*: any selector not named here — including the
#: governor zoo and third-party registry extensions — routes to the
#: scalar engine automatically.
VECTOR_GOVERNORS: Tuple[str, ...] = (
    GOVERNOR_FIXED,
    GOVERNOR_SECTION,
    GOVERNOR_SECTION_BOOST,
    GOVERNOR_NAIVE,
)

#: Stable machine-readable disqualifier codes (paired 1:1 with the
#: prose ``reasons``; tooling keys on these, prose may be reworded).
CODE_FAULTS = "faults"
CODE_TELEMETRY = "telemetry"
CODE_WORKLOAD = "workload"
CODE_GOVERNOR = "governor"


@dataclass(frozen=True)
class VectorEligibility:
    """Outcome of probing one spec for vector-engine eligibility.

    ``reasons`` lists every disqualifier found (empty when eligible)
    as human-readable prose; ``codes`` carries the matching stable
    identifiers (``CODE_*``), index-aligned with ``reasons``, so batch
    diagnostics can say *why* a session fell back and tooling can key
    on the cause without parsing prose.
    """

    eligible: bool
    reasons: Tuple[str, ...]
    codes: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.eligible


def probe_vector_eligibility(
        spec: Union[SessionSpec, "SessionConfig"]
) -> VectorEligibility:
    """Probe a session description for vector-engine eligibility.

    Accepts either the plain-data :class:`SessionSpec` (the batch wire
    format) or a live :class:`~repro.sim.session.SessionConfig`; both
    carry every field the decision needs.
    """
    config = spec.to_config() if isinstance(spec, SessionSpec) else spec
    reasons: list[str] = []
    codes: list[str] = []
    if config.faults is not None:
        reasons.append(
            "fault injection requires per-read scalar control flow")
        codes.append(CODE_FAULTS)
    if config.telemetry is not None:
        reasons.append(
            "telemetry must observe every tick (spans and counters)")
        codes.append(CODE_TELEMETRY)
    workload = resolve_workload(config.app)
    if not isinstance(workload, AppProfile):
        reasons.append(
            f"workload {type(workload).__name__} drives every V-Sync "
            f"(wallpaper/trace replay has no skippable ticks)")
        codes.append(CODE_WORKLOAD)
    if config.governor not in VECTOR_GOVERNORS:
        reasons.append(
            f"governor {config.governor!r} is not a vectorizable "
            f"builtin (supported: {', '.join(VECTOR_GOVERNORS)})")
        codes.append(CODE_GOVERNOR)
    return VectorEligibility(eligible=not reasons,
                             reasons=tuple(reasons),
                             codes=tuple(codes))


def vector_eligible(
        spec: Union[SessionSpec, "SessionConfig"]) -> bool:
    """Shorthand: True when the spec can run on the vector engine."""
    return probe_vector_eligibility(spec).eligible
