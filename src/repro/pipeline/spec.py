"""Declarative, JSON-round-trippable session specification.

A :class:`SessionSpec` is the plain-data twin of
:class:`~repro.sim.session.SessionConfig`: every field a session needs,
expressed only in JSON types (strings, numbers, booleans, dicts,
lists).  Where a ``SessionConfig`` holds live objects — an
:class:`~repro.apps.profile.AppProfile`, a
:class:`~repro.display.spec.PanelSpec`, a
:class:`~repro.faults.plan.FaultPlan` — the spec holds either a
registry key (``"galaxy-s3"``) or a nested field dict.  That makes the
spec the form a session takes when it crosses a boundary: written to
disk, embedded in a report, or pickled to a parallel batch worker.

The mapping is lossless both ways::

    spec = SessionSpec.from_config(config)
    assert spec.to_config() == config
    assert SessionSpec.from_json(spec.to_json()) == spec

Documents are strict: unknown keys — top-level or nested — are
rejected with a :class:`~repro.errors.SpecError` listing the valid
keys, so a typo'd field fails loudly instead of silently running the
default.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Type, TypeVar, Union

from ..apps.profile import AppProfile
from ..apps.wallpaper import WallpaperProfile
from ..core.content_rate import MeterConfig
from ..core.watchdog import WatchdogConfig
from ..display.spec import PanelSpec
from ..errors import SpecError
from ..faults.plan import FaultPlan
from ..inputs.monkey import MonkeyConfig
from ..telemetry.hub import TelemetryConfig
from ..traces.profile import TraceProfile
from .panels import PANELS, panel_key_for

#: Schema tag embedded in every serialized spec document.
SPEC_SCHEMA = "repro-session/1"

#: Discriminator values for the ``app`` field's inline-object form.
APP_TYPE_PROFILE = "profile"
APP_TYPE_WALLPAPER = "wallpaper"
APP_TYPE_TRACE = "trace"

D = TypeVar("D")


# ----------------------------------------------------------------------
# Generic dataclass <-> JSON-dict codec
# ----------------------------------------------------------------------
def _encode_value(value: Any) -> Any:
    """One value to its JSON form (enums by value, tuples as lists)."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return encode_dataclass(value)
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    return value


def encode_dataclass(obj: Any) -> Dict[str, Any]:
    """A dataclass instance as a JSON-ready field dict."""
    return {f.name: _encode_value(getattr(obj, f.name))
            for f in dataclasses.fields(obj)}


def _decode_value(tp: Any, value: Any, where: str) -> Any:
    """One JSON value back to the typed form ``tp`` describes."""
    origin = typing.get_origin(tp)
    if origin is Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if value is None:
            return None
        if len(args) == 1:
            return _decode_value(args[0], value, where)
        return value
    if origin is tuple:
        args = typing.get_args(tp)
        elem = args[0] if args else Any
        if not isinstance(value, (list, tuple)):
            raise SpecError(
                f"{where} must be a list, got {type(value).__name__}")
        return tuple(_decode_value(elem, item, f"{where}[{i}]")
                     for i, item in enumerate(value))
    if isinstance(tp, type) and issubclass(tp, enum.Enum):
        try:
            return tp(value)
        except ValueError:
            choices = tuple(member.value for member in tp)
            raise SpecError(f"{where}: unknown value {value!r}; "
                            f"choices: {choices}") from None
    if isinstance(tp, type) and dataclasses.is_dataclass(tp):
        return decode_dataclass(tp, value, where)
    return value


def decode_dataclass(cls: Type[D], data: Any, where: str) -> D:
    """A field dict back to a ``cls`` instance.

    Unknown keys raise :class:`~repro.errors.SpecError` naming both the
    offenders and the valid keys; missing keys take the dataclass
    defaults.  Field values decode recursively (nested dataclasses,
    enums by value, tuples from lists).
    """
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{where} must be an object, got {type(data).__name__}")
    valid = tuple(f.name for f in dataclasses.fields(cls))
    unknown = tuple(key for key in data if key not in valid)
    if unknown:
        raise SpecError(f"{where}: unknown keys {unknown}; "
                        f"valid keys: {valid}")
    hints = typing.get_type_hints(cls)
    kwargs = {name: _decode_value(hints[name], value, f"{where}.{name}")
              for name, value in data.items()}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise SpecError(f"{where}: {exc}") from None


# ----------------------------------------------------------------------
# App / panel field codecs (registry key or inline object)
# ----------------------------------------------------------------------
def _encode_app(
        app: Union[str, AppProfile, WallpaperProfile, TraceProfile]
) -> Union[str, Dict[str, Any]]:
    if isinstance(app, str):
        return app
    if isinstance(app, WallpaperProfile):
        return {"type": APP_TYPE_WALLPAPER, **encode_dataclass(app)}
    if isinstance(app, TraceProfile):
        return {"type": APP_TYPE_TRACE, **encode_dataclass(app)}
    return {"type": APP_TYPE_PROFILE, **encode_dataclass(app)}


def _decode_app(
        value: Union[str, Mapping[str, Any]]
) -> Union[str, AppProfile, WallpaperProfile, TraceProfile]:
    if isinstance(value, str):
        return value
    if not isinstance(value, Mapping):
        raise SpecError(f"app must be a registry name or an object, "
                        f"got {type(value).__name__}")
    fields = dict(value)
    app_type = fields.pop("type", None)
    if app_type == APP_TYPE_WALLPAPER:
        return decode_dataclass(WallpaperProfile, fields, "app")
    if app_type == APP_TYPE_PROFILE:
        return decode_dataclass(AppProfile, fields, "app")
    if app_type == APP_TYPE_TRACE:
        return decode_dataclass(TraceProfile, fields, "app")
    raise SpecError(
        f"app object needs 'type' of {APP_TYPE_PROFILE!r}, "
        f"{APP_TYPE_WALLPAPER!r} or {APP_TYPE_TRACE!r}, "
        f"got {app_type!r}")


def _encode_panel(panel: PanelSpec) -> Union[str, Dict[str, Any]]:
    key = panel_key_for(panel)
    if key is not None:
        return key
    return encode_dataclass(panel)


def _decode_panel(value: Union[str, Mapping[str, Any]]) -> PanelSpec:
    if isinstance(value, str):
        return PANELS.get(value)()
    return decode_dataclass(PanelSpec, value, "panel")


# ----------------------------------------------------------------------
# The spec itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionSpec:
    """Plain-data session description (see module docstring).

    Field names and defaults mirror
    :class:`~repro.sim.session.SessionConfig` one-to-one; optional
    object fields (``meter``, ``monkey``, ``faults``,
    ``watchdog_config``, ``telemetry``) are nested field dicts or None
    with exactly the config's None semantics.  Treat instances as
    immutable — the nested dicts are owned by the spec.
    """

    app: Union[str, Dict[str, Any]]
    governor: str = "section+boost"
    duration_s: float = 60.0
    seed: int = 0
    panel: Union[str, Dict[str, Any]] = "galaxy-s3"
    resolution_divisor: int = 8
    meter: Optional[Dict[str, Any]] = None
    decision_period_s: float = 0.2
    boost_hold_s: float = 1.0
    monkey: Optional[Dict[str, Any]] = None
    content_window_s: float = 1.0
    track_oled: bool = False
    status_bar: bool = False
    table_bias: int = 0
    faults: Optional[Dict[str, Any]] = None
    watchdog: bool = True
    watchdog_config: Optional[Dict[str, Any]] = None
    telemetry: Optional[Dict[str, Any]] = None

    # -- SessionConfig <-> SessionSpec ---------------------------------
    @classmethod
    def from_config(cls, config: "SessionConfig") -> "SessionSpec":
        """The spec equivalent of a live config (lossless)."""
        return cls(
            app=_encode_app(config.app),
            governor=config.governor,
            duration_s=config.duration_s,
            seed=config.seed,
            panel=_encode_panel(config.panel),
            resolution_divisor=config.resolution_divisor,
            meter=encode_dataclass(config.meter),
            decision_period_s=config.decision_period_s,
            boost_hold_s=config.boost_hold_s,
            monkey=(encode_dataclass(config.monkey)
                    if config.monkey is not None else None),
            content_window_s=config.content_window_s,
            track_oled=config.track_oled,
            status_bar=config.status_bar,
            table_bias=config.table_bias,
            faults=(encode_dataclass(config.faults)
                    if config.faults is not None else None),
            watchdog=config.watchdog,
            watchdog_config=encode_dataclass(config.watchdog_config),
            telemetry=(encode_dataclass(config.telemetry)
                       if config.telemetry is not None else None),
        )

    def to_config(self) -> "SessionConfig":
        """The live :class:`~repro.sim.session.SessionConfig` this spec
        describes.  Registry keys resolve here (unknown panel or
        governor names fail with the registry's choices-listing
        error)."""
        from ..sim.session import SessionConfig

        return SessionConfig(
            app=_decode_app(self.app),
            governor=self.governor,
            duration_s=self.duration_s,
            seed=self.seed,
            panel=_decode_panel(self.panel),
            resolution_divisor=self.resolution_divisor,
            meter=(decode_dataclass(MeterConfig, self.meter, "meter")
                   if self.meter is not None else MeterConfig()),
            decision_period_s=self.decision_period_s,
            boost_hold_s=self.boost_hold_s,
            monkey=(decode_dataclass(MonkeyConfig, self.monkey, "monkey")
                    if self.monkey is not None else None),
            content_window_s=self.content_window_s,
            track_oled=self.track_oled,
            status_bar=self.status_bar,
            table_bias=self.table_bias,
            faults=(decode_dataclass(FaultPlan, self.faults, "faults")
                    if self.faults is not None else None),
            watchdog=self.watchdog,
            watchdog_config=(
                decode_dataclass(WatchdogConfig, self.watchdog_config,
                                 "watchdog_config")
                if self.watchdog_config is not None
                else WatchdogConfig()),
            telemetry=(
                decode_dataclass(TelemetryConfig, self.telemetry,
                                 "telemetry")
                if self.telemetry is not None else None),
        )

    # -- JSON document <-> SessionSpec ---------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-ready document (schema-tagged; optional
        fields that are None are omitted)."""
        document: Dict[str, Any] = {"schema": SPEC_SCHEMA}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            document[f.name] = value
        return document

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SessionSpec":
        """Parse a document produced by :meth:`to_json_dict`.

        Rejects wrong schema tags and unknown keys (listing the valid
        ones); missing keys take the spec defaults.
        """
        if not isinstance(data, Mapping):
            raise SpecError(f"session spec must be an object, "
                            f"got {type(data).__name__}")
        fields = dict(data)
        schema = fields.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise SpecError(f"unsupported session spec schema "
                            f"{schema!r}; expected {SPEC_SCHEMA!r}")
        valid = tuple(f.name for f in dataclasses.fields(cls))
        unknown = tuple(key for key in fields if key not in valid)
        if unknown:
            raise SpecError(f"session spec: unknown keys {unknown}; "
                            f"valid keys: {valid}")
        if "app" not in fields:
            raise SpecError("session spec: missing required key 'app'")
        return cls(**fields)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The spec serialized as a JSON string."""
        return json.dumps(self.to_json_dict(), indent=indent,
                          sort_keys=True)

    def canonical_json(self) -> str:
        """The spec's canonical wire form: sorted keys, no indent.

        Two equal specs always canonicalize to the same string, which
        is what makes :meth:`digest` a stable identity.
        """
        return self.to_json(indent=None)

    def digest(self) -> str:
        """``sha256:<hex>`` over :meth:`canonical_json`.

        Used by the session service to derive content-addressed job
        ids and by checkpoint verification to pin which spec a
        checkpoint belongs to.
        """
        import hashlib

        payload = self.canonical_json().encode("utf-8")
        return "sha256:" + hashlib.sha256(payload).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "SessionSpec":
        """Parse a string produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"session spec is not valid JSON: "
                            f"{exc}") from None
        return cls.from_json_dict(data)


def spec_roundtrip(config: "SessionConfig") -> "SessionConfig":
    """``config`` -> spec -> JSON -> spec -> config.

    The full boundary-crossing path in one call; used by equivalence
    tests and the bench harness to price the codec.
    """
    return SessionSpec.from_json(
        SessionSpec.from_config(config).to_json()).to_config()


if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.session import SessionConfig
