"""The governor registry: selector string -> policy factory.

Every place that used to re-implement ``if governor == "fixed": ...``
dispatch — ``run_session``, the CLI, the batch runner, the experiment
drivers — now consults :data:`GOVERNORS`.  The builtin selectors
reproduce :data:`repro.sim.session.GOVERNOR_CHOICES` exactly, in the
documented order: the paper's seven policies first, then the
related-work governor zoo (luminance, scene, burst, predictive — see
``docs/governors.md`` for the paper lineage of each).

Adding a governor takes one module and no edits elsewhere::

    # my_governor.py
    from repro.core.governor import GovernorPolicy
    from repro.pipeline import GOVERNORS, GovernorContext

    class HalfRateGovernor(GovernorPolicy):
        name = "half-rate"
        def __init__(self, rate_hz: float) -> None:
            self.rate_hz = rate_hz
        def select_rate(self, now: float) -> float:
            return self.rate_hz

    @GOVERNORS.register("half-rate")
    def make_half_rate(context: GovernorContext) -> HalfRateGovernor:
        return HalfRateGovernor(context.spec.refresh_rates_hz[-2])

After the import, ``half-rate`` is selectable from ``repro run`` /
``repro compare``, :func:`repro.sim.batch.run_batch`, scenarios, and
every experiment that takes a governor argument.  Keep the factory at
module level: the parallel batch engine ships extension entries to
worker processes by pickle-by-reference (see
:meth:`repro.pipeline.registry.Registry.extras`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..apps.base import Application
from ..baselines.e3 import E3ScrollGovernor
from ..baselines.fixed import FixedRefreshGovernor
from ..baselines.oracle import OracleGovernor
from ..core.content_rate import ContentRateMeter
from ..core.governor import (
    GovernorPolicy,
    NaiveMatchGovernor,
    SectionBasedGovernor,
    TouchBoostGovernor,
)
from ..core.hysteresis import HysteresisGovernor
from ..core.section_table import SectionTable
from ..display.panel import DisplayPanel
from ..display.spec import PanelSpec
from ..errors import ConfigurationError
from ..governors import (
    BurstRefreshGovernor,
    ContentLuminanceGovernor,
    PredictiveRateGovernor,
    SceneRateGovernor,
)
from ..graphics.framebuffer import Framebuffer
from .registry import Registry

#: Builtin selector strings, registered below in documented order.
GOVERNOR_FIXED = "fixed"
GOVERNOR_SECTION = "section"
GOVERNOR_SECTION_BOOST = "section+boost"
GOVERNOR_SECTION_HYSTERESIS = "section+hysteresis"
GOVERNOR_NAIVE = "naive"
GOVERNOR_ORACLE = "oracle"
GOVERNOR_E3 = "e3"
#: The governor zoo (related-work policies; see docs/governors.md).
GOVERNOR_LUMINANCE = "luminance"
GOVERNOR_SCENE = "scene"
GOVERNOR_BURST = "burst"
GOVERNOR_PREDICTIVE = "predictive"


@dataclass(frozen=True)
class GovernorContext:
    """Everything a governor factory may draw on.

    The context carries the already-built upstream stages (panel,
    meter, application) plus the session's tuning knobs, so factories
    stay plain functions of one argument — the shape the registry
    ships across process boundaries.

    Parameters
    ----------
    panel:
        The session's display panel (its spec supplies the discrete
        rate levels).
    meter:
        The content-rate meter feeding measurement-driven policies.
    application:
        The session's application — only the oracle (ground-truth)
        policy reads it.
    content_window_s:
        Sliding window for the governor's content-rate reads.
    boost_hold_s:
        Touch-boost hold time.
    table_bias:
        Quality-priority bias applied to the section table
        (:meth:`~repro.core.section_table.SectionTable.biased`).
    framebuffer:
        The session framebuffer, for content-aware policies that price
        the displayed pixels (the luminance governor).  Optional so
        hand-built contexts without a framebuffer keep working; the
        factories that need it raise
        :class:`~repro.errors.ConfigurationError` when absent.
    """

    panel: DisplayPanel
    meter: ContentRateMeter
    application: Application
    content_window_s: float = 1.0
    boost_hold_s: float = 1.0
    table_bias: int = 0
    framebuffer: Optional[Framebuffer] = None

    @property
    def spec(self) -> PanelSpec:
        """The panel's hardware spec."""
        return self.panel.spec

    def section_policy(self) -> SectionBasedGovernor:
        """The paper's section-based policy for this context.

        Shared by the ``section*`` builtins so wrappers (boost,
        hysteresis) compose over an identical core.
        """
        table = SectionTable.for_panel(self.spec).biased(self.table_bias)
        return SectionBasedGovernor(table, self.meter,
                                    window_s=self.content_window_s)


#: Factory signature every entry in :data:`GOVERNORS` satisfies.
GovernorFactory = Callable[[GovernorContext], GovernorPolicy]

#: The governor registry (single source of truth for selector strings).
GOVERNORS: Registry[GovernorFactory] = Registry("governor")


@GOVERNORS.register(GOVERNOR_FIXED, builtin=True)
def make_fixed(context: GovernorContext) -> GovernorPolicy:
    """Stock baseline: pinned at the panel maximum."""
    return FixedRefreshGovernor(context.spec.max_refresh_hz)


@GOVERNORS.register(GOVERNOR_SECTION, builtin=True)
def make_section(context: GovernorContext) -> GovernorPolicy:
    """The paper's section-based control only."""
    return context.section_policy()


@GOVERNORS.register(GOVERNOR_SECTION_BOOST, builtin=True)
def make_section_boost(context: GovernorContext) -> GovernorPolicy:
    """The paper's full system: section control + touch boosting."""
    return TouchBoostGovernor(context.section_policy(),
                              boost_rate_hz=context.spec.max_refresh_hz,
                              hold_s=context.boost_hold_s)


@GOVERNORS.register(GOVERNOR_SECTION_HYSTERESIS, builtin=True)
def make_section_hysteresis(context: GovernorContext) -> GovernorPolicy:
    """Extension: boosted section control with damped down-switching."""
    boosted = TouchBoostGovernor(context.section_policy(),
                                 boost_rate_hz=context.spec.max_refresh_hz,
                                 hold_s=context.boost_hold_s)
    return HysteresisGovernor(boosted)


@GOVERNORS.register(GOVERNOR_NAIVE, builtin=True)
def make_naive(context: GovernorContext) -> GovernorPolicy:
    """The paper's failed first attempt (kept as a negative result)."""
    return NaiveMatchGovernor(context.spec.refresh_rates_hz,
                              context.meter,
                              window_s=context.content_window_s)


@GOVERNORS.register(GOVERNOR_ORACLE, builtin=True)
def make_oracle(context: GovernorContext) -> GovernorPolicy:
    """Ground-truth content rate (upper bound on savings)."""
    return OracleGovernor(SectionTable.for_panel(context.spec),
                          context.application)


@GOVERNORS.register(GOVERNOR_E3, builtin=True)
def make_e3(context: GovernorContext) -> GovernorPolicy:
    """Interaction-driven baseline (Han [16])."""
    return E3ScrollGovernor(low_rate_hz=context.spec.min_refresh_hz,
                            high_rate_hz=context.spec.max_refresh_hz)


@GOVERNORS.register(GOVERNOR_LUMINANCE, builtin=True)
def make_luminance(context: GovernorContext) -> GovernorPolicy:
    """SmartNight-style: section control stepped down on dark frames."""
    if context.framebuffer is None:
        raise ConfigurationError(
            "the luminance governor needs a framebuffer in its "
            "GovernorContext (content-aware policies price the "
            "displayed pixels)")
    return ContentLuminanceGovernor(context.section_policy(),
                                    context.framebuffer,
                                    context.spec.refresh_rates_hz)


@GOVERNORS.register(GOVERNOR_SCENE, builtin=True)
def make_scene(context: GovernorContext) -> GovernorPolicy:
    """EVSO-style: one latched rate per detected scene."""
    table = SectionTable.for_panel(context.spec).biased(context.table_bias)
    return SceneRateGovernor(table, context.meter,
                             window_s=context.content_window_s)


@GOVERNORS.register(GOVERNOR_BURST, builtin=True)
def make_burst(context: GovernorContext) -> GovernorPolicy:
    """BurstLink-style: duty-cycled max-rate bursts over a floor."""
    return BurstRefreshGovernor(context.spec.refresh_rates_hz,
                                context.meter,
                                window_s=context.content_window_s)


@GOVERNORS.register(GOVERNOR_PREDICTIVE, builtin=True)
def make_predictive(context: GovernorContext) -> GovernorPolicy:
    """Dynamic-Sampling-Rate-style: forecast-driven section lookup."""
    table = SectionTable.for_panel(context.spec).biased(context.table_bias)
    return PredictiveRateGovernor(table, context.meter)


def governor_names() -> Tuple[str, ...]:
    """Every selectable governor, builtins first (dynamic: includes
    extensions registered so far)."""
    return GOVERNORS.names()


def build_governor(governor: str,
                   context: GovernorContext) -> GovernorPolicy:
    """Construct the policy registered under ``governor``."""
    factory = GOVERNORS.get(governor)
    return factory(context)
