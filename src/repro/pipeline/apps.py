"""The app registry: workload name -> profile factory.

Builtins are the full 30-app catalog (every
:func:`repro.apps.catalog.all_app_names` entry) plus the paper's
worst-case ``nexus-revamped`` stressor wallpaper, so every name that
worked before works unchanged — and a custom workload registers from
its own module::

    from repro.apps.profile import AppCategory, AppProfile
    from repro.pipeline import APPS

    @APPS.register("My Benchmark App")
    def make_my_app() -> AppProfile:
        return AppProfile(name="My Benchmark App",
                          category=AppCategory.GENERAL,
                          idle_content_fps=2.0, active_content_fps=30.0)

Unknown names raise :class:`~repro.errors.WorkloadError` (the same
family the catalog lookup raised), now listing every registered key.
"""

from __future__ import annotations

from typing import Callable, Union

from ..apps.catalog import all_app_names, app_profile
from ..apps.profile import AppProfile
from ..apps.wallpaper import WallpaperProfile, nexus_revamped
from ..errors import WorkloadError
from ..traces.profile import TRACE_APP_PREFIX, TraceProfile
from .registry import Registry

#: What an app factory may produce (wallpapers and trace profiles
#: adapt via their ``as_app_profile`` methods).
WorkloadProfile = Union[AppProfile, WallpaperProfile, TraceProfile]

#: Factory signature every entry in :data:`APPS` satisfies.
AppFactory = Callable[[], WorkloadProfile]

#: The app registry (catalog + wallpaper builtins + extensions).
APPS: Registry[AppFactory] = Registry("application",
                                      error_type=WorkloadError)


def _make_catalog_factory(name: str) -> AppFactory:
    def factory() -> WorkloadProfile:
        return app_profile(name)
    factory.__name__ = f"make_{name}"
    return factory


for _name in all_app_names():
    APPS.register(_name, _make_catalog_factory(_name), builtin=True)
APPS.register("nexus-revamped", nexus_revamped, builtin=True)
del _name


def resolve_workload(
        app: Union[str, WorkloadProfile]) -> WorkloadProfile:
    """The profile object behind a session's ``app`` field.

    Strings go through the registry — except the ``"trace:<path>"``
    scheme, which names a recorded frame-trace file directly (no
    registration needed; the string form survives every spec and
    batch-wire boundary unchanged).  Profile objects pass through.  A
    :class:`WallpaperProfile` result means the session should run a
    :class:`~repro.apps.wallpaper.LiveWallpaper`; a
    :class:`~repro.traces.profile.TraceProfile` result means it should
    replay the trace through a
    :class:`~repro.traces.source.TraceFrameSource`.
    """
    if isinstance(app, str):
        if app.startswith(TRACE_APP_PREFIX):
            return TraceProfile(app[len(TRACE_APP_PREFIX):])
        return APPS.get(app)()
    return app


def resolve_app_profile(
        app: Union[str, WorkloadProfile]) -> AppProfile:
    """Like :func:`resolve_workload`, flattened to an
    :class:`~repro.apps.profile.AppProfile` (wallpapers and traces
    adapted)."""
    workload = resolve_workload(app)
    if isinstance(workload, AppProfile):
        return workload
    return workload.as_app_profile()
