"""Typed stage interfaces of the session pipeline.

The paper's pipeline is a chain of swappable stages::

    touch script -> application -> compositor -> framebuffer ->
    content-rate meter -> governor -> panel -> V-Sync -> application

Each stage is described here as a :class:`typing.Protocol` — purely
*structural* contracts, so the concrete classes
(:class:`~repro.inputs.touch.TouchSource`,
:class:`~repro.apps.base.Application`,
:class:`~repro.core.content_rate.ContentRateMeter`,
:class:`~repro.core.governor.GovernorPolicy` subclasses,
:class:`~repro.display.panel.DisplayPanel`,
:class:`~repro.power.model.PowerModel`) satisfy them without
inheriting anything, and an extension satisfies them by simply having
the right methods.  The :class:`~repro.pipeline.builder.SessionBuilder`
is written against these protocols; the registries in
:mod:`repro.pipeline` fill its slots by name.

Alternate-stage work from the related literature — EVSO's
perception-aware rate controller, Anglada et al.'s dynamic sampling
rate (see PAPERS.md) — plugs in as another :class:`GovernorPolicy` or
:class:`Meter` implementation against exactly these signatures.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from ..inputs.touch import TouchEvent

#: Touch-event callback signature (what an :class:`InputSource` feeds).
TouchListener = Callable[[TouchEvent], None]

#: V-Sync callback signature (what a :class:`Panel` feeds).
VsyncListener = Callable[[float], None]


@runtime_checkable
class InputSource(Protocol):
    """Delivers touch events into the pipeline on the simulation clock.

    Implemented by :class:`~repro.inputs.touch.TouchSource` (replaying
    a Monkey-generated :class:`~repro.inputs.touch.TouchScript`); a
    trace-replay source reading real device logs would implement the
    same two methods.
    """

    def add_listener(self, listener: TouchListener) -> None:
        """Subscribe ``listener`` to every delivered event."""
        ...

    def start(self) -> None:
        """Schedule the source's events onto the simulator."""
        ...


@runtime_checkable
class FrameSource(Protocol):
    """Produces frames: the application model driving the compositor.

    Implemented by :class:`~repro.apps.base.Application` and
    :class:`~repro.apps.wallpaper.LiveWallpaper`.  A frame source
    reacts to touches (content bursts), renders on its own schedule,
    and latches pending content into its surface on V-Sync.
    """

    def start(self) -> None:
        """Begin the content process."""
        ...

    def on_touch(self, event: TouchEvent) -> None:
        """React to one touch event."""
        ...

    def on_vsync(self, time: float) -> None:
        """V-Sync tick: submit pending content for composition."""
        ...


@runtime_checkable
class Meter(Protocol):
    """Measures the content rate the governor consumes.

    Implemented by :class:`~repro.core.content_rate.ContentRateMeter`
    (grid-sampled framebuffer comparison, Section 3.1 of the paper).
    """

    def content_rate(self, now: float,
                     window_s: Optional[float] = None) -> float:
        """Meaningful frames per second over the sliding window."""
        ...

    @property
    def total_frames(self) -> int:
        """Frame updates observed so far."""
        ...

    @property
    def total_meaningful(self) -> int:
        """Meaningful (content-carrying) frames observed so far."""
        ...


@runtime_checkable
class GovernorPolicy(Protocol):
    """Decides the panel refresh rate (Section 3.2 of the paper).

    Implemented by every concrete policy in :mod:`repro.core.governor`,
    :mod:`repro.core.hysteresis`, :mod:`repro.baselines` and the
    fail-safe :class:`~repro.core.watchdog.GovernorWatchdog` wrapper —
    the registry in :mod:`repro.pipeline.governors` maps selector
    strings to factories producing these.
    """

    @property
    def name(self) -> str:
        """Display name used in traces and reports."""
        ...

    def select_rate(self, now: float) -> float:
        """The refresh rate (Hz) the panel should use right now."""
        ...

    def on_touch(self, time: float) -> Optional[float]:
        """React to a touch; a returned rate is applied immediately."""
        ...


@runtime_checkable
class Panel(Protocol):
    """The display hardware: discrete refresh levels, V-Sync fan-out.

    Implemented by :class:`~repro.display.panel.DisplayPanel`.
    """

    def set_refresh_rate(self, rate_hz: float) -> None:
        """Request a switch to one of the panel's discrete levels."""
        ...

    def add_vsync_listener(self, listener: VsyncListener) -> None:
        """Subscribe to every V-Sync tick."""
        ...

    def start(self) -> None:
        """Begin emitting V-Sync."""
        ...

    def stop(self) -> None:
        """Stop emitting V-Sync."""
        ...

    @property
    def refresh_rate_hz(self) -> float:
        """The currently active refresh rate."""
        ...


@runtime_checkable
class PowerAccountant(Protocol):
    """Prices a finished session's traces into energy.

    Implemented by :class:`~repro.power.model.PowerModel`; the
    structural contract is deliberately loose (``evaluate`` is
    keyword-driven) because pricing happens *after* the run on
    recorded traces, so alternate accountants only need to accept the
    same trace keywords.
    """

    def evaluate(self, *args: object, **kwargs: object) -> object:
        """Price one session; returns a report with mean power."""
        ...
