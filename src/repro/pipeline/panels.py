"""The panel registry: preset name -> :class:`PanelSpec`.

Single source of truth for ``--panel`` choices; the legacy helpers
:func:`repro.display.presets.panel_preset` and
:func:`~repro.display.presets.panel_preset_names` delegate here, so
registering a device from an extension module makes it selectable
everywhere at once::

    from repro.display.spec import PanelSpec
    from repro.pipeline import PANELS

    @PANELS.register("pixel-9")
    def make_pixel_9() -> PanelSpec:
        return PanelSpec(name="Pixel 9 (sim)", width=1080, height=2424,
                         refresh_rates_hz=(1.0, 10.0, 60.0, 120.0))

Builtin factories return the module-level constants (identity, not
copies): ``panel_preset("galaxy-s3") is GALAXY_S3_PANEL`` keeps
holding, which session equality and the spec encoder rely on.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..display.presets import (
    FIXED_60_PANEL,
    GALAXY_S3_PANEL,
    LTPO_120_PANEL,
    THREE_LEVEL_PANEL,
)
from ..display.spec import PanelSpec
from .registry import Registry

#: Factory signature every entry in :data:`PANELS` satisfies.
PanelFactory = Callable[[], PanelSpec]

#: The panel-preset registry.
PANELS: Registry[PanelFactory] = Registry("panel preset")


def _constant(spec: PanelSpec) -> PanelFactory:
    def factory() -> PanelSpec:
        return spec
    factory.__name__ = f"make_{spec.name}"
    return factory


PANELS.register("galaxy-s3", _constant(GALAXY_S3_PANEL), builtin=True)
PANELS.register("fixed-60", _constant(FIXED_60_PANEL), builtin=True)
PANELS.register("three-level", _constant(THREE_LEVEL_PANEL),
                builtin=True)
PANELS.register("ltpo-120", _constant(LTPO_120_PANEL), builtin=True)


def panel_key_for(spec: PanelSpec) -> Optional[str]:
    """The preset key whose spec equals ``spec``, or None.

    Used by the spec encoder to serialize well-known panels by name
    rather than inline field dumps.
    """
    for key in PANELS.names():
        if PANELS.get(key)() == spec:
            return key
    return None
