"""String-keyed component registries: one source of truth per stage.

Before this layer existed, selecting a governor by name meant a chain
of ``if config.governor == ...`` branches in ``run_session``, mirrored
by hand-maintained choice tuples in the CLI, the batch runner and five
experiment modules.  A :class:`Registry` replaces each of those chains
with a single table: builtins register at import time, extensions
register from their own module (one file, no edits elsewhere), and
every consumer — CLI choices, config validation, the session builder,
the parallel batch engine — reads the same table.

Registries are deliberately small: a key -> factory mapping with

* insertion-ordered ``names()`` (builtins keep their documented order),
* unknown-key errors that *list the valid keys* (the error a user sees
  from ``repro run --governor psychic`` names every alternative),
* a builtin/extension split so the batch engine can ship extension
  entries to worker processes (:meth:`extras` / :meth:`restore`), and
* a configurable error type so each registry fails with the same
  exception family its pre-registry lookup used.

Factories must be **module-level callables** when sessions run through
the parallel batch engine: extension entries cross process boundaries
by pickle-by-reference, which requires an importable ``module.name``
path (a lambda or closure works fine for single-process use).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

from ..errors import ConfigurationError, ReproError

F = TypeVar("F", bound=Callable[..., object])


class Registry(Generic[F]):
    """An ordered, string-keyed factory table for one component kind.

    Parameters
    ----------
    kind:
        Human name of the component family ("governor", "app",
        "panel preset") — used in every error message.
    error_type:
        Exception class raised for unknown keys and registration
        conflicts.  Defaults to
        :class:`~repro.errors.ConfigurationError`; the app registry
        uses :class:`~repro.errors.WorkloadError` to stay
        indistinguishable from the catalog lookup it replaced.
    """

    def __init__(self, kind: str,
                 error_type: Type[ReproError] = ConfigurationError
                 ) -> None:
        self._kind = kind
        self._error_type = error_type
        self._entries: Dict[str, F] = {}
        self._builtins: List[str] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, key: str, factory: Optional[F] = None, *,
                 builtin: bool = False,
                 replace: bool = False) -> Callable[[F], F]:
        """Register ``factory`` under ``key``.

        Usable directly (``registry.register("name", factory)``) or as
        a decorator (``@registry.register("name")``).  Re-registering
        an existing key raises unless ``replace=True``; builtins can
        never be replaced (they are the documented baseline every
        comparison rests on).

        Returns the factory (decorator form returns the decorated
        callable unchanged).
        """
        if not key:
            raise self._error_type(
                f"{self._kind} registry keys must be non-empty strings")

        def _register(target: F) -> F:
            if key in self._entries:
                if key in self._builtins:
                    raise self._error_type(
                        f"cannot replace builtin {self._kind} {key!r}")
                if not replace:
                    raise self._error_type(
                        f"{self._kind} {key!r} is already registered; "
                        f"pass replace=True to override")
            self._entries[key] = target
            if builtin and key not in self._builtins:
                self._builtins.append(key)
            return target

        if factory is not None:
            return _register(factory)  # type: ignore[return-value]
        return _register

    def unregister(self, key: str) -> None:
        """Remove an extension entry (builtins are permanent)."""
        if key in self._builtins:
            raise self._error_type(
                f"cannot unregister builtin {self._kind} {key!r}")
        if key not in self._entries:
            raise self._unknown(key)
        del self._entries[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> F:
        """The factory registered under ``key``.

        Raises this registry's error type with every valid key listed
        when ``key`` is unknown.
        """
        try:
            return self._entries[key]
        except KeyError:
            raise self._unknown(key) from None

    def create(self, key: str, *args: object, **kwargs: object) -> object:
        """Look up ``key`` and call its factory with the given args."""
        return self.get(key)(*args, **kwargs)

    def _unknown(self, key: str) -> ReproError:
        return self._error_type(
            f"unknown {self._kind} {key!r}; choices: {self.names()}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """The component family this registry holds."""
        return self._kind

    def names(self) -> Tuple[str, ...]:
        """Every registered key, in registration order."""
        return tuple(self._entries)

    def builtin_names(self) -> Tuple[str, ...]:
        """The builtin keys, in registration order."""
        return tuple(self._builtins)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return (f"Registry({self._kind!r}, "
                f"{len(self._entries)} entries)")

    # ------------------------------------------------------------------
    # Cross-process shipping (parallel batch support)
    # ------------------------------------------------------------------
    def extras(self) -> Tuple[Tuple[str, F], ...]:
        """Extension entries as ``(key, factory)`` pairs.

        Builtins are excluded: every worker process re-creates them by
        importing :mod:`repro.pipeline`.  The pairs are what
        :func:`repro.sim.batch.run_batch` pickles into its workers so a
        governor registered in the parent is selectable in the pool.
        """
        return tuple((key, factory)
                     for key, factory in self._entries.items()
                     if key not in self._builtins)

    def restore(self, entries: Sequence[Tuple[str, F]]) -> None:
        """Re-register shipped extension entries (idempotent)."""
        for key, factory in entries:
            if key not in self._builtins:
                self._entries[key] = factory
