"""Staged session assembly: config -> wired pipeline -> result.

:class:`SessionBuilder` is the constructor the old ``run_session``
monolith turned into.  Each ``build_*`` stage assembles one layer of
the pipeline — telemetry, fault injection, display stack, meter,
application, governor, input — in the exact order (and with the exact
seed derivations) the monolith used, so a built session is
byte-identical to the pre-refactor path.  The stages are separate
methods so tests and extensions can assemble a partial pipeline,
swap one stage, and continue; :meth:`run` executes the assembled
session and returns the same :class:`~repro.sim.session.SessionResult`
``run_session`` always returned.

Cross-cutting concerns attach as decorators on components rather than
as pipeline stages of their own: the fault injector and telemetry hub
are handed to each component at construction (``DisplayPanel``,
``ContentRateMeter``, ``TouchSource``, ``GovernorDriver``), and the
fail-safe watchdog wraps the governor policy.  A session without
faults or telemetry takes every uninstrumented branch and stays
bit-identical to the plain pipeline.

Entry points::

    result = SessionBuilder(config).run()           # what run_session does
    result = SessionBuilder.from_spec(spec).run()   # from a declarative spec
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, TypeVar, Union

import numpy as np
import numpy.typing as npt

from ..apps.base import Application
from ..apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from ..apps.wallpaper import LiveWallpaper, WallpaperProfile
from ..baselines.e3 import E3ScrollGovernor
from ..core.content_rate import ContentRateMeter
from ..core.governor import GovernorDriver, GovernorPolicy
from ..core.watchdog import GovernorWatchdog
from ..display.panel import DisplayPanel
from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..graphics.compositor import SurfaceManager
from ..graphics.framebuffer import Framebuffer
from ..graphics.surface import Surface
from ..inputs.monkey import MonkeyScriptGenerator
from ..inputs.touch import TouchEvent, TouchKind, TouchScript, TouchSource
from ..power.oled import OledEmissionTracker, OledModel
from ..sim.engine import Simulator
from ..sim.tracing import EventLog
from ..telemetry.events import EVENT_SESSION_END, EVENT_SESSION_START
from ..telemetry.hub import TelemetryHub, build_hub
from ..traces.profile import TraceProfile
from ..traces.source import TraceFrameSource
from .apps import resolve_workload
from .governors import GovernorContext, build_governor
from .spec import SessionSpec

#: How often a scroll drag re-delivers motion events to the governor
#: (real input stacks deliver moves at tens of hertz; touch boosting
#: re-arms on each one, holding the boost through the whole gesture).
SCROLL_MOVE_EVENT_HZ = 10.0

T = TypeVar("T")


class SessionBuilder:
    """Assemble one session from a config, stage by stage.

    Stages must run in declaration order (each consumes what earlier
    stages built); :meth:`assemble` runs any not yet run, so callers
    can invoke a prefix of stages manually, customize, then let
    :meth:`assemble`/:meth:`run` finish the rest.
    """

    def __init__(self, config: "SessionConfig") -> None:
        self.config = config
        self.profile: AppProfile = config.resolve_profile()
        self.sim = Simulator()
        # Stage products (filled by the build_* methods below).
        self.telemetry: Optional[TelemetryHub] = None
        self.injector: Optional[FaultInjector] = None
        self.framebuffer: Optional[Framebuffer] = None
        self.compositor: Optional[SurfaceManager] = None
        self.panel: Optional[DisplayPanel] = None
        self.meter: Optional[ContentRateMeter] = None
        self.oled_tracker: Optional[OledEmissionTracker] = None
        self.application: Optional[Application] = None
        self.status_bar_app: Optional[Application] = None
        self.compositions: Optional[EventLog] = None
        self.meaningful_compositions: Optional[EventLog] = None
        self.policy: Optional[GovernorPolicy] = None
        self.watchdog: Optional[GovernorWatchdog] = None
        self.driver: Optional[GovernorDriver] = None
        self.touch_script: Optional[TouchScript] = None
        self.touch_source: Optional[TouchSource] = None
        # Optional pre-allocated framebuffer pixel storage.  The
        # vector engine sets this (one row of its struct-of-arrays
        # block) before stages run so a whole batch of framebuffers
        # shares one contiguous allocation; None allocates normally.
        self.framebuffer_storage: Optional["npt.NDArray[np.uint8]"] = None
        self._completed_stages: Dict[str, bool] = {}

    @classmethod
    def from_spec(
            cls,
            spec: Union[SessionSpec, Dict[str, Any], str]
    ) -> "SessionBuilder":
        """A builder for a declarative spec (object, dict, or JSON)."""
        if isinstance(spec, str):
            spec = SessionSpec.from_json(spec)
        elif isinstance(spec, dict):
            spec = SessionSpec.from_json_dict(spec)
        return cls(spec.to_config())

    # ------------------------------------------------------------------
    # Stages, in assembly order
    # ------------------------------------------------------------------
    def build_telemetry(self) -> "SessionBuilder":
        """Stage 1: the telemetry hub (None = uninstrumented)."""
        config = self.config
        self.telemetry = build_hub(
            config.telemetry,
            default_session_id=f"{self.profile.name}:{config.governor}"
                               f":{config.seed}")
        if self.telemetry is not None:
            self.telemetry.emit(EVENT_SESSION_START, 0.0,
                                app=self.profile.name,
                                governor=config.governor,
                                seed=config.seed,
                                duration_s=config.duration_s)
        self._completed_stages["build_telemetry"] = True
        return self

    def build_injector(self) -> "SessionBuilder":
        """Stage 2: the fault injector (None = pristine)."""
        config = self.config
        self.injector = (
            FaultInjector(config.faults, telemetry=self.telemetry)
            if config.faults is not None else None)
        self._completed_stages["build_injector"] = True
        return self

    def build_display(self) -> "SessionBuilder":
        """Stage 3: framebuffer, compositor and panel."""
        config = self.config
        spec = config.panel
        fb_width = max(8, spec.width // config.resolution_divisor)
        fb_height = max(8, spec.height // config.resolution_divisor)
        self.framebuffer = Framebuffer(
            fb_width, fb_height, storage=self.framebuffer_storage)
        self.compositor = SurfaceManager(self.framebuffer)
        self.panel = DisplayPanel(self.sim, spec,
                                  injector=self.injector,
                                  telemetry=self.telemetry)
        self._completed_stages["build_display"] = True
        return self

    def build_meter(self) -> "SessionBuilder":
        """Stage 4: the content-rate meter watching the framebuffer."""
        self.meter = ContentRateMeter(
            self._need(self.framebuffer, "framebuffer"),
            self.config.meter, injector=self.injector,
            telemetry=self.telemetry)
        self._completed_stages["build_meter"] = True
        return self

    def build_tracker(self) -> "SessionBuilder":
        """Stage 5: optional OLED emission tracker (extension)."""
        if self.config.track_oled:
            self.oled_tracker = OledEmissionTracker(
                self._need(self.framebuffer, "framebuffer"), OledModel())
        self._completed_stages["build_tracker"] = True
        return self

    def build_application(self) -> "SessionBuilder":
        """Stage 6: the app (and optional status-bar overlay).

        The content seed derives from the master seed only — runs with
        different governors see identical workloads.
        """
        config = self.config
        framebuffer = self._need(self.framebuffer, "framebuffer")
        compositor = self._need(self.compositor, "compositor")
        surface = Surface(framebuffer.width, framebuffer.height,
                          name=self.profile.name)
        compositor.register_surface(surface)
        app_seed = config.seed * 1_000_003 + 1
        workload = resolve_workload(config.app)
        if isinstance(config.app, WallpaperProfile):
            self.application = LiveWallpaper(
                config.app, self.sim, compositor, surface, seed=app_seed)
        elif isinstance(workload, TraceProfile):
            trace = workload.load()
            if (trace.width, trace.height) != (framebuffer.width,
                                               framebuffer.height):
                raise ConfigurationError(
                    f"trace {workload.path} was recorded at "
                    f"{trace.width}x{trace.height} but this session's "
                    f"framebuffer is {framebuffer.width}x"
                    f"{framebuffer.height}; replay with the panel and "
                    f"resolution_divisor the trace was recorded at")
            self.application = TraceFrameSource(
                trace, self.profile, self.sim, compositor, surface,
                seed=app_seed)
        else:
            self.application = Application(
                self.profile, self.sim, compositor, surface,
                seed=app_seed)
        if config.status_bar:
            bar_height = max(2, framebuffer.height // 24)
            bar_surface = Surface(framebuffer.width, bar_height,
                                  x=0, y=0, z_order=1, name="status-bar")
            compositor.register_surface(bar_surface)
            self.status_bar_app = Application(
                status_bar_profile(), self.sim, compositor, bar_surface,
                seed=app_seed + 17)
        self._completed_stages["build_application"] = True
        return self

    def build_logs(self) -> "SessionBuilder":
        """Stage 7: ground-truth composition logs and V-Sync wiring
        (apps render first, the compositor latches after them)."""
        compositor = self._need(self.compositor, "compositor")
        panel = self._need(self.panel, "panel")
        application = self._need(self.application, "application")
        compositions = EventLog("compositions")
        meaningful = EventLog("meaningful_compositions")

        def _log_composition(time: float, redundant: bool) -> None:
            compositions.append(time)
            if not redundant:
                meaningful.append(time)

        compositor.add_composition_listener(_log_composition)
        panel.add_vsync_listener(application.on_vsync)
        if self.status_bar_app is not None:
            panel.add_vsync_listener(self.status_bar_app.on_vsync)
        panel.add_vsync_listener(compositor.on_vsync)
        self.compositions = compositions
        self.meaningful_compositions = meaningful
        self._completed_stages["build_logs"] = True
        return self

    def build_governor(self) -> "SessionBuilder":
        """Stage 8: policy (from the registry), watchdog, driver."""
        config = self.config
        panel = self._need(self.panel, "panel")
        context = GovernorContext(
            panel=panel,
            meter=self._need(self.meter, "meter"),
            application=self._need(self.application, "application"),
            content_window_s=config.content_window_s,
            boost_hold_s=config.boost_hold_s,
            table_bias=config.table_bias,
            framebuffer=self._need(self.framebuffer, "framebuffer"))
        policy = build_governor(config.governor, context)
        driven_policy: GovernorPolicy = policy
        if self.injector is not None and config.watchdog:
            self.watchdog = GovernorWatchdog(
                policy, failsafe_rate_hz=panel.spec.max_refresh_hz,
                config=config.watchdog_config, telemetry=self.telemetry)
            driven_policy = self.watchdog
        self.policy = policy
        self.driver = GovernorDriver(self.sim, panel, driven_policy,
                                     config.decision_period_s,
                                     telemetry=self.telemetry)
        self._completed_stages["build_governor"] = True
        return self

    def build_input(self) -> "SessionBuilder":
        """Stage 9: the Monkey touch script and its delivery source.

        The script seed derives from the master seed only, never the
        governor, so every policy replays the identical gesture
        sequence."""
        config = self.config
        monkey = MonkeyScriptGenerator(config.resolve_monkey())
        script = monkey.generate(config.seed * 7_777_777 + 13)
        source = TouchSource(self.sim, script, injector=self.injector)
        source.add_listener(
            self._need(self.application, "application").on_touch)
        source.add_listener(make_governor_touch_adapter(
            self.sim, self._need(self.driver, "driver"),
            self._need(self.policy, "policy")))
        self.touch_script = script
        self.touch_source = source
        self._completed_stages["build_input"] = True
        return self

    _STAGES = ("build_telemetry", "build_injector", "build_display",
               "build_meter", "build_tracker", "build_application",
               "build_logs", "build_governor", "build_input")

    def assemble(self) -> "SessionBuilder":
        """Run every stage not yet run, in order.

        Stages invoked manually are skipped here — a caller can run a
        prefix (say, through :meth:`build_display` to tap the
        framebuffer), customize, and let :meth:`assemble` finish the
        rest without rebuilding what already exists.
        """
        for stage in self._STAGES:
            if not self._completed_stages.get(stage):
                getattr(self, stage)()
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> "SessionResult":
        """Assemble (if needed), run the session, return its traces.

        Delegates to :class:`~repro.sim.runner.SessionRunner`, the
        incremental start/advance/finish core — running to completion
        is the single-slice special case of sliced execution, so the
        run-to-completion and checkpoint/resume paths cannot drift
        apart.
        """
        from ..sim.runner import SessionRunner

        return SessionRunner(self).run()

    # ------------------------------------------------------------------
    @staticmethod
    def _need(value: Optional[T], name: str) -> T:
        """Guard: ``value`` from an earlier stage, or a clear error."""
        if value is None:
            raise ConfigurationError(
                f"session builder stage ordering: {name!r} has not "
                f"been built yet (run assemble() or the earlier "
                f"build_* stages first)")
        return value


# ----------------------------------------------------------------------
# Helpers shared with the legacy facade (moved from sim.session)
# ----------------------------------------------------------------------
def finalize_telemetry(telemetry: TelemetryHub, config: "SessionConfig",
                       sim: Simulator, panel: DisplayPanel,
                       meter: ContentRateMeter,
                       injector: Optional[FaultInjector],
                       watchdog: Optional[GovernorWatchdog]) -> None:
    """Seal a session's telemetry: end-of-run gauges, fault snapshot.

    Fault and watchdog totals enter the metrics registry *here*, copied
    from the same ``summary_dict()`` calls that feed
    ``SessionResult.fault_summary_dict`` — a single emission path, so
    the ``faults`` block and the ``telemetry`` block can never
    disagree.  Live code paths only emit *events* for those subsystems.
    """
    metrics = telemetry.metrics
    metrics.gauge("sim.events_processed").set(sim.events_processed)
    metrics.gauge("sim.duration_s").set(config.duration_s)
    metrics.gauge("panel.final_refresh_hz").set(panel.refresh_rate_hz)
    metrics.counter("meter.bytes_copied").inc(meter.bytes_copied)
    if injector is not None:
        fault_summary = injector.summary_dict()
        metrics.counter("faults.injected_total").inc(
            fault_summary["injected_total"])
        for site, count in sorted(
                fault_summary["injected_by_site"].items()):
            metrics.counter(f"faults.injected.{site}").inc(count)
    if watchdog is not None:
        watchdog_summary = watchdog.summary_dict()
        for key in ("meter_failures", "failsafe_entries", "recoveries"):
            metrics.counter(f"watchdog.{key}").inc(
                watchdog_summary[key])
    telemetry.emit(EVENT_SESSION_END, config.duration_s,
                   events_processed=sim.events_processed,
                   frames=meter.total_frames,
                   meaningful_frames=meter.total_meaningful,
                   final_refresh_hz=panel.refresh_rate_hz)
    telemetry.close()


def make_governor_touch_adapter(
        sim: Simulator, driver: GovernorDriver,
        policy: GovernorPolicy) -> Callable[[TouchEvent], None]:
    """Deliver touch events (and scroll motion streams) to the governor.

    A tap is one event.  A scroll drag generates a stream of motion
    events for its whole duration (like a real input stack), each of
    which re-arms the policy — this is how touch boosting stays active
    through a long fling.
    """

    def on_touch(event: TouchEvent) -> None:
        driver.notify_touch(event.time)
        if isinstance(policy, E3ScrollGovernor):
            policy.on_touch_event(event)
        if event.kind is TouchKind.SCROLL and event.duration_s > 0:
            period = 1.0 / SCROLL_MOVE_EVENT_HZ
            t = event.time + period
            end = event.time + event.duration_s
            while t <= end:
                sim.call_at(t, _notify_at(driver), name="scroll-move")
                t += period

    def _notify_at(
            target: GovernorDriver) -> Callable[[Simulator], None]:
        def fire(s: Simulator) -> None:
            target.notify_touch(s.now)
        return fire

    return on_touch


def status_bar_profile() -> AppProfile:
    """The status-bar overlay: a 1 Hz clock tick in a tiny region."""
    return AppProfile(
        name="status-bar",
        category=AppCategory.GENERAL,
        idle_content_fps=1.0,
        active_content_fps=1.0,
        content_process=ContentProcess.PERIODIC,
        idle_submit_fps=0.0,
        render_style=RenderStyle.SMALL_REGION,
        render_cost_mj=0.1,
        cpu_base_mw=0.0,
        touch_events_per_s=0.0,
        scroll_fraction=0.0,
        notes="system overlay (session option)")


def run_spec(
        spec: Union[SessionSpec, Dict[str, Any], str]
) -> "SessionResult":
    """Run a session straight from a declarative spec."""
    return SessionBuilder.from_spec(spec).run()


if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.session import SessionConfig, SessionResult
