"""The shared fixed-rate baseline session.

Every figure in the paper is a comparison against the stock device —
the panel pinned at its maximum refresh rate (``governor="fixed"``).
Five experiment modules used to spell out that baseline config by hand;
this helper is the single definition they all call now, so the
baseline's meaning (governor, workload, seed discipline) can never
drift between figures.

``run_fixed_baseline(app, duration_s=60.0, seed=1)`` is the common
case; keyword overrides pass straight through to
:class:`~repro.sim.session.SessionConfig` for the experiments that
need a native-resolution framebuffer or a custom metering budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

from ..apps.profile import AppProfile
from ..apps.wallpaper import WallpaperProfile
from .governors import GOVERNOR_FIXED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.session import SessionConfig, SessionResult


def fixed_baseline_config(
        app: Union[str, AppProfile, WallpaperProfile],
        *, duration_s: float, seed: int,
        **overrides: Any) -> "SessionConfig":
    """The stock-device baseline config for ``app``.

    Any additional :class:`~repro.sim.session.SessionConfig` keyword
    (``resolution_divisor``, ``meter``, ``panel``, ...) passes through
    unchanged; the governor is always ``"fixed"``.
    """
    from ..sim.session import SessionConfig

    return SessionConfig(app=app, governor=GOVERNOR_FIXED,
                         duration_s=duration_s, seed=seed, **overrides)


def run_fixed_baseline(
        app: Union[str, AppProfile, WallpaperProfile],
        *, duration_s: float, seed: int,
        **overrides: Any) -> "SessionResult":
    """Run the stock-device baseline session for ``app``."""
    from ..sim.session import run_session

    return run_session(fixed_baseline_config(
        app, duration_s=duration_s, seed=seed, **overrides))
