"""The typed component pipeline behind every session.

This package is the seam between *what* a session runs (declarative
names and specs) and *how* it runs (wired component graphs):

``interfaces``
    :class:`typing.Protocol` contracts for each pipeline stage
    (input source, frame source, meter, governor, panel, power
    accountant).
``registry``
    The generic string-keyed factory :class:`Registry`.
``governors`` / ``apps`` / ``panels``
    The three concrete registries — single sources of truth for the
    selector strings accepted by the CLI, the batch runner, scenarios
    and every experiment.  Extensions register from their own module;
    no core file needs editing.
``spec``
    :class:`SessionSpec`, the JSON-round-trippable twin of
    :class:`~repro.sim.session.SessionConfig` — the form a session
    takes when it crosses a process or file boundary.
``builder``
    :class:`SessionBuilder`, the staged assembly that
    :func:`~repro.sim.session.run_session` now delegates to.
``eligibility``
    :func:`probe_vector_eligibility`, the probe deciding whether a
    spec can run on the lockstep vector engine
    (:mod:`repro.sim.vector`) or must take the scalar path.
``baseline``
    The shared stock-device (``fixed``) baseline helper the figures
    compare against.

See ``docs/architecture.md`` for the layering diagram and the
add-a-governor-in-one-file recipe.
"""

from .baseline import fixed_baseline_config, run_fixed_baseline
from .builder import (
    SCROLL_MOVE_EVENT_HZ,
    SessionBuilder,
    run_spec,
)
from .eligibility import (
    VECTOR_GOVERNORS,
    VectorEligibility,
    probe_vector_eligibility,
    vector_eligible,
)
from .governors import (
    GOVERNOR_E3,
    GOVERNOR_FIXED,
    GOVERNOR_NAIVE,
    GOVERNOR_ORACLE,
    GOVERNOR_SECTION,
    GOVERNOR_SECTION_BOOST,
    GOVERNOR_SECTION_HYSTERESIS,
    GOVERNORS,
    GovernorContext,
    GovernorFactory,
    build_governor,
    governor_names,
)
from .apps import (
    APPS,
    AppFactory,
    WorkloadProfile,
    resolve_app_profile,
    resolve_workload,
)
from .interfaces import (
    FrameSource,
    GovernorPolicy,
    InputSource,
    Meter,
    Panel,
    PowerAccountant,
    TouchListener,
    VsyncListener,
)
from .panels import PANELS, PanelFactory, panel_key_for
from .registry import Registry
from .spec import SPEC_SCHEMA, SessionSpec, spec_roundtrip

__all__ = [
    # registries
    "Registry",
    "GOVERNORS",
    "APPS",
    "PANELS",
    # governor layer
    "GovernorContext",
    "GovernorFactory",
    "build_governor",
    "governor_names",
    "GOVERNOR_FIXED",
    "GOVERNOR_SECTION",
    "GOVERNOR_SECTION_BOOST",
    "GOVERNOR_SECTION_HYSTERESIS",
    "GOVERNOR_NAIVE",
    "GOVERNOR_ORACLE",
    "GOVERNOR_E3",
    # app layer
    "AppFactory",
    "WorkloadProfile",
    "resolve_workload",
    "resolve_app_profile",
    # panel layer
    "PanelFactory",
    "panel_key_for",
    # spec + builder
    "SessionSpec",
    "SPEC_SCHEMA",
    "spec_roundtrip",
    "SessionBuilder",
    "run_spec",
    "SCROLL_MOVE_EVENT_HZ",
    # vector-engine eligibility
    "VECTOR_GOVERNORS",
    "VectorEligibility",
    "probe_vector_eligibility",
    "vector_eligible",
    # baseline helper
    "fixed_baseline_config",
    "run_fixed_baseline",
    # stage protocols
    "InputSource",
    "FrameSource",
    "Meter",
    "GovernorPolicy",
    "Panel",
    "PowerAccountant",
    "TouchListener",
    "VsyncListener",
]
