"""Command-line interface.

Everything the examples do, scriptable::

    python -m repro apps                      # list the workload catalog
    python -m repro table --panel galaxy-s3   # print the section table
    python -m repro table --rates 30,60,120   # ... for custom levels
    python -m repro run --app Facebook --governor section+boost
    python -m repro run --app Facebook --telemetry out.jsonl
    python -m repro stats out.jsonl           # summarize a telemetry stream
    python -m repro compare --app "Jelly Splash" --duration 45
    python -m repro compare --app Facebook --workers 4
    python -m repro experiment fig6           # regenerate a paper figure
    python -m repro bench --json              # performance harness
    python -m repro trace record --app Facebook --out fb.rptrace
    python -m repro trace replay fb.rptrace --governor section
    python -m repro trace info fb.rptrace     # codec + content stats
    python -m repro trace gen --kind idle --out idle.rptrace

All output is plain text; every command is deterministic for a given
``--seed``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .analysis.export import (
    write_events_csv,
    write_session_json,
    write_trace_csv,
)
from .analysis.latency import session_touch_latency
from .analysis.tables import format_table
from .apps.catalog import all_app_names, app_profile
from .core.quality import quality_vs_baseline
from .core.section_table import SectionTable
from .display.presets import panel_preset, panel_preset_names
from .errors import ConfigurationError, ReproError
from .experiments.registry import EXPERIMENTS, experiment
from .pipeline import (
    GOVERNOR_ORACLE,
    fixed_baseline_config,
    governor_names,
)
from .sim.session import SessionConfig, run_session
from .telemetry.hub import TelemetryConfig
from .telemetry.stats import format_stats, summarize_jsonl
from .traces import SYNTH_KINDS


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-centric display energy management "
                    "(DAC 2014) — simulation toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_apps = sub.add_parser("apps", help="list the application catalog")
    p_apps.set_defaults(func=cmd_apps)

    p_table = sub.add_parser(
        "table", help="print the Equation (1) section table")
    p_table.add_argument("--panel", default="galaxy-s3",
                         choices=panel_preset_names(),
                         help="panel preset supplying the rate levels")
    p_table.add_argument("--rates", default=None,
                         help="comma-separated custom rates (overrides "
                              "--panel), e.g. 30,60,120")
    p_table.set_defaults(func=cmd_table)

    p_run = sub.add_parser("run", help="run one session")
    _add_session_args(p_run)
    p_run.add_argument("--governor", default="section+boost",
                       choices=governor_names())
    p_run.add_argument("--oled", action="store_true",
                       help="track content-dependent OLED emission")
    _add_engine_arg(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser(
        "compare", help="race governors against the fixed baseline")
    _add_session_args(p_cmp)
    p_cmp.add_argument("--governors",
                       default="section,section+boost",
                       help="comma-separated governors to compare")
    p_cmp.add_argument("--workers", type=int, default=1,
                       help="worker processes for the comparison "
                            "sessions (default 1: in-process; the "
                            "parallel batch runner guarantees "
                            "identical numbers at any count)")
    p_cmp.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed result cache directory "
                            "(reused across runs; identical sessions "
                            "are served from disk, byte-identical to "
                            "recomputing)")
    _add_engine_arg(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="parameter-grid sweep with multi-seed "
                      "statistics, result caching and a regression "
                      "check")
    p_sweep.add_argument("--app", required=True,
                         help="base application (each --grid axis "
                              "overrides one spec field)")
    p_sweep.add_argument("--governor", default="section+boost",
                         help="base governor (default section+boost)")
    p_sweep.add_argument("--duration", type=float, default=45.0,
                         help="base session duration in seconds")
    p_sweep.add_argument("--panel", default="galaxy-s3",
                         help="base panel preset")
    p_sweep.add_argument("--grid", action="append", default=None,
                         metavar="FIELD=V1,V2",
                         help="one grid axis over a spec field "
                              "(repeatable; cells are the cartesian "
                              "product)")
    p_sweep.add_argument("--seeds", default="1", metavar="S1,S2,...",
                         help="comma-separated replication seeds; "
                              "aggregates report mean ±95%% CI across "
                              "them (default: 1)")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (default 1; the "
                              "document is identical at any count)")
    p_sweep.add_argument("--cache", default=None, metavar="DIR",
                         help="content-addressed result cache "
                              "directory: repeated cells are served "
                              "from disk, byte-identical to "
                              "recomputing")
    p_sweep.add_argument("--cache-max-entries", type=int, default=None,
                         metavar="N",
                         help="evict oldest cache entries beyond N "
                              "after the sweep")
    p_sweep.add_argument("--out", default=None, metavar="PATH",
                         help="write the deterministic repro-sweep/1 "
                              "document (byte-diffable cold vs warm)")
    p_sweep.add_argument("--stats-out", default=None, metavar="PATH",
                         help="write the nondeterministic run stats "
                              "(wall clock, cache hit/miss counts)")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the sweep document as JSON "
                              "instead of the aggregate table")
    p_sweep.add_argument("--check", default=None, metavar="REFERENCE",
                         help="diff against a committed repro-sweep/1 "
                              "reference; regressions exit 1")
    p_sweep.add_argument("--threshold", type=float, default=0.05,
                         help="allowed worsening per metric mean as a "
                              "fraction of the reference (default "
                              "0.05)")
    p_sweep.add_argument("--metric-threshold", action="append",
                         default=None, metavar="NAME=FRACTION",
                         help="per-metric threshold override "
                              "(repeatable)")
    _add_engine_arg(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_tour = sub.add_parser(
        "tournament", help="power-vs-quality leaderboard over every "
                           "registered governor (catalog + synthetic "
                           "traces + luminance probe)")
    p_tour.add_argument("--governors", default=None,
                        metavar="G1,G2,...",
                        help="comma-separated competitors (default: "
                             "every registered governor)")
    p_tour.add_argument("--apps", default=None, metavar="A1,A2,...",
                        help="comma-separated catalog apps (default: "
                             "the full 30-app catalog)")
    p_tour.add_argument("--traces", default="video,scroll",
                        metavar="K1,K2,...",
                        help="comma-separated synthetic trace kinds "
                             "(default: video,scroll; empty for none)")
    p_tour.add_argument("--duration", type=float, default=20.0,
                        help="session duration per cell in seconds")
    p_tour.add_argument("--trace-duration", type=float, default=10.0,
                        help="generated trace length in seconds")
    p_tour.add_argument("--seed", type=int, default=1,
                        help="workload seed shared by every cell")
    p_tour.add_argument("--no-probe", action="store_true",
                        help="skip the dark/light luminance probe "
                             "pair")
    p_tour.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1; the "
                             "document is identical at any count)")
    p_tour.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed result cache "
                             "directory: repeated catalog cells are "
                             "served from disk, byte-identical to "
                             "recomputing (trace cells are "
                             "uncacheable)")
    p_tour.add_argument("--cache-max-entries", type=int, default=None,
                        metavar="N",
                        help="evict oldest cache entries beyond N "
                             "after the run")
    p_tour.add_argument("--out", default=None, metavar="PATH",
                        help="write the deterministic "
                             "repro-tournament/1 document "
                             "(byte-diffable cold vs warm)")
    p_tour.add_argument("--stats-out", default=None, metavar="PATH",
                        help="write the nondeterministic run stats "
                             "(wall clock, cache hit/miss counts)")
    p_tour.add_argument("--json", action="store_true",
                        help="print the tournament document as JSON "
                             "instead of the leaderboard table")
    p_tour.add_argument("--check", default=None, metavar="REFERENCE",
                        help="byte-compare against a committed "
                             "repro-tournament/1 reference; any "
                             "difference exits 1")
    _add_engine_arg(p_tour, default="auto")
    p_tour.set_defaults(func=cmd_tournament)

    p_export = sub.add_parser(
        "export", help="run a session and dump its traces")
    _add_session_args(p_export)
    p_export.add_argument("--governor", default="section+boost",
                          choices=governor_names())
    p_export.add_argument("--out", default="session",
                          help="output prefix: writes <out>.json, "
                               "<out>_trace.csv, <out>_events.csv")
    p_export.set_defaults(func=cmd_export)

    p_scn = sub.add_parser(
        "scenario", help="run a multi-app usage scenario")
    p_scn.add_argument("--apps", required=True,
                       help="comma-separated app names, one segment "
                            "each")
    p_scn.add_argument("--segment-duration", type=float, default=20.0)
    p_scn.add_argument("--governor", default="section+boost",
                       choices=[g for g in governor_names()
                                if g != GOVERNOR_ORACLE])
    p_scn.add_argument("--seed", type=int, default=1)
    p_scn.set_defaults(func=cmd_scenario)

    p_rep = sub.add_parser(
        "report", help="regenerate EVERY paper artifact into one file")
    p_rep.add_argument("--out", default="REPRODUCTION_REPORT.txt",
                       help="output file (default "
                            "REPRODUCTION_REPORT.txt)")
    p_rep.add_argument("--fast", action="store_true",
                       help="short sessions (quick sanity run)")
    p_rep.set_defaults(func=cmd_report)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("experiment_id", nargs="?", default=None,
                       help="e.g. fig6, table1; omit to list all")
    p_exp.set_defaults(func=cmd_experiment)

    p_stats = sub.add_parser(
        "stats", help="summarize a telemetry JSONL stream (or render "
                      "it as Prometheus exposition text)")
    p_stats.add_argument("jsonl", help="stream written by "
                                       "'run --telemetry' (or, with "
                                       "--format prom, a repro-bench/1 "
                                       "JSON document)")
    p_stats.add_argument("--format", default="text",
                         choices=("text", "prom"),
                         help="output format: human-readable summary "
                              "(default) or Prometheus text exposition "
                              "v0.0.4 through the same renderer the "
                              "live /metrics endpoint uses")
    p_stats.set_defaults(func=cmd_stats)

    p_bench = sub.add_parser(
        "bench", help="time the hot paths (meter compare, native "
                      "session, parallel batch) and optionally gate "
                      "against a baseline")
    p_bench.add_argument("--json", action="store_true",
                         help="print the machine-readable bench "
                              "document instead of the table")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="also write the document to PATH "
                              "(default: not written; 'auto' picks "
                              "BENCH_<rev>.json)")
    p_bench.add_argument("--check", default=None, metavar="BASELINE",
                         help="compare against this baseline document "
                              "and exit 1 on any regression beyond "
                              "--threshold (the CI bench gate)")
    p_bench.add_argument("--threshold", type=float, default=0.2,
                         help="allowed regression fraction per metric "
                              "(default 0.2 = 20%%)")
    p_bench.add_argument("--metric-threshold", action="append",
                         default=None, metavar="NAME=FRACTION",
                         help="per-metric override of --threshold "
                              "(repeatable), e.g. "
                              "batch32_speedup_x=0.35")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="worker count for the batch workload "
                              "(default: one per CPU)")
    p_bench.add_argument("--fast", action="store_true",
                         help="shrunken workloads (harness smoke "
                              "test; not comparable to full-size "
                              "baselines)")
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="record, replay, and inspect binary frame "
                      "traces (repro-trace/1)")
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)

    p_rec = trace_sub.add_parser(
        "record", help="run a session and record its framebuffer "
                       "into a trace file")
    _add_session_args(p_rec)
    p_rec.add_argument("--governor", default="section+boost",
                       choices=governor_names())
    p_rec.add_argument("--out", required=True, metavar="PATH",
                       help="trace file to write (.rptrace)")
    p_rec.set_defaults(func=cmd_trace_record)

    p_play = trace_sub.add_parser(
        "replay", help="replay a trace as a first-class session "
                       "(byte-identical under the recorded governor)")
    p_play.add_argument("trace", help="trace file to replay")
    p_play.add_argument("--governor", default=None,
                        choices=governor_names(),
                        help="override the recorded governor")
    p_play.add_argument("--summary-json", default=None, metavar="PATH",
                        help="write the session summary as JSON "
                             "('-' for stdout)")
    p_play.set_defaults(func=cmd_trace_replay)

    p_info = trace_sub.add_parser(
        "info", help="print a trace's header, codec, and content "
                     "statistics")
    p_info.add_argument("trace", help="trace file to inspect")
    p_info.set_defaults(func=cmd_trace_info)

    p_gen = trace_sub.add_parser(
        "gen", help="generate a synthetic trace (video/scroll/idle)")
    p_gen.add_argument("--kind", required=True,
                       choices=list(SYNTH_KINDS))
    p_gen.add_argument("--duration", type=float, default=10.0,
                       help="trace length in seconds")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, metavar="PATH",
                       help="trace file to write (.rptrace)")
    p_gen.set_defaults(func=cmd_trace_gen)

    p_serve = sub.add_parser(
        "serve", help="run the durable session service over a state "
                      "directory (docs/service.md)")
    p_serve.add_argument("--state-dir", required=True, metavar="DIR",
                         help="service state directory (journal, "
                              "jobs, checkpoints, results)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent session workers (default 2)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="worker-pool shards, each with its own "
                              "bounded queue (default 1)")
    p_serve.add_argument("--queue-capacity", type=int, default=16,
                         help="bounded queue capacity per shard "
                              "(default 16)")
    p_serve.add_argument("--checkpoint-period", type=float,
                         default=5.0, metavar="SIM_S",
                         help="sim seconds of progress between "
                              "checkpoints (default 5)")
    p_serve.add_argument("--slice", type=float, default=1.0,
                         metavar="SIM_S",
                         help="sim seconds advanced per cooperative "
                              "step (default 1)")
    p_serve.add_argument("--slice-sleep", type=float, default=0.0,
                         metavar="WALL_S",
                         help="wall seconds slept between steps "
                              "(paces execution; default 0)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="attempts per job before a terminal "
                              "failure record (default 3)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="WALL_S",
                         help="default per-job wall-clock deadline "
                              "(jobs may carry their own)")
    p_serve.add_argument("--breaker-threshold", type=int, default=5,
                         help="consecutive failures that open the "
                              "circuit breaker (default 5)")
    p_serve.add_argument("--breaker-cooldown", type=float,
                         default=30.0, metavar="WALL_S",
                         help="seconds the breaker stays open "
                              "(default 30)")
    p_serve.add_argument("--until-idle", action="store_true",
                         help="exit once every known job is terminal "
                              "and no new jobs arrive (batch mode)")
    p_serve.add_argument("--max-runtime", type=float, default=None,
                         metavar="WALL_S",
                         help="park everything and exit after this "
                              "many wall seconds (CI safety net)")
    p_serve.add_argument("--no-fsync", action="store_true",
                         help="skip per-append journal fsync (faster, "
                              "test-only; crash durability weakens)")
    p_serve.add_argument("--http", type=int, default=None,
                         metavar="PORT",
                         help="serve /metrics, /healthz, /readyz on "
                              "127.0.0.1:PORT (0 picks an ephemeral "
                              "port, published in health.json; "
                              "default: no listener)")
    p_serve.add_argument("--cache", default=None, metavar="DIR",
                         help="content-addressed result cache "
                              "directory: jobs whose spec is already "
                              "cached complete without simulating, "
                              "and finished jobs populate the cache")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="spool a session job into a service state "
                       "directory (atomic; works with no service "
                       "running)")
    p_submit.add_argument("--state-dir", required=True, metavar="DIR")
    source = p_submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--spec", default=None, metavar="PATH",
                        help="SessionSpec JSON document to submit "
                             "('-' reads stdin)")
    source.add_argument("--app", default=None,
                        help="catalog application name (builds the "
                             "spec from --governor/--duration/--seed)")
    source.add_argument("--trace", default=None, metavar="PATH",
                        help="frame-trace file; submits its replay "
                             "session")
    p_submit.add_argument("--governor", default="section+boost",
                          choices=governor_names())
    p_submit.add_argument("--duration", type=float, default=45.0)
    p_submit.add_argument("--seed", type=int, default=1)
    p_submit.add_argument("--panel", default="galaxy-s3",
                          choices=panel_preset_names())
    p_submit.add_argument("--job-id", default=None,
                          help="job id (default: content-addressed "
                               "from the spec)")
    p_submit.add_argument("--deadline", type=float, default=None,
                          metavar="WALL_S",
                          help="per-job wall-clock deadline")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="report job states and health for a service "
                       "state directory")
    p_status.add_argument("--state-dir", required=True, metavar="DIR")
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable status document")
    p_status.set_defaults(func=cmd_status)

    p_texp = sub.add_parser(
        "trace-export",
        help="export a service journal (and optionally a telemetry "
             "JSONL stream) as Chrome trace-event JSON loadable in "
             "Perfetto / chrome://tracing")
    p_texp.add_argument("--state-dir", default=None, metavar="DIR",
                        help="service state directory whose journal "
                             "to export")
    p_texp.add_argument("--job", action="append", default=None,
                        metavar="JOB_ID",
                        help="restrict the export to this job "
                             "(repeatable; default: all jobs)")
    p_texp.add_argument("--telemetry", default=None, metavar="PATH",
                        help="also fold in a session telemetry JSONL "
                             "stream (span slices + instants)")
    p_texp.add_argument("--out", required=True, metavar="PATH",
                        help="trace JSON to write ('-' for stdout)")
    p_texp.set_defaults(func=cmd_trace_export)

    p_top = sub.add_parser(
        "top", help="live refreshing console over /metrics + "
                    "health.json (queue depth, breaker, per-shard "
                    "throughput, span latencies)")
    p_top.add_argument("--state-dir", required=True, metavar="DIR")
    p_top.add_argument("--interval", type=float, default=1.0,
                       metavar="WALL_S",
                       help="refresh period in seconds (default 1)")
    p_top.add_argument("--iterations", type=int, default=None,
                       metavar="N",
                       help="stop after N refreshes (default: until "
                            "Ctrl-C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the "
                            "screen (for piping)")
    p_top.set_defaults(func=cmd_top)

    p_drain = sub.add_parser(
        "drain", help="ask a running service to finish every queued "
                      "job and exit (or --stop to park and exit now)")
    p_drain.add_argument("--state-dir", required=True, metavar="DIR")
    p_drain.add_argument("--stop", action="store_true",
                         help="park in-flight jobs and exit "
                              "immediately instead of draining")
    p_drain.set_defaults(func=cmd_drain)

    p_chaos = sub.add_parser(
        "chaos", help="run the service chaos harness: kill -9 the "
                      "service mid-job, corrupt checkpoints, tear the "
                      "journal; assert full recovery")
    p_chaos.add_argument("--state-dir", default=None, metavar="DIR",
                         help="scratch directory (default: a fresh "
                              "temp dir, removed on success)")
    p_chaos.add_argument("--jobs", type=int, default=3,
                         help="spec jobs per scenario (default 3; a "
                              "trace job is always added)")
    p_chaos.add_argument("--duration", type=float, default=20.0,
                         help="sim seconds per job (default 20)")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--scenarios", default=None,
                         help="comma-separated subset of: "
                              "kill,corrupt_checkpoint,"
                              "truncate_journal")
    p_chaos.add_argument("--json", action="store_true",
                         help="machine-readable report")
    p_chaos.set_defaults(func=cmd_chaos)

    return parser


def _add_session_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", required=True,
                        help="catalog application name")
    parser.add_argument("--duration", type=float, default=45.0,
                        help="session length in seconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--panel", default="galaxy-s3",
                        choices=panel_preset_names())
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection plan, e.g. "
                             "'panel_refuse=0.05,meter_fail=0.01,"
                             "touch_drop=0.1'; bursts as "
                             "'meter_fail@10:20=1.0'")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault injector's random "
                             "streams (default 0)")
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="capture a structured event stream "
                             "(rate switches, boosts, spans, ...) to "
                             "this JSONL file; summarize it with "
                             "'repro stats PATH'")


def _add_engine_arg(parser: argparse.ArgumentParser,
                    default: str = "scalar") -> None:
    from .sim.batch import ENGINE_CHOICES
    parser.add_argument("--engine", default=default,
                        choices=ENGINE_CHOICES,
                        help=f"execution engine (default {default}): "
                             "'scalar' runs the reference "
                             "per-session path; "
                             "'auto' routes eligible sessions through "
                             "the lockstep vector engine "
                             "(byte-identical, faster) and falls back "
                             "to scalar otherwise; 'vector' does the "
                             "same but 'repro run' then *requires* "
                             "eligibility and errors if the session "
                             "cannot be vectorized")


def _resolve_telemetry(args: argparse.Namespace):
    """The :class:`TelemetryConfig` requested, or None (disabled)."""
    if getattr(args, "telemetry", None) is None:
        return None
    return TelemetryConfig(jsonl_path=args.telemetry)


def _resolve_faults(args: argparse.Namespace):
    """The :class:`FaultPlan` requested on the command line, or None."""
    if getattr(args, "faults", None) is None:
        return None
    from .faults.plan import FaultPlan
    return FaultPlan.parse(args.faults, seed=args.fault_seed)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def cmd_apps(args: argparse.Namespace) -> int:
    rows = []
    for name in all_app_names():
        p = app_profile(name)
        rows.append([
            name, p.category.value,
            f"{p.idle_content_fps:g}", f"{p.active_content_fps:g}",
            f"{p.idle_submit_fps:g}", p.render_style.value,
            p.notes,
        ])
    print(format_table(
        ["app", "category", "idle fps", "active fps", "submit fps",
         "style", "notes"],
        rows, title="Application catalog (30 apps, fit to the paper's "
                    "survey)"))
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    if args.rates:
        try:
            rates = [float(r) for r in args.rates.split(",")]
        except ValueError:
            raise ConfigurationError(
                f"--rates must be a comma-separated list of numbers, "
                f"got {args.rates!r}") from None
        table = SectionTable.from_rates(rates)
        source = f"custom rates {rates}"
    else:
        spec = panel_preset(args.panel)
        table = SectionTable.for_panel(spec)
        source = spec.name
    print(f"Section table (Equation 1) for {source}:")
    print(table.describe())
    return 0


def _run_with_engine(config: SessionConfig, engine: str):
    """One session on the requested engine (same results on all)."""
    if engine == "scalar":
        return run_session(config)
    if engine == "vector":
        from .sim.vector import VectorRunner
        return VectorRunner(config).run()
    from .sim.vector import run_vector_session
    return run_vector_session(config)


def cmd_run(args: argparse.Namespace) -> int:
    result = _run_with_engine(SessionConfig(
        app=args.app, governor=args.governor,
        duration_s=args.duration, seed=args.seed,
        panel=panel_preset(args.panel),
        track_oled=args.oled,
        faults=_resolve_faults(args),
        telemetry=_resolve_telemetry(args)), args.engine)
    report = result.power_report()
    print(f"app:            {result.profile.name} "
          f"({result.profile.category.value})")
    print(f"governor:       {result.governor_name}")
    print(f"duration:       {result.duration_s:g} s "
          f"(seed {args.seed})")
    print(f"mean power:     {report.mean_power_mw:.1f} mW")
    components = ", ".join(
        f"{k} {v:.0f}" for k, v in report.component_power_mw().items()
        if v > 0)
    print(f"  components:   {components} (mW)")
    print(f"mean refresh:   {result.mean_refresh_rate_hz:.1f} Hz "
          f"({result.panel.rate_switches} switches)")
    print(f"frame rate:     {result.mean_frame_rate_fps:.1f} fps "
          f"({result.mean_content_rate_fps:.1f} content, "
          f"{result.mean_redundant_rate_fps:.1f} redundant)")
    latency = session_touch_latency(result)
    if latency.answered:
        print(f"touch latency:  {1e3 * latency.mean_s:.0f} ms mean over "
              f"{latency.answered} touches")
    if result.injector is not None:
        faults = result.fault_summary_dict()
        by_site = ", ".join(
            f"{site} {count}" for site, count
            in sorted(faults["injected_by_site"].items())) or "none"
        print(f"faults:         {faults['injected_total']} injected "
              f"({by_site})")
        print(f"watchdog:       {faults['meter_failures']} meter "
              f"failures, {faults['failsafe_entries']} fail-safe "
              f"entries, {faults['recoveries']} recoveries "
              f"(final state {faults['watchdog_state']})")
    if result.telemetry is not None:
        hub = result.telemetry
        print(f"telemetry:      {hub.events_total} events "
              f"({args.telemetry}); "
              f"summarize with 'repro stats {args.telemetry}'")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .sim.batch import run_batch
    governors = [g.strip() for g in args.governors.split(",") if g]
    faults = _resolve_faults(args)
    configs = [fixed_baseline_config(
        args.app, duration_s=args.duration, seed=args.seed,
        panel=panel_preset(args.panel))]
    configs += [SessionConfig(
        app=args.app, governor=governor, duration_s=args.duration,
        seed=args.seed, panel=panel_preset(args.panel),
        faults=faults) for governor in governors]
    cache = None
    if args.cache is not None:
        from .cache import ResultCache
        cache = ResultCache(args.cache)
    summaries = run_batch(configs, workers=args.workers,
                          on_error="raise", cache=cache,
                          engine=args.engine)
    if cache is not None:
        cache.write_index()
    base = summaries[0]
    base_power = base["mean_power_mw"]
    rows = [["fixed", f"{base_power:.0f}", "0", "100.0",
             f"{base['mean_refresh_hz']:.1f}"]]
    for governor, summary in zip(governors, summaries[1:]):
        power = summary["mean_power_mw"]
        quality = quality_vs_baseline(summary["content_rate_fps"],
                                      base["content_rate_fps"])
        rows.append([governor, f"{power:.0f}",
                     f"{base_power - power:.0f}",
                     f"{100 * quality:.1f}",
                     f"{summary['mean_refresh_hz']:.1f}"])
    print(format_table(
        ["governor", "power mW", "saved mW", "quality %", "refresh Hz"],
        rows,
        title=f"{args.app}: identical {args.duration:g} s workload "
              f"(seed {args.seed})"))
    return 0


def _parse_metric_thresholds(items) -> dict:
    """``NAME=FRACTION`` override arguments -> ``{name: fraction}``."""
    overrides = {}
    for item in items or ():
        name, _, value = item.partition("=")
        if not name or not value:
            raise ConfigurationError(
                f"--metric-threshold expects NAME=FRACTION, got "
                f"{item!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"--metric-threshold {item!r}: {value!r} is not "
                f"a number") from None
    return overrides


def cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import sys
    import time

    from .analysis.sweep import (
        SWEEP_SCHEMA,
        SWEEP_STATS_SCHEMA,
        compare_sweep,
        format_regressions,
        format_sweep,
        parse_grid,
        run_sweep,
    )
    from .ioutil import atomic_write_json
    from .pipeline.spec import SessionSpec
    # Load the reference before the (slow) sweep so a missing or
    # malformed one fails fast.
    reference = None
    if args.check:
        try:
            reference = json.loads(
                pathlib.Path(args.check).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot read sweep reference {args.check!r}: "
                f"{exc}") from None
        if not isinstance(reference, dict) or \
                reference.get("schema") != SWEEP_SCHEMA:
            raise ConfigurationError(
                f"{args.check!r} is not a {SWEEP_SCHEMA} document")
    overrides = _parse_metric_thresholds(args.metric_threshold)
    grid = {}
    for item in args.grid or ():
        field, values = parse_grid(item)
        if field in grid:
            raise ConfigurationError(
                f"grid axis {field!r} given twice")
        grid[field] = values
    try:
        seeds = [int(part) for part in args.seeds.split(",")
                 if part.strip()]
    except ValueError:
        raise ConfigurationError(
            f"--seeds expects comma-separated integers, got "
            f"{args.seeds!r}") from None
    base = SessionSpec(app=args.app, governor=args.governor,
                       duration_s=args.duration, panel=args.panel)
    cache = None
    if args.cache is not None:
        from .cache import ResultCache
        cache = ResultCache(args.cache)
    started = time.perf_counter()
    document = run_sweep(base, grid, seeds=seeds,
                         workers=args.workers, cache=cache,
                         engine=args.engine)
    wall_s = time.perf_counter() - started
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(format_sweep(document))
    if args.out:
        atomic_write_json(args.out, document)
        print(f"wrote {args.out}", file=sys.stderr)
    if cache is not None:
        if args.cache_max_entries is not None:
            cache.prune(args.cache_max_entries)
        cache.write_index()
        from .cache import hit_rate
        hits, lookups, fraction = hit_rate(cache.stats_dict())
        print(f"cache: {hits}/{lookups} hits "
              f"({100 * fraction:.0f}%) in {wall_s:.2f} s",
              file=sys.stderr)
    if args.stats_out:
        atomic_write_json(args.stats_out, {
            "schema": SWEEP_STATS_SCHEMA,
            "wall_s": wall_s,
            "cells": len(document["cells"]),
            "cache": cache.stats_dict() if cache is not None
            else None,
        })
        print(f"wrote {args.stats_out}", file=sys.stderr)
    if reference is not None:
        regressions = compare_sweep(document, reference,
                                    args.threshold,
                                    overrides or None)
        print(format_regressions(regressions))
        return 1 if regressions else 0
    return 0


def _split_csv(text) -> tuple:
    """A comma-separated CLI list -> tuple (empty string -> empty)."""
    if text is None:
        return ()
    return tuple(part.strip() for part in text.split(",")
                 if part.strip())


def cmd_tournament(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import sys
    import time

    from .experiments.tournament import (
        TOURNAMENT_SCHEMA,
        TOURNAMENT_STATS_SCHEMA,
        TournamentConfig,
        format_tournament,
        run_tournament,
    )
    from .ioutil import atomic_write_json
    # Load the reference before the (slow) run so a missing or
    # malformed one fails fast.
    reference = None
    if args.check:
        try:
            reference = json.loads(
                pathlib.Path(args.check).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot read tournament reference {args.check!r}: "
                f"{exc}") from None
        if not isinstance(reference, dict) or \
                reference.get("schema") != TOURNAMENT_SCHEMA:
            raise ConfigurationError(
                f"{args.check!r} is not a {TOURNAMENT_SCHEMA} "
                f"document")
    from .apps.catalog import all_app_names
    config = TournamentConfig(
        governors=_split_csv(args.governors),
        apps=_split_csv(args.apps) or all_app_names(),
        trace_kinds=_split_csv(args.traces),
        duration_s=args.duration,
        trace_duration_s=args.trace_duration,
        seed=args.seed,
        luminance_probe=not args.no_probe)
    cache = None
    if args.cache is not None:
        from .cache import ResultCache
        cache = ResultCache(args.cache)
    started = time.perf_counter()
    document = run_tournament(config, workers=args.workers,
                              cache=cache, engine=args.engine)
    wall_s = time.perf_counter() - started
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(format_tournament(document))
    if args.out:
        atomic_write_json(args.out, document)
        print(f"wrote {args.out}", file=sys.stderr)
    if cache is not None:
        if args.cache_max_entries is not None:
            cache.prune(args.cache_max_entries)
        cache.write_index()
        from .cache import hit_rate
        hits, lookups, fraction = hit_rate(cache.stats_dict())
        print(f"cache: {hits}/{lookups} hits "
              f"({100 * fraction:.0f}%) in {wall_s:.2f} s",
              file=sys.stderr)
    if args.stats_out:
        atomic_write_json(args.stats_out, {
            "schema": TOURNAMENT_STATS_SCHEMA,
            "wall_s": wall_s,
            "engine": args.engine,
            "cells": len(document["cells"]),
            "cache": cache.stats_dict() if cache is not None
            else None,
        })
        print(f"wrote {args.stats_out}", file=sys.stderr)
    if reference is not None:
        if document != reference:
            print("tournament check: document differs from "
                  f"{args.check}", file=sys.stderr)
            return 1
        print("tournament check: OK (byte-identical to reference)")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    result = run_session(SessionConfig(
        app=args.app, governor=args.governor,
        duration_s=args.duration, seed=args.seed,
        panel=panel_preset(args.panel),
        faults=_resolve_faults(args),
        telemetry=_resolve_telemetry(args)))
    json_path = write_session_json(result, f"{args.out}.json")
    trace_path = write_trace_csv(result, f"{args.out}_trace.csv")
    events_path = write_events_csv(result, f"{args.out}_events.csv")
    print(f"wrote {json_path}, {trace_path}, {events_path}")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .sim.scenario import (
        ScenarioConfig, ScenarioSegment, run_scenario)
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    segments = tuple(ScenarioSegment(app, args.segment_duration)
                     for app in apps)

    def run_with(governor):
        return run_scenario(ScenarioConfig(
            segments=segments, governor=governor, seed=args.seed))

    base = run_with("fixed")
    governed = run_with(args.governor)
    rows = []
    for i, segment in enumerate(governed.segments):
        b = base.segment_power(base.segments[i]).mean_power_mw
        g = governed.segment_power(segment).mean_power_mw
        quality = governed.segment_quality(i, base)
        rows.append([segment.profile.name,
                     f"{segment.start_s:g}-{segment.end_s:g}",
                     f"{b:.0f}", f"{b - g:.0f}",
                     f"{100 * quality:.1f}"])
    print(format_table(
        ["segment", "window s", "baseline mW", "saved mW",
         "quality %"],
        rows,
        title=f"Scenario under {governed.governor_name} "
              f"(seed {args.seed})"))
    total_saved = (base.power_report().mean_power_mw -
                   governed.power_report().mean_power_mw)
    print(f"total: {total_saved:.0f} mW saved over "
          f"{governed.config.total_duration_s:g} s")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments.report import generate_report
    from .experiments.survey import SurveyConfig
    if args.fast:
        text = generate_report(
            survey_config=SurveyConfig(duration_s=10.0),
            trace_duration_s=20.0, fig6_duration_s=5.0)
    else:
        text = generate_report()
    from .ioutil import atomic_write_text
    path = atomic_write_text(pathlib.Path(args.out), text)
    print(text)
    print(f"(written to {path})")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.experiment_id is None:
        rows = [[e.experiment_id, e.paper_content, e.benchmark]
                for e in EXPERIMENTS]
        print(format_table(["id", "paper content", "benchmark"], rows,
                           title="Registered experiments"))
        return 0
    info = experiment(args.experiment_id)
    print(f"Running {info.experiment_id}: {info.paper_content} ...")
    result = info.runner()
    print(result.format())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.format == "prom":
        import json
        import sys

        from .telemetry.expose import (
            render_snapshot,
            snapshot_from_bench,
            snapshot_from_events,
        )
        # A repro-bench/1 JSON document renders as bench.* gauges;
        # anything else is treated as a telemetry JSONL stream.
        document = None
        try:
            import pathlib
            document = json.loads(
                pathlib.Path(args.jsonl).read_text())
        except ValueError:
            document = None
        if isinstance(document, dict) and \
                document.get("schema") == "repro-bench/1":
            snapshot = snapshot_from_bench(document)
        else:
            from .telemetry.stats import parse_jsonl
            snapshot = snapshot_from_events(parse_jsonl(args.jsonl))
        sys.stdout.write(render_snapshot(snapshot))
        return 0
    print(format_stats(summarize_jsonl(args.jsonl)))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json
    import sys

    from .bench import (
        format_bench, load_bench, main_check, run_bench, write_bench)
    # Load the baseline *before* the (slow) bench run so a missing or
    # malformed baseline fails fast.
    baseline = load_bench(args.check) if args.check else None
    bench = run_bench(workers=args.workers, fast=args.fast)
    if args.json:
        print(json.dumps(bench, indent=2, sort_keys=True))
    else:
        print(format_bench(bench, baseline))
    if args.out:
        path = write_bench(bench,
                           None if args.out == "auto" else args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.check:
        overrides = _parse_metric_thresholds(args.metric_threshold)
        return main_check(bench, args.check, args.threshold,
                          metric_thresholds=overrides or None)
    return 0


def _print_session_brief(result) -> None:
    """The short summary every trace subcommand shares."""
    report = result.power_report()
    print(f"governor:       {result.governor_name}")
    print(f"mean power:     {report.mean_power_mw:.1f} mW")
    print(f"mean refresh:   {result.mean_refresh_rate_hz:.1f} Hz "
          f"({result.panel.rate_switches} switches)")
    print(f"frame rate:     {result.mean_frame_rate_fps:.1f} fps "
          f"({result.mean_content_rate_fps:.1f} content)")


def cmd_trace_record(args: argparse.Namespace) -> int:
    from .traces import record_session, save_trace
    result, trace = record_session(SessionConfig(
        app=args.app, governor=args.governor,
        duration_s=args.duration, seed=args.seed,
        panel=panel_preset(args.panel),
        faults=_resolve_faults(args),
        telemetry=_resolve_telemetry(args)))
    path = save_trace(trace, args.out)
    info = trace.info_dict()
    print(f"recorded {info['frame_count']} frames "
          f"({info['meaningful_frames']} meaningful) over "
          f"{trace.duration_s:g} s -> {path}")
    print(f"encoded:        {info['encoded_frame_bytes']} B "
          f"({100 * info['compression_ratio']:.1f}% of raw)")
    _print_session_brief(result)
    return 0


def cmd_trace_replay(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import sys

    from .analysis.export import json_sanitize, session_summary_dict
    from .traces import replay_config
    overrides = {}
    if args.governor is not None:
        overrides["governor"] = args.governor
    result = run_session(replay_config(args.trace, **overrides))
    _print_session_brief(result)
    if args.summary_json is not None:
        text = json.dumps(json_sanitize(session_summary_dict(result)),
                          indent=2, sort_keys=True,
                          allow_nan=False) + "\n"
        if args.summary_json == "-":
            sys.stdout.write(text)
        else:
            from .ioutil import atomic_write_text
            atomic_write_text(pathlib.Path(args.summary_json), text)
            print(f"wrote {args.summary_json}")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    from .traces import load_trace
    info = load_trace(args.trace).info_dict()
    print(f"schema:         {info['schema']}")
    print(f"geometry:       {info['width']}x{info['height']} "
          f"(duration {info['duration_s']:g} s)")
    print(f"frames:         {info['frame_count']} "
          f"({info['meaningful_frames']} meaningful, "
          f"{info['redundant_frames']} redundant)")
    print(f"raw bytes:      {info['raw_frame_bytes']}")
    print(f"encoded bytes:  {info['encoded_frame_bytes']} "
          f"({100 * info['compression_ratio']:.1f}% of raw)")
    for name, count in sorted(info["aux_channels"].items()):
        print(f"aux:            {name} ({count} samples)")
    origin = info["meta"].get("origin", "unknown")
    print(f"origin:         {origin}")
    return 0


def cmd_trace_gen(args: argparse.Namespace) -> int:
    from .traces import save_trace, synthetic_trace
    trace = synthetic_trace(args.kind, duration_s=args.duration,
                            seed=args.seed)
    path = save_trace(trace, args.out)
    info = trace.info_dict()
    print(f"generated {args.kind} trace: {info['frame_count']} frames "
          f"over {trace.duration_s:g} s -> {path}")
    print(f"encoded:        {info['encoded_frame_bytes']} B "
          f"({100 * info['compression_ratio']:.1f}% of raw)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import sys

    from .service import ServiceConfig, SessionService
    config = ServiceConfig(
        state_dir=args.state_dir,
        workers=args.workers,
        shards=args.shards,
        queue_capacity=args.queue_capacity,
        checkpoint_period_s=args.checkpoint_period,
        slice_s=args.slice,
        slice_sleep_s=args.slice_sleep,
        max_attempts=args.max_attempts,
        default_deadline_s=args.deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        until_idle=args.until_idle,
        max_runtime_s=args.max_runtime,
        fsync_journal=not args.no_fsync,
        http_port=args.http,
        cache_dir=args.cache,
    )
    service = SessionService(config)
    print(f"serving {args.state_dir} "
          f"(workers={args.workers}, shards={args.shards})",
          file=sys.stderr)
    summary = asyncio.run(service.serve())
    jobs = summary["jobs"]
    print(f"service exit: {jobs['done']} done, {jobs['failed']} "
          f"failed, {jobs['rejected']} rejected, "
          f"{jobs['pending'] + jobs['running']} parked/pending",
          file=sys.stderr)
    return 0


def _submit_spec_document(args: argparse.Namespace) -> dict:
    """The SessionSpec document `repro submit` should spool."""
    import json
    import pathlib
    import sys

    from .pipeline.spec import SessionSpec
    if args.spec is not None:
        text = (sys.stdin.read() if args.spec == "-"
                else pathlib.Path(args.spec).read_text())
        # Round-trip through the strict decoder so a malformed spec is
        # rejected at submit time, not inside a service worker.
        return SessionSpec.from_json(text).to_json_dict()
    app = args.app if args.app is not None else f"trace:{args.trace}"
    config = SessionConfig(
        app=app, governor=args.governor, duration_s=args.duration,
        seed=args.seed, panel=panel_preset(args.panel))
    return SessionSpec.from_config(config).to_json_dict()


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import JobRequest
    from .service.service import (
        job_id_for_spec,
        next_submit_seq,
        submit_job,
    )
    from .telemetry.tracing import mint_trace_id
    spec_document = _submit_spec_document(args)
    job_id = args.job_id or job_id_for_spec(spec_document)
    submitted_seq = next_submit_seq(args.state_dir)
    job = JobRequest(
        job_id=job_id, spec=spec_document,
        deadline_s=args.deadline,
        submitted_seq=submitted_seq,
        trace_id=mint_trace_id(job_id, submitted_seq))
    path = submit_job(args.state_dir, job)
    print(f"submitted {job_id} -> {path} (trace {job.trace_id})")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    import json

    from .service.service import service_status
    status = service_status(args.state_dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status["counts"]
    print(f"state dir:      {status['state_dir']}")
    print(f"jobs:           {len(status['jobs'])} known "
          f"({counts['done']} done, {counts['failed']} failed, "
          f"{counts['rejected']} rejected, {counts['parked']} parked, "
          f"{counts['pending']} pending)")
    journal = status["journal"]
    damage = ""
    if journal["torn_tail"] or journal["bad_lines"]:
        damage = (f"  [damage: torn_tail={journal['torn_tail']}, "
                  f"bad_lines={journal['bad_lines']}]")
    print(f"journal:        {journal['records']} records{damage}")
    health = status.get("health")
    if health:
        breaker = health.get("breaker", {})
        if status.get("health_stale"):
            age = status.get("health_age_s")
            age_text = (f"{age:.1f}s ago"
                        if isinstance(age, (int, float)) else "unknown")
            print(f"last health:    STALE (last reported "
                  f"state={health.get('state')!r} {age_text}; "
                  f"heartbeat older than 2x health period)")
        else:
            print(f"last health:    state={health.get('state')} "
                  f"ready={health.get('ready')} "
                  f"breaker={breaker.get('state')}")
    if status["jobs"]:
        rows = [[entry["job_id"], entry["status"],
                 entry.get("error_type") or ""]
                for entry in status["jobs"]]
        print(format_table(["job", "status", "error"], rows))
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    import json
    import sys

    from .telemetry.tracing import (
        chrome_trace_document,
        journal_trace_events,
        telemetry_trace_events,
        write_chrome_trace,
    )
    if args.state_dir is None and args.telemetry is None:
        raise ConfigurationError(
            "trace-export needs --state-dir and/or --telemetry")
    events: list = []
    metadata: dict = {}
    if args.state_dir is not None:
        from .service.jobs import ServicePaths
        from .service.journal import read_journal
        paths = ServicePaths(args.state_dir)
        state = read_journal(paths.journal_path)
        events.extend(journal_trace_events(
            state.records, job_ids=args.job or None))
        metadata["journal_records"] = len(state.records)
        metadata["state_dir"] = str(paths.state_dir)
    if args.telemetry is not None:
        from .telemetry.stats import parse_jsonl
        events.extend(telemetry_trace_events(
            parse_jsonl(args.telemetry), pid=0))
        metadata["telemetry_stream"] = args.telemetry
    trace_ids = sorted({
        event["args"]["trace_id"] for event in events
        if isinstance(event.get("args"), dict)
        and "trace_id" in event["args"]})
    metadata["trace_ids"] = trace_ids
    generations = sum(1 for event in events
                      if event.get("name") == "service_start")
    document = chrome_trace_document(events, metadata=metadata)
    if args.out == "-":
        sys.stdout.write(json.dumps(document, sort_keys=True) + "\n")
    else:
        write_chrome_trace(args.out, document)
        print(f"wrote {args.out}: {len(events)} trace events, "
              f"{len(trace_ids)} trace id(s), "
              f"{generations} service generation(s)")
        print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from .service.console import run_top
    return run_top(args.state_dir, interval_s=args.interval,
                   iterations=args.iterations,
                   clear=not args.no_clear)


def cmd_drain(args: argparse.Namespace) -> int:
    from .service.service import request_drain, request_stop
    if args.stop:
        marker = request_stop(args.state_dir)
        print(f"stop requested -> {marker}")
    else:
        marker = request_drain(args.state_dir)
        print(f"drain requested -> {marker}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .service.chaos import CHAOS_SCENARIOS, ChaosConfig, run_chaos
    scenarios = (tuple(args.scenarios.split(","))
                 if args.scenarios else CHAOS_SCENARIOS)
    report = run_chaos(ChaosConfig(
        state_dir=args.state_dir, jobs=args.jobs,
        duration_s=args.duration, seed=args.seed,
        scenarios=scenarios))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for scenario in report["scenarios"]:
            flag = "ok" if scenario["ok"] else "FAIL"
            print(f"{scenario['name']:<22} {flag:<5} "
                  f"{scenario['detail']}")
        print(f"chaos: {report['passed']}/{report['total']} "
              f"scenarios passed")
    return 0 if report["ok"] else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - parser.exit raises
    except OSError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - parser.exit raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
