"""Application workload models.

The paper evaluates 30 commercial Android applications (15 general, 15
games) from the Korean Google Play top charts.  Those binaries are not
available offline, so this package provides synthetic application
models whose *observable display behaviour* — meaningful frame rate,
redundant frame rate, response to touch — is fit to what the paper
reports about each app (Figure 3's redundancy survey, Figure 2's
traces).  The models produce real pixels through the graphics stack, so
the content-rate meter runs exactly the algorithm it would on a device.

See :mod:`repro.apps.catalog` for the full 30-app table and the fitting
notes.
"""

from .base import Application
from .catalog import (
    GAME_APP_NAMES,
    GENERAL_APP_NAMES,
    all_app_names,
    app_profile,
    profiles_by_category,
)
from .profile import AppCategory, AppProfile, ContentProcess
from .wallpaper import LiveWallpaper, WallpaperProfile, nexus_revamped

__all__ = [
    "AppCategory",
    "AppProfile",
    "Application",
    "ContentProcess",
    "GAME_APP_NAMES",
    "GENERAL_APP_NAMES",
    "LiveWallpaper",
    "WallpaperProfile",
    "all_app_names",
    "app_profile",
    "nexus_revamped",
    "profiles_by_category",
]
