"""Live-wallpaper workloads for the metering-accuracy study (Fig 6).

The paper validates the grid meter on live wallpapers "that continuously
display consecutive images below 25 fps".  Ordinary wallpapers change
most of the screen every frame, so any grid sees them (accuracy was
immediately 100 %); the stress case is **Nexus Revamped**, which only
moves a few small dots per frame — small enough to slip between sparse
grid samples.  :func:`nexus_revamped` builds that stressor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..graphics.compositor import SurfaceManager
from ..graphics.renderers import (
    FullScreenVideoRenderer,
    MovingSpritesRenderer,
    Renderer,
)
from ..graphics.surface import Surface
from ..sim.engine import Simulator
from ..units import ensure_positive, ensure_positive_int
from .base import Application
from .profile import AppCategory, AppProfile, ContentProcess, RenderStyle


@dataclass(frozen=True)
class WallpaperProfile:
    """A live wallpaper: periodic content at a fixed rate.

    Parameters
    ----------
    name:
        Display name.
    frame_fps:
        The wallpaper's animation rate (paper: below 25 fps).
    num_dots, dot_px, step_px:
        Sprite parameters for the moving-dots renderer; ignored when
        ``full_screen`` is True.
    full_screen:
        True for a whole-screen animation (the easy case), False for
        the moving-dots stressor.
    """

    name: str
    frame_fps: float = 25.0
    num_dots: int = 6
    dot_px: int = 2
    step_px: int = 3
    full_screen: bool = False

    def __post_init__(self) -> None:
        ensure_positive(self.frame_fps, "frame_fps")
        ensure_positive_int(self.num_dots, "num_dots")
        ensure_positive_int(self.dot_px, "dot_px")
        ensure_positive_int(self.step_px, "step_px")
        if self.frame_fps > 60.0:
            raise ConfigurationError(
                "wallpapers animate at or below the panel rate")

    def make_renderer(self) -> Renderer:
        """The pixel generator for this wallpaper."""
        if self.full_screen:
            return FullScreenVideoRenderer(block_px=16)
        return MovingSpritesRenderer(num_dots=self.num_dots,
                                     dot_px=self.dot_px,
                                     step_px=self.step_px)

    def as_app_profile(self) -> AppProfile:
        """Adapt to an :class:`~repro.apps.profile.AppProfile`.

        Wallpapers submit only on change (the animation tick) and have
        no interaction response worth modelling.
        """
        return AppProfile(
            name=self.name,
            category=AppCategory.GENERAL,
            idle_content_fps=self.frame_fps,
            active_content_fps=self.frame_fps,
            content_process=ContentProcess.PERIODIC,
            idle_submit_fps=0.0,
            render_style=(RenderStyle.VIDEO if self.full_screen
                          else RenderStyle.SPRITES),
            render_cost_mj=0.8,
            cpu_base_mw=70.0,
            touch_events_per_s=0.0,
            scroll_fraction=0.0,
            notes="live wallpaper (accuracy workload)")


def nexus_revamped(frame_fps: float = 20.0, num_dots: int = 2,
                   dot_px: int = 12, step_px: int = 12
                   ) -> WallpaperProfile:
    """The paper's extreme accuracy stressor.

    "Nexus Revamped ... continuously makes small changes by moving
    small dots across the screen."  The defaults put two 12x12-pixel
    dots on the native 720x1280 screen, each jumping a full dot-width
    per frame.  Against the Figure 6 grids this is exactly the knife
    edge the paper reports: a 12 px dot always covers a sample point of
    the 9K grid (10 px cells) but can slip between the 4K (15 px) and
    2K (20 px) grids' samples, so error falls to zero from 9K upward.
    """
    return WallpaperProfile(name="Nexus Revamped", frame_fps=frame_fps,
                            num_dots=num_dots, dot_px=dot_px,
                            step_px=step_px, full_screen=False)


class LiveWallpaper(Application):
    """An :class:`Application` specialised for wallpaper profiles.

    Overrides the renderer with the wallpaper's own sprite parameters
    (the generic profile-based factory uses fixed defaults).
    """

    def __init__(self, wallpaper: WallpaperProfile, sim: Simulator,
                 compositor: SurfaceManager, surface: Surface,
                 seed: int = 0) -> None:
        super().__init__(wallpaper.as_app_profile(), sim, compositor,
                         surface, seed)
        self.wallpaper = wallpaper
        self._renderer = wallpaper.make_renderer()
