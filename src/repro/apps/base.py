"""The application behaviour engine.

:class:`Application` turns an :class:`~repro.apps.profile.AppProfile`
into activity on the simulation clock:

* a **content process** fires genuine content-change instants —
  exponential gaps (Poisson) or exact periods, at the idle rate or the
  active rate during/after interaction.  Content instants are scheduled
  on the simulator timeline *independently of the refresh rate*, so the
  same seed produces the same ground-truth content stream under every
  governor (the controlled-comparison property of the paper's method);
* a **render loop** runs off V-Sync (Android Choreographer style): at
  each V-Sync the app renders-and-posts if content changed, or posts a
  redundant frame if its idle submission loop is due.  Content changes
  that pile up between V-Syncs coalesce into one displayed frame — the
  frame drop the paper's quality analysis counts.
"""

from __future__ import annotations

import math

from typing import Optional

import numpy as np

from ..errors import WorkloadError
from ..graphics.compositor import SurfaceManager
from ..graphics.surface import Surface
from ..inputs.touch import TouchEvent, TouchKind
from ..sim.engine import EventHandle, Simulator
from ..sim.tracing import EventLog
from .profile import AppProfile, ContentProcess


class Application:
    """One running application bound to a surface and the clock.

    Parameters
    ----------
    profile:
        The behaviour description.
    sim:
        Simulation clock.
    compositor:
        Surface manager to post frames to.
    surface:
        The app's (already registered) drawing surface.
    seed:
        Seed for the content process and renderer randomness.  The same
        seed reproduces the same content stream exactly.
    """

    def __init__(self, profile: AppProfile, sim: Simulator,
                 compositor: SurfaceManager, surface: Surface,
                 seed: int = 0) -> None:
        self.profile = profile
        self._sim = sim
        self._compositor = compositor
        self._surface = surface
        # Two independent streams: content-change timing must be
        # identical across governor configurations (the controlled
        # comparison of the paper's method), while the renderer's
        # randomness is consumed once per *posted* frame — a count that
        # legitimately varies with the refresh rate.  Sharing one
        # stream would let rendering perturb content timing.
        self._content_rng = np.random.default_rng([seed, 0])
        self._render_rng = np.random.default_rng([seed, 1])
        self._renderer = profile.make_renderer()

        self._started = False
        self._pending_changes = 0
        self._active_until = float("-inf")
        self._next_content: Optional[EventHandle] = None
        self._last_post_time = float("-inf")

        #: Ground truth: every genuine content-change instant.
        self.content_changes = EventLog("content_changes")
        #: Every frame the app posted (meaningful or redundant).
        self.submissions = EventLog("submissions")
        #: Every render pass the app executed (for power accounting).
        self.renders = EventLog("renders")
        #: Content changes that coalesced into an already-pending frame.
        self.coalesced_changes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the content process; call before the panel starts."""
        if self._started:
            raise WorkloadError(
                f"application {self.profile.name!r} already started")
        self._started = True
        self._schedule_next_content()

    @property
    def started(self) -> bool:
        """True once :meth:`start` has run."""
        return self._started

    # ------------------------------------------------------------------
    # Interaction state
    # ------------------------------------------------------------------
    def interacting(self, now: float) -> bool:
        """True while interaction keeps the content rate elevated."""
        return now < self._active_until

    def current_content_fps(self, now: float) -> float:
        """The content-change rate in force at ``now``."""
        if self.interacting(now):
            return self.profile.active_content_fps
        return self.profile.idle_content_fps

    def on_touch(self, event: TouchEvent) -> None:
        """React to a touch: elevate the content rate for the gesture
        plus the profile's burst duration."""
        hold = self.profile.burst_duration_s
        if event.kind is TouchKind.SCROLL:
            hold += event.duration_s
        new_until = event.time + hold
        was_interacting = self.interacting(event.time)
        self._active_until = max(self._active_until, new_until)
        # Entering the active state invalidates a pending idle-rate gap:
        # reschedule from now at the active rate.
        if self._started and not was_interacting:
            self._schedule_next_content()

    # ------------------------------------------------------------------
    # Content process
    # ------------------------------------------------------------------
    def _schedule_next_content(self) -> None:
        if self._next_content is not None and self._next_content.pending:
            self._sim.cancel(self._next_content)
        now = self._sim.now
        rate = self.current_content_fps(now)
        if rate <= 0:
            self._next_content = None
            return
        if self.profile.content_process is ContentProcess.PERIODIC:
            gap = 1.0 / rate
        elif self.profile.content_process is ContentProcess.ANIMATION:
            # Jittered frame ticks: +-15 % around the nominal period,
            # so ticks never bunch while the rate is below refresh.
            gap = (1.0 / rate) * float(self._content_rng.uniform(0.85, 1.15))
        else:
            gap = float(self._content_rng.exponential(1.0 / rate))
        if not math.isfinite(gap):
            # A denormal-tiny rate overflows 1/rate to infinity; such a
            # rate means "effectively never" — same as rate zero.
            self._next_content = None
            return
        self._next_content = self._sim.call_after(
            gap, self._fire_content, name=f"{self.profile.name}-content")

    def _fire_content(self, sim: Simulator) -> None:
        self.content_changes.append(sim.now)
        if self._pending_changes > 0:
            self.coalesced_changes += 1
        self._pending_changes += 1
        self._schedule_next_content()

    # ------------------------------------------------------------------
    # Render loop (V-Sync driven)
    # ------------------------------------------------------------------
    def on_vsync(self, time: float) -> None:
        """Choreographer callback: render/post if there is work.

        Called by the session wiring at every V-Sync, *before* the
        compositor latch for the same V-Sync runs.
        """
        if not self._started:
            return
        if self._pending_changes > 0:
            # All pending changes collapse into one rendered frame.
            self._pending_changes = 0
            self._renderer.render(self._surface, self._render_rng)
            self._post(time, content_changed=True)
            return
        idle_fps = self.profile.idle_submit_fps
        if idle_fps > 0 and \
                time - self._last_post_time >= (1.0 / idle_fps) - 1e-9:
            # Free-running loop: re-render the unchanged scene and post
            # a redundant frame.  The pixels are untouched since the
            # last post, so the post declares content_changed=False —
            # what lets the compositor's coherence fast path skip the
            # provably-identical recomposition.
            self._post(time, content_changed=False)

    def _post(self, time: float, content_changed: bool = True) -> None:
        self.renders.append(time)
        self.submissions.append(time)
        self._compositor.post(self._surface,
                              content_changed=content_changed)
        self._last_post_time = time

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def surface(self) -> Surface:
        """The app's drawing surface."""
        return self._surface

    @property
    def pending_changes(self) -> int:
        """Content changes waiting for the next render."""
        return self._pending_changes

    @property
    def last_post_time(self) -> float:
        """Time of the most recent post (``-inf`` before the first).

        The vector fast path replays the idle-submission predicate
        against this value when deciding whether a V-Sync tick can be
        skipped.
        """
        return self._last_post_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Application {self.profile.name!r}>"
