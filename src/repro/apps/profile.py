"""Application behaviour profiles.

An :class:`AppProfile` is the complete, declarative description of one
synthetic application: how often its content genuinely changes (idle
and under interaction), how it submits frames (only on change, or on a
free-running loop that produces redundant frames), what its content
changes look like on screen, how it is touched, and what its
display-independent power cost is.

The profile is pure data; :class:`~repro.apps.base.Application` turns it
into behaviour on the simulation clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..graphics.renderers import (
    FullScreenVideoRenderer,
    MovingSpritesRenderer,
    Renderer,
    SceneChangeRenderer,
    ScrollRenderer,
    SmallRegionRenderer,
)
from ..units import ensure_non_negative, ensure_positive


class AppCategory(enum.Enum):
    """The paper's two application classes."""

    GENERAL = "general"
    GAME = "game"


class ContentProcess(enum.Enum):
    """How content-change instants are generated.

    POISSON models bursty, human-driven content (feeds, maps, portal
    pages); PERIODIC models exactly clocked content (video playback);
    ANIMATION models game/app animations — frame ticks at a nominal
    rate with a little jitter, which (unlike Poisson) never bunches two
    ticks into one V-Sync interval as long as the rate stays below the
    refresh rate.  Getting this right matters for the quality figures:
    a Poisson stream coalesces frames even in steady state, while real
    game animations only drop frames when the refresh rate lags them.
    """

    POISSON = "poisson"
    PERIODIC = "periodic"
    ANIMATION = "animation"


class RenderStyle(enum.Enum):
    """What one content change does to the pixels (selects a renderer)."""

    SCROLL = "scroll"
    SCENE = "scene"
    VIDEO = "video"
    SMALL_REGION = "small_region"
    SPRITES = "sprites"


@dataclass(frozen=True)
class AppProfile:
    """Declarative description of one synthetic application.

    Content behaviour
    -----------------
    idle_content_fps:
        Rate of genuine content changes with no interaction (fps).
    active_content_fps:
        Content-change rate while the user is interacting (during a
        scroll gesture and for ``burst_duration_s`` after any touch).
    burst_duration_s:
        How long elevated content persists after an interaction.
    content_process:
        POISSON or PERIODIC change instants.

    Submission behaviour
    --------------------
    idle_submit_fps:
        Frame-submission loop rate when there is *no* new content.
        0 means the app only posts on change (well-behaved); 60 means a
        free-running render loop that posts every V-Sync (most games) —
        the redundant frames of Section 2.2.  The achieved redundant
        rate is capped by the refresh rate through V-Sync.

    Appearance
    ----------
    render_style:
        Which renderer draws a content change (affects how visible the
        change is to the metering grid).

    Power
    -----
    render_cost_mj:
        Energy per application render pass (GPU + CPU drawing), charged
        for redundant submissions too — re-drawing an unchanged scene
        is precisely the waste the paper eliminates.
    cpu_base_mw:
        Display-independent device power while this app runs (SoC,
        radios, game logic).

    Interaction (Monkey defaults for this app)
    ------------------------------------------
    touch_events_per_s:
        Mean Monkey event rate used when driving this app.
    scroll_fraction:
        Fraction of Monkey events that are scroll gestures.
    """

    name: str
    category: AppCategory
    idle_content_fps: float
    active_content_fps: float
    burst_duration_s: float = 1.5
    content_process: ContentProcess = ContentProcess.POISSON
    idle_submit_fps: float = 0.0
    render_style: RenderStyle = RenderStyle.SCENE
    render_cost_mj: float = 1.0
    cpu_base_mw: float = 100.0
    touch_events_per_s: float = 0.25
    scroll_fraction: float = 0.3
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("app profile needs a name")
        ensure_non_negative(self.idle_content_fps, "idle_content_fps")
        ensure_non_negative(self.active_content_fps, "active_content_fps")
        ensure_positive(self.burst_duration_s, "burst_duration_s")
        ensure_non_negative(self.idle_submit_fps, "idle_submit_fps")
        ensure_non_negative(self.render_cost_mj, "render_cost_mj")
        ensure_non_negative(self.cpu_base_mw, "cpu_base_mw")
        ensure_non_negative(self.touch_events_per_s, "touch_events_per_s")
        if not 0.0 <= self.scroll_fraction <= 1.0:
            raise ConfigurationError(
                f"scroll_fraction must be in [0, 1], got "
                f"{self.scroll_fraction}")
        if self.active_content_fps < self.idle_content_fps:
            raise ConfigurationError(
                f"{self.name}: active_content_fps "
                f"({self.active_content_fps}) must be >= idle_content_fps "
                f"({self.idle_content_fps})")

    @property
    def is_game(self) -> bool:
        """True for game-category profiles."""
        return self.category is AppCategory.GAME

    def make_renderer(self) -> Renderer:
        """Instantiate the renderer for this profile's content style."""
        if self.render_style is RenderStyle.SCROLL:
            return ScrollRenderer(scroll_px=8)
        if self.render_style is RenderStyle.SCENE:
            return SceneChangeRenderer(num_rects=4)
        if self.render_style is RenderStyle.VIDEO:
            return FullScreenVideoRenderer(block_px=16)
        if self.render_style is RenderStyle.SMALL_REGION:
            return SmallRegionRenderer(region_height=6, region_width=24,
                                       y=2, x=2)
        if self.render_style is RenderStyle.SPRITES:
            return MovingSpritesRenderer(num_dots=6, dot_px=2, step_px=3)
        raise ConfigurationError(
            f"unknown render style {self.render_style!r}")
