"""The 30-application catalog (15 general + 15 game).

These are the applications of the paper's Section 2.2 survey — 30 top
chart titles from Google Play South Korea, run for ~3 minutes each on a
Galaxy S3.  The binaries are unavailable, so each entry here is a
synthetic profile **fit to what the paper reports**:

* Figure 3(a,b): general apps mostly need < 30 fps of meaningful
  content; every game's total frame rate exceeds 30 fps.
* Figure 3(d): about 40 % of general apps show ~20 redundant fps
  (Cash Slide and Daum Maps are called out); 80 % of games exceed 20
  redundant fps.
* Figure 2: Facebook idles near 0 fps with bursts on user requests;
  Jelly Splash holds ~60 fps regardless of content.
* Figure 9: CGV and Daum Maps are the general apps with game-like
  savings.

Numbers not pinned by the paper (exact idle rates, power costs) are
chosen to be typical of the app's genre; they are *calibration*, and
every experiment that depends on them says so in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import WorkloadError
from .profile import AppCategory, AppProfile, ContentProcess, RenderStyle

_G = AppCategory.GENERAL
_M = AppCategory.GAME


def _general(name: str, idle: float, active: float, submit: float,
             style: RenderStyle, render_mj: float, cpu_mw: float,
             touch: float, scroll: float, notes: str = "",
             process: ContentProcess = ContentProcess.POISSON,
             burst: float = 1.5) -> AppProfile:
    return AppProfile(
        name=name, category=_G, idle_content_fps=idle,
        active_content_fps=active, burst_duration_s=burst,
        content_process=process, idle_submit_fps=submit,
        render_style=style, render_cost_mj=render_mj, cpu_base_mw=cpu_mw,
        touch_events_per_s=touch, scroll_fraction=scroll, notes=notes)


def _game(name: str, idle: float, active: float, submit: float,
          style: RenderStyle, render_mj: float, cpu_mw: float,
          touch: float = 0.3, scroll: float = 0.05,
          notes: str = "", burst: float = 2.0) -> AppProfile:
    return AppProfile(
        name=name, category=_M, idle_content_fps=idle,
        active_content_fps=active, burst_duration_s=burst,
        content_process=ContentProcess.ANIMATION, idle_submit_fps=submit,
        render_style=style, render_cost_mj=render_mj, cpu_base_mw=cpu_mw,
        touch_events_per_s=touch, scroll_fraction=scroll, notes=notes)


_GENERAL_PROFILES: Tuple[AppProfile, ...] = (
    _general("Auction", 1.5, 25.0, 0.0, RenderStyle.SCROLL,
             1.0, 110.0, 0.25, 0.5, "shopping; posts only on change"),
    _general("Cash Slide", 2.0, 10.0, 22.0, RenderStyle.SCENE,
             0.8, 90.0, 0.10, 0.2,
             "lock-screen ads; ~20 redundant fps (named in Fig 3d)"),
    _general("CGV", 3.0, 20.0, 30.0, RenderStyle.SCENE,
             4.0, 180.0, 0.20, 0.3,
             "cinema app; full-screen animated ad banners redraw at "
             "~30 fps, making it the paper's game-like general saver"),
    _general("Coupang", 1.5, 25.0, 3.0, RenderStyle.SCROLL,
             1.0, 110.0, 0.25, 0.5, "shopping feed"),
    _general("Daum", 2.0, 28.0, 4.0, RenderStyle.SCROLL,
             1.0, 115.0, 0.30, 0.5, "web portal"),
    _general("Daum Maps", 4.0, 30.0, 30.0, RenderStyle.SCENE,
             4.2, 200.0, 0.30, 0.6,
             "map with continuous tile/overlay redraws; ~20 redundant "
             "fps (named in Fig 3d) and a game-like saving in Fig 9"),
    _general("Facebook", 1.0, 30.0, 2.0, RenderStyle.SCROLL,
             1.1, 130.0, 0.25, 0.55,
             "Fig 2 trace app: idle near 0 fps, bursts on requests"),
    _general("KakaoTalk", 0.8, 18.0, 1.0, RenderStyle.SCROLL,
             0.8, 100.0, 0.30, 0.3, "messenger"),
    _general("MX Player", 24.0, 24.0, 2.0, RenderStyle.VIDEO,
             2.2, 260.0, 0.05, 0.0, "24 fps video playback",
             process=ContentProcess.PERIODIC),
    _general("Naver", 2.0, 28.0, 3.0, RenderStyle.SCROLL,
             1.0, 120.0, 0.30, 0.5, "web portal"),
    _general("Naver Webtoon", 1.5, 35.0, 1.0, RenderStyle.SCROLL,
             1.0, 115.0, 0.20, 0.7, "comic reader; long scrolls"),
    _general("NaverMap", 3.5, 30.0, 22.0, RenderStyle.SCENE,
             1.4, 150.0, 0.30, 0.6, "maps with moderate redundancy"),
    _general("PhotoWonder", 1.0, 20.0, 2.0, RenderStyle.SCENE,
             1.3, 140.0, 0.20, 0.25, "photo editor"),
    _general("Tiny Flashlight", 0.2, 5.0, 1.0, RenderStyle.SMALL_REGION,
             0.5, 60.0, 0.05, 0.0, "almost perfectly static screen"),
    _general("Weather", 2.5, 12.0, 20.0, RenderStyle.SCENE,
             0.9, 95.0, 0.10, 0.2, "animated background widgets"),
)

_GAME_PROFILES: Tuple[AppProfile, ...] = (
    _game("Anisachun", 6.0, 42.0, 60.0, RenderStyle.SCENE, 6.4, 280.0,
          notes="match-3 puzzle; free-running 60 fps loop"),
    _game("Asphalt 8", 40.0, 50.0, 60.0, RenderStyle.VIDEO, 6.5, 450.0,
          notes="racing; genuinely high content rate"),
    _game("Canimal Wars", 7.0, 38.0, 60.0, RenderStyle.SCENE, 6.8, 300.0,
          notes="tower defence; mostly idle board"),
    _game("Castle Heros", 8.0, 42.0, 60.0, RenderStyle.SCENE, 6.8, 310.0,
          notes="card battler"),
    _game("Cookie Run", 30.0, 42.0, 60.0, RenderStyle.VIDEO, 5.5, 380.0,
          notes="auto-runner; high genuine animation"),
    _game("Devilshness", 6.0, 36.0, 60.0, RenderStyle.SCENE, 6.2, 280.0,
          notes="casual puzzle"),
    _game("Everypong", 7.0, 42.0, 60.0, RenderStyle.SCENE, 6.0, 260.0,
          notes="casual arcade"),
    _game("Geometry Dash", 35.0, 45.0, 60.0, RenderStyle.VIDEO, 5.0, 360.0,
          notes="rhythm runner"),
    _game("I Love Style", 4.0, 26.0, 30.0, RenderStyle.SCENE, 3.0, 220.0,
          notes="dress-up; the one game with a throttled 30 fps loop"),
    _game("Jelly Splash", 8.0, 46.0, 60.0, RenderStyle.SCENE, 7.0, 300.0,
          notes="Fig 2 trace app: ~60 fps loop regardless of content"),
    _game("Modoo Marble", 8.0, 40.0, 60.0, RenderStyle.SCENE, 6.4, 290.0,
          notes="board game"),
    _game("PokoPang", 8.0, 46.0, 60.0, RenderStyle.SCENE, 6.8, 310.0,
          notes="match puzzle"),
    _game("Swingrun", 28.0, 40.0, 60.0, RenderStyle.VIDEO, 5.0, 340.0,
          notes="runner"),
    _game("TempleRun", 32.0, 45.0, 60.0, RenderStyle.VIDEO, 5.8, 400.0,
          notes="3D runner"),
    _game("Watermargin", 9.0, 42.0, 60.0, RenderStyle.SCENE, 7.0, 320.0,
          notes="RPG with auto-battle animations"),
)

_ALL: Dict[str, AppProfile] = {
    p.name: p for p in (_GENERAL_PROFILES + _GAME_PROFILES)
}

#: Names of the 15 general applications, catalog order.
GENERAL_APP_NAMES: Tuple[str, ...] = tuple(
    p.name for p in _GENERAL_PROFILES)

#: Names of the 15 game applications, catalog order.
GAME_APP_NAMES: Tuple[str, ...] = tuple(p.name for p in _GAME_PROFILES)


def all_app_names() -> Tuple[str, ...]:
    """Every catalog app name: general first, then games."""
    return GENERAL_APP_NAMES + GAME_APP_NAMES


def app_profile(name: str) -> AppProfile:
    """Look up one application profile by exact name."""
    try:
        return _ALL[name]
    except KeyError:
        raise WorkloadError(
            f"unknown application {name!r}; see all_app_names()") from None


def profiles_by_category(category: AppCategory) -> List[AppProfile]:
    """All profiles in one category, catalog order."""
    source = (_GENERAL_PROFILES if category is AppCategory.GENERAL
              else _GAME_PROFILES)
    return list(source)
