"""Content-addressed result cache for deterministic sessions.

A session is a pure function of its
:class:`~repro.pipeline.spec.SessionSpec`: the whole simulation stack
is seeded, the pooled and serial batch paths are pinned byte-identical,
and checkpoint/resume replays to the same digest.  That determinism is
worth money — a 32-session batch costs ~20 s of wall clock, and sweeps,
tournaments and CI replays keep asking questions whose answers have
not changed.  This module stores those answers.

Key derivation
--------------
An entry's key is::

    sha256(canonical_spec_json
           + "\\n" + schema_rev        # repro-session/1 by default
           + "\\n" + code_salt         # CODE_REV_SALT, bumped manually
           + "\\n" + payload_kind)     # "entry" vs "entry+events"

* ``canonical_spec_json`` is :meth:`SessionSpec.canonical_json` —
  sorted keys, no indent, Nones omitted — so two equal specs always
  share a key.
* ``schema_rev`` ties entries to the spec schema: a ``repro-session/2``
  world never reads ``repro-session/1`` answers.
* ``code_salt`` is the manual escape hatch: any PR that changes
  simulation *output* for an unchanged spec must bump
  :data:`CODE_REV_SALT`, which orphans every existing entry at once.
* ``payload_kind`` separates plain summaries from summaries carrying a
  captured telemetry event stream (``run_batch(stream_path=...)``) —
  the two payload shapes must never alias.

The full invalidation matrix — including what the key deliberately
does **not** cover — lives in ``docs/caching.md``.

What is refused
---------------
:meth:`ResultCache.key_for` returns ``None`` (and counts
``cache.uncacheable``) for sessions whose output is not a pure
function of the spec bytes:

* trace-replay workloads (``trace:<path>`` apps): the trace *file's*
  content decides the result, and the key only covers its path;
* sessions with a ``telemetry.jsonl_path`` sink: serving a hit would
  silently skip writing the side-effect stream;
* configs the spec codec cannot round-trip losslessly (exotic live
  objects — the same rule the batch wire format applies).

Durability and concurrency
--------------------------
Entries are **write-once**: the payload lands in a temp file (fsynced,
same directory) and is then hard-linked to its final name.  The first
writer wins; a concurrent loser sees ``FileExistsError``, discards its
temp file and counts ``cache.store_races``.  A reader can therefore
never observe a torn entry — it sees the old world or a complete new
entry, nothing in between.  Corrupt or truncated entries (disk damage,
a meddling human) are detected at read time, counted, deleted and
treated as misses: the cache recomputes, never crashes and never
serves garbage.

Stats are counted in a :class:`~repro.telemetry.metrics.MetricsRegistry`
(``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.store_races`` / ``cache.corrupt_entries`` /
``cache.evictions`` / ``cache.uncacheable``), so a service configured
with a cache exposes them live through the Prometheus endpoint, and
:meth:`ResultCache.write_index` folds them into a persistent
``index.json`` whose totals survive across runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .errors import ConfigurationError
from .ioutil import atomic_write_json, ensure_directory
from .pipeline.spec import SPEC_SCHEMA, SessionSpec
from .telemetry.metrics import MetricsRegistry

PathLike = Union[str, pathlib.Path]

#: Entry document schema; bump on layout changes (old entries orphan).
CACHE_SCHEMA = "repro-cache/1"

#: Index document schema.
INDEX_SCHEMA = "repro-cache-index/1"

#: Manual code-revision salt.  Bump this in any PR that changes what a
#: session *computes* for an unchanged spec (new power model terms,
#: governor behaviour fixes, summary fields, ...), which invalidates
#: every existing cache entry at once.  Structural spec changes are
#: covered separately by the ``repro-session`` schema rev.
CODE_REV_SALT = "2026-08-08.3"

#: Stat counter names (all plain counters in the metrics registry).
STAT_NAMES = ("cache.hits", "cache.misses", "cache.stores",
              "cache.store_races", "cache.corrupt_entries",
              "cache.evictions", "cache.uncacheable")


def cache_key(spec: SessionSpec, *, capture: bool = False,
              schema_rev: str = SPEC_SCHEMA,
              code_salt: str = CODE_REV_SALT) -> str:
    """The content-addressed key of one spec (hex sha256).

    Pure function of its arguments; see the module docstring for what
    each component invalidates.  ``capture`` selects the payload kind:
    a summary-only entry and a summary-plus-events entry never alias.
    """
    kind = "entry+events" if capture else "entry"
    material = "\n".join((spec.canonical_json(), schema_rev,
                          code_salt, kind))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _spec_is_cacheable(spec: SessionSpec) -> bool:
    """Spec-level purity check (trace workloads, side-effect sinks)."""
    app = spec.app
    if isinstance(app, str) and app.startswith("trace:"):
        return False
    if isinstance(app, Mapping) and app.get("type") == "trace":
        return False
    telemetry = spec.telemetry
    if isinstance(telemetry, Mapping) and telemetry.get("jsonl_path"):
        return False
    return True


class ResultCache:
    """A write-once, content-addressed store of session results.

    Layout under ``root``::

        index.json              # schema, rev/salt, running stat totals
        objects/<k[:2]>/<key>.json

    One payload per key; payloads are the batch runner's wire form
    (``{"entry": <summary dict>, "events": [...]}``).  Construct one
    per sweep/batch/service; instances are cheap and hold no open
    files.  Not thread-safe for *stats* (counters are plain ints), but
    entry reads/writes are safe under full process concurrency — the
    write-once link is the synchronization.
    """

    def __init__(self, root: PathLike, *,
                 schema_rev: str = SPEC_SCHEMA,
                 code_salt: str = CODE_REV_SALT,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not schema_rev or not code_salt:
            raise ConfigurationError(
                "cache schema_rev and code_salt must be non-empty")
        self.root = pathlib.Path(root)
        self.schema_rev = schema_rev
        self.code_salt = code_salt
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self._flushed: Dict[str, int] = {name: 0
                                         for name in STAT_NAMES}
        ensure_directory(self.objects_dir)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> pathlib.Path:
        return self.root / "objects"

    @property
    def index_path(self) -> pathlib.Path:
        return self.root / "index.json"

    def entry_path(self, key: str) -> pathlib.Path:
        """Where the entry for ``key`` lives (may not exist)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(self, config: Any, *,
                capture: bool = False) -> Optional[str]:
        """The cache key of a live config, or None when uncacheable.

        Mirrors the batch wire format's losslessness rule: a config
        the spec codec cannot round-trip exactly is not addressable by
        its spec bytes, so it cannot be cached either.
        """
        try:
            spec = SessionSpec.from_config(config)
            if spec.to_config() != config:
                raise ValueError("spec round trip is lossy")
        except Exception:  # noqa: BLE001 - any failure means "run it"
            self._count("cache.uncacheable")
            return None
        return self.key_for_spec(spec, capture=capture)

    def key_for_spec(self, spec: SessionSpec, *,
                     capture: bool = False) -> Optional[str]:
        """The cache key of a spec, or None when uncacheable."""
        if not _spec_is_cacheable(spec):
            self._count("cache.uncacheable")
            return None
        return cache_key(spec, capture=capture,
                         schema_rev=self.schema_rev,
                         code_salt=self.code_salt)

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None (a miss).

        A present-but-unusable entry (truncated write by a meddler,
        bit rot, wrong schema, key mismatch from a renamed file) is
        counted as ``cache.corrupt_entries``, deleted, and reported as
        a miss — the caller recomputes and the bad entry is gone.
        """
        path = self.entry_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._count("cache.misses")
            return None
        except OSError:
            self._count("cache.misses")
            return None
        payload = self._decode_entry(text, key)
        if payload is None:
            self._count("cache.corrupt_entries")
            path.unlink(missing_ok=True)
            self._count("cache.misses")
            return None
        self._count("cache.hits")
        return payload

    def _decode_entry(self, text: str,
                      key: str) -> Optional[Dict[str, Any]]:
        try:
            document = json.loads(text)
        except ValueError:
            return None
        if not isinstance(document, dict):
            return None
        if document.get("schema") != CACHE_SCHEMA:
            return None
        if document.get("key") != key:
            return None
        payload = document.get("payload")
        if not isinstance(payload, dict) or "entry" not in payload:
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Store ``payload`` under ``key``; first writer wins.

        Returns True when this call created the entry, False when one
        already existed (including losing a concurrent race — counted
        as ``cache.store_races``).  The entry serializes with
        ``allow_nan=True`` deliberately: summaries can legitimately
        carry ``inf`` (``metering_error`` on contentless sessions) and
        the cache must hand back *exactly* what was stored.
        """
        path = self.entry_path(key)
        if path.exists():
            self._count("cache.store_races")
            return False
        document = {"schema": CACHE_SCHEMA, "key": key,
                    "payload": payload}
        text = json.dumps(document, sort_keys=True) + "\n"
        directory = ensure_directory(path.parent)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=directory)
        tmp_path = pathlib.Path(tmp_name)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            try:
                os.link(tmp_path, path)
            except FileExistsError:
                self._count("cache.store_races")
                return False
            except OSError:
                # Filesystem without hard links: fall back to the
                # atomic rename.  Racing writers hold byte-identical
                # payloads (the store is content-addressed over a
                # deterministic function), so replace is still safe.
                if path.exists():
                    self._count("cache.store_races")
                    return False
                os.replace(tmp_path, path)
                self._count("cache.stores")
                return True
        finally:
            tmp_path.unlink(missing_ok=True)
        self._count("cache.stores")
        return True

    # ------------------------------------------------------------------
    # Stats, index, eviction
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def stats_dict(self) -> Dict[str, int]:
        """This instance's stat counters, flat (short names)."""
        counters = self.metrics.as_dict()["counters"]
        return {name.split(".", 1)[1]: int(counters.get(name, 0))
                for name in STAT_NAMES}

    def entry_count(self) -> int:
        """Entries currently on disk."""
        return sum(1 for _ in self.objects_dir.glob("*/*.json"))

    def write_index(self) -> pathlib.Path:
        """Fold this instance's stats into the persistent index.

        Read-modify-write of ``index.json`` (atomic): running totals
        accumulate across runs, last-writer-wins under concurrency —
        the index is bookkeeping, never a correctness input.  Only the
        counts accumulated since the previous ``write_index`` call are
        folded in, so calling it repeatedly never double-counts.
        """
        existing = read_index(self.root)
        totals = {name.split(".", 1)[1]: 0 for name in STAT_NAMES}
        if existing is not None and \
                isinstance(existing.get("totals"), dict):
            for name, value in existing["totals"].items():
                if name in totals:
                    try:
                        totals[name] = int(value)
                    except (TypeError, ValueError):
                        pass
        counters = self.metrics.as_dict()["counters"]
        for name in STAT_NAMES:
            current = int(counters.get(name, 0))
            totals[name.split(".", 1)[1]] += \
                current - self._flushed[name]
            self._flushed[name] = current
        document = {
            "schema": INDEX_SCHEMA,
            "cache_schema": CACHE_SCHEMA,
            "spec_schema_rev": self.schema_rev,
            "code_salt": self.code_salt,
            "entries": self.entry_count(),
            "totals": totals,
        }
        return atomic_write_json(self.index_path, document)

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries (by mtime, then name) beyond a cap.

        Returns how many entries were evicted (counted as
        ``cache.evictions``).  Eviction is safe at any time: a
        concurrent reader of an evicted entry simply misses and
        recomputes.
        """
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries}")
        entries = []
        for path in self.objects_dir.glob("*/*.json"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, path.name, path))
        entries.sort()
        excess = len(entries) - max_entries
        evicted = 0
        for _, _, path in entries[:max(0, excess)]:
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
        if evicted:
            self._count("cache.evictions", evicted)
        return evicted


def read_index(root: PathLike) -> Optional[Dict[str, Any]]:
    """The persistent index document, or None (missing/unreadable).

    Tolerant by design: the index is bookkeeping, and a damaged one
    must never block cache use — it just resets the running totals.
    """
    path = pathlib.Path(root) / "index.json"
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or \
            document.get("schema") != INDEX_SCHEMA:
        return None
    return document


def hit_rate(stats: Mapping[str, int]) -> Tuple[int, int, float]:
    """``(hits, lookups, fraction)`` from a :meth:`stats_dict` dict."""
    hits = int(stats.get("hits", 0))
    lookups = hits + int(stats.get("misses", 0))
    return hits, lookups, (hits / lookups if lookups else 0.0)
