"""The fault injector: seeded random draws plus the fault timeline.

One :class:`FaultInjector` serves a whole session.  Each fault site
gets its *own* random stream (spawned from the plan's root seed), so
injection decisions at one site never perturb another site's sequence:
adding ``touch_drop`` to a plan leaves the ``meter_fail`` timeline
untouched — the property that makes fault sweeps comparable across
configurations.

Every fault that fires is recorded as a :class:`FaultRecord`, giving
experiments a replayable fault timeline: two runs with the same plan
(same seed) produce identical timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry.events import EVENT_FAULT_INJECTED
from ..telemetry.hub import TelemetryHub
from .plan import FAULT_SITES, FaultPlan


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: when, where, and any magnitude drawn."""

    time: float
    site: str
    detail: str = ""
    magnitude_s: float = 0.0


class FaultInjector:
    """Draws fault decisions for a session, deterministically.

    Parameters
    ----------
    plan:
        The fault plan to execute.
    seed:
        Override of ``plan.seed`` (batch runners derive per-session
        injector seeds this way without rebuilding plans).
    telemetry:
        Optional telemetry hub; every fault that fires is additionally
        emitted as a ``fault_injected`` event.  The injection *draws*
        are identical with or without it — telemetry never touches the
        random streams.  Per-site totals stay in :meth:`summary_dict`
        (the single emission path the session snapshots into the
        metrics registry).
    """

    def __init__(self, plan: FaultPlan,
                 seed: Optional[int] = None,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.plan = plan
        self.seed = plan.seed if seed is None else seed
        self._telemetry = telemetry
        # One independent stream per site: a fixed site index plus the
        # root seed keys each generator, so draws at one site never
        # consume another site's sequence.
        self._rngs: Dict[str, np.random.Generator] = {
            site: np.random.default_rng([index, self.seed])
            for index, site in enumerate(FAULT_SITES)
        }
        self._timeline: List[FaultRecord] = []
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------
    def fires(self, site: str, now: float, detail: str = "",
              magnitude_max_s: float = 0.0) -> bool:
        """Decide whether ``site`` faults at ``now``; record it if so.

        When the effective rate is zero no random number is consumed,
        so a zero-rate plan leaves every stream untouched — the
        injector is then behaviourally invisible.

        ``magnitude_max_s`` > 0 additionally draws a uniform magnitude
        in ``[0, magnitude_max_s)`` from the same stream and stores it
        on the record; fetch it with :meth:`last_magnitude`.
        """
        rate = self.plan.rate_at(site, now)
        if rate <= 0.0:
            return False
        rng = self._rngs[site]
        if not (rate >= 1.0 or rng.random() < rate):
            return False
        magnitude = float(rng.random() * magnitude_max_s) \
            if magnitude_max_s > 0.0 else 0.0
        self._timeline.append(FaultRecord(time=now, site=site,
                                          detail=detail,
                                          magnitude_s=magnitude))
        self._counts[site] = self._counts.get(site, 0) + 1
        if self._telemetry is not None:
            self._telemetry.emit(EVENT_FAULT_INJECTED, now, site=site,
                                 detail=detail, magnitude_s=magnitude)
        return True

    def last_magnitude(self) -> float:
        """Magnitude of the most recently fired fault (0 when none)."""
        return self._timeline[-1].magnitude_s if self._timeline else 0.0

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------
    @property
    def timeline(self) -> Tuple[FaultRecord, ...]:
        """Every fault that fired, in injection order."""
        return tuple(self._timeline)

    @property
    def counts(self) -> Dict[str, int]:
        """Fault count per site (only sites that fired appear)."""
        return dict(self._counts)

    @property
    def total_faults(self) -> int:
        """Total faults injected so far."""
        return len(self._timeline)

    def count(self, site: str) -> int:
        """Faults injected at one site."""
        return self._counts.get(site, 0)

    def summary_dict(self) -> dict:
        """JSON-ready injection totals (feeds session summaries)."""
        return {
            "injected_total": self.total_faults,
            "injected_by_site": self.counts,
        }
