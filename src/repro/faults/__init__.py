"""Fault injection: deterministic hardware-misbehaviour models.

Real deployments of content-centric display management run against
imperfect hardware: panel mode switches get refused or land late,
framebuffer snapshots fail mid-copy, touch events are dropped or
delayed by a loaded input stack.  This package injects exactly those
faults into the simulated pipeline — *deterministically*, from a seeded
:class:`~repro.faults.plan.FaultPlan` — so the robustness machinery
(the governor watchdog, the hardened batch runner) can be exercised and
measured with the same replayability every other experiment enjoys.

Everything here is off by default: a session without a fault plan runs
bit-identically to the pre-fault-injection code path.
"""

from .injector import FaultInjector, FaultRecord
from .plan import (
    FAULT_SITES,
    FaultPlan,
    FaultWindow,
    SITE_METER_FAIL,
    SITE_PANEL_LATENCY,
    SITE_PANEL_REFUSE,
    SITE_TOUCH_DELAY,
    SITE_TOUCH_DROP,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultWindow",
    "SITE_METER_FAIL",
    "SITE_PANEL_LATENCY",
    "SITE_PANEL_REFUSE",
    "SITE_TOUCH_DELAY",
    "SITE_TOUCH_DROP",
]
