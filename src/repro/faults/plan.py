"""Fault plans: *what* can go wrong, how often, and when.

A :class:`FaultPlan` is a frozen description of per-site fault
probabilities plus optional scheduled bursts (:class:`FaultWindow`).
Sites are the five places the simulated pipeline can misbehave:

========================  ============================================
site                      failure injected
========================  ============================================
``panel_refuse``          a refresh-rate switch request is refused by
                          the panel (the request is silently dropped,
                          as real mode-switch ioctls do under load)
``panel_latency``         an accepted switch takes effect late — extra
                          latency beyond the next frame boundary
``meter_fail``            a framebuffer snapshot/compare fails, so the
                          content-rate read raises ``MeteringError``
``touch_drop``            a scripted touch event is never delivered
``touch_delay``           a touch event is delivered late
========================  ============================================

Probabilities are per *opportunity* (per switch request, per meter
read, per touch event).  A window overrides a site's base probability
inside ``[start_s, end_s)`` — the tool for "meter fails hard for ten
seconds mid-session" burst experiments.

Plans are pure data: the random draws live in
:class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import FaultInjectionError

#: Fault-site identifiers (also the keys of the CLI spec format).
SITE_PANEL_REFUSE = "panel_refuse"
SITE_PANEL_LATENCY = "panel_latency"
SITE_METER_FAIL = "meter_fail"
SITE_TOUCH_DROP = "touch_drop"
SITE_TOUCH_DELAY = "touch_delay"

FAULT_SITES: Tuple[str, ...] = (
    SITE_PANEL_REFUSE,
    SITE_PANEL_LATENCY,
    SITE_METER_FAIL,
    SITE_TOUCH_DROP,
    SITE_TOUCH_DELAY,
)

#: Magnitude knobs (not probabilities) accepted by :meth:`FaultPlan.parse`.
_MAGNITUDE_KEYS = ("panel_latency_max_s", "touch_delay_max_s")


@dataclass(frozen=True)
class FaultWindow:
    """A scheduled burst: one site's probability inside a time window."""

    site: str
    start_s: float
    end_s: float
    rate: float

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultInjectionError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError(
                f"fault rate must be in [0, 1], got {self.rate} "
                f"for {self.site!r}")
        if not 0.0 <= self.start_s < self.end_s:
            raise FaultInjectionError(
                f"fault window needs 0 <= start < end, got "
                f"[{self.start_s}, {self.end_s}) for {self.site!r}")

    def covers(self, time: float) -> bool:
        """True when ``time`` falls inside this window."""
        return self.start_s <= time < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic description of injected faults.

    Parameters
    ----------
    panel_refuse, panel_latency, meter_fail, touch_drop, touch_delay:
        Base per-opportunity fault probabilities, each in [0, 1].
    panel_latency_max_s:
        Upper bound of the uniform extra switch latency drawn when a
        ``panel_latency`` fault fires.
    touch_delay_max_s:
        Upper bound of the uniform delivery delay drawn when a
        ``touch_delay`` fault fires.
    windows:
        Scheduled overrides; inside a window the matching site uses the
        window's rate instead of its base rate (first covering window
        wins).
    seed:
        Root seed of the injector's per-site random streams.
    """

    panel_refuse: float = 0.0
    panel_latency: float = 0.0
    meter_fail: float = 0.0
    touch_drop: float = 0.0
    touch_delay: float = 0.0
    panel_latency_max_s: float = 0.05
    touch_delay_max_s: float = 0.2
    windows: Tuple[FaultWindow, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        for site in FAULT_SITES:
            rate = getattr(self, site)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"fault rate must be in [0, 1], got {rate} "
                    f"for {site!r}")
        for name in _MAGNITUDE_KEYS:
            value = getattr(self, name)
            if value < 0.0:
                raise FaultInjectionError(
                    f"{name} must be >= 0, got {value}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rate_at(self, site: str, time: float) -> float:
        """Effective probability of ``site`` faulting at ``time``."""
        if site not in FAULT_SITES:
            raise FaultInjectionError(
                f"unknown fault site {site!r}; known: {FAULT_SITES}")
        for window in self.windows:
            if window.site == site and window.covers(time):
                return window.rate
        return getattr(self, site)

    def any_active(self) -> bool:
        """True when any base rate or window can ever fire."""
        if any(getattr(self, site) > 0.0 for site in FAULT_SITES):
            return True
        return any(w.rate > 0.0 for w in self.windows)

    # ------------------------------------------------------------------
    # CLI spec format
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a ``key=value`` spec string.

        Format: comma-separated ``site=rate`` entries, e.g.
        ``panel_refuse=0.05,meter_fail=0.01,touch_drop=0.1``.  A site
        key may carry a ``@start:end`` suffix to create a scheduled
        burst instead of a base rate: ``meter_fail@10:20=1.0``.  The
        magnitude knobs ``panel_latency_max_s`` / ``touch_delay_max_s``
        are accepted as plain keys.
        """
        rates: Dict[str, float] = {}
        windows = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise FaultInjectionError(
                    f"bad fault spec entry {entry!r}: expected key=value")
            key, _, value_text = entry.partition("=")
            key = key.strip()
            try:
                value = float(value_text)
            except ValueError:
                raise FaultInjectionError(
                    f"bad fault rate {value_text!r} for {key!r}") from None
            if "@" in key:
                site, _, span = key.partition("@")
                start_text, sep, end_text = span.partition(":")
                if not sep:
                    raise FaultInjectionError(
                        f"bad fault window {key!r}: expected "
                        f"site@start:end")
                try:
                    start = float(start_text)
                    end = float(end_text)
                except ValueError:
                    raise FaultInjectionError(
                        f"bad fault window bounds in {key!r}") from None
                windows.append(FaultWindow(site.strip(), start, end,
                                           value))
            elif key in FAULT_SITES or key in _MAGNITUDE_KEYS:
                rates[key] = value
            else:
                raise FaultInjectionError(
                    f"unknown fault spec key {key!r}; known: "
                    f"{FAULT_SITES + _MAGNITUDE_KEYS}")
        return cls(windows=tuple(windows), seed=seed, **rates)

    def describe(self) -> str:
        """One-line human summary (CLI echo, logs)."""
        parts = [f"{site}={getattr(self, site):g}"
                 for site in FAULT_SITES if getattr(self, site) > 0.0]
        parts += [f"{w.site}@{w.start_s:g}:{w.end_s:g}={w.rate:g}"
                  for w in self.windows]
        body = ",".join(parts) if parts else "no faults"
        return f"{body} (seed {self.seed})"
