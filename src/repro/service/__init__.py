"""The durable session service: crash-safe queue, checkpoint/resume.

``repro.service`` turns the run-to-completion batch engine into a
long-running service (``repro serve``) whose jobs survive process
death:

* :mod:`repro.service.jobs` — the ``repro-job/1`` / ``repro-result/1``
  wire formats and the on-disk state-directory layout;
* :mod:`repro.service.journal` — the append-only, crash-tolerant
  operations journal;
* :mod:`repro.service.breaker` — the circuit breaker that sheds load
  when workers keep dying;
* :mod:`repro.service.service` — the asyncio service itself: sharded
  workers, bounded queues, deadlines, retry with backoff, checkpointed
  graceful shutdown, health reporting;
* :mod:`repro.service.chaos` — the chaos harness that kills the
  service mid-job and asserts recovery.

Architecture and failure matrix: ``docs/service.md``.
"""

from .breaker import BreakerState, CircuitBreaker
from .jobs import (
    JOB_SCHEMA,
    RESULT_SCHEMA,
    JobRequest,
    JobStatus,
    ServicePaths,
)
from .journal import Journal, read_journal
from .service import ServiceConfig, SessionService, submit_job

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "JOB_SCHEMA",
    "Journal",
    "JobRequest",
    "JobStatus",
    "RESULT_SCHEMA",
    "ServiceConfig",
    "ServicePaths",
    "SessionService",
    "read_journal",
    "submit_job",
]
