"""Circuit breaker: shed load instead of hanging when workers keep dying.

Classic three-state machine:

* **closed** — normal operation; consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  every admission check fails fast until ``cooldown_s`` has elapsed.
* **half-open** — after the cooldown one probe job is admitted; success
  closes the breaker, failure re-opens it (and restarts the cooldown).

The service consults :meth:`CircuitBreaker.allow` when *ingesting*
jobs: while open, new jobs are rejected with a structured
:class:`~repro.errors.ServiceUnavailableError` record instead of
queueing behind a failing fleet.  Jobs already admitted keep running —
the breaker protects the front door, not the workers.

The clock is injectable (monotonic seconds) so tests drive state
transitions deterministically.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

from ..errors import ConfigurationError


class BreakerState:
    """The three breaker states, as wire-friendly strings."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with cooldown + probe."""

    def __init__(self, failure_threshold: int = 5,
                 cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got "
                f"{failure_threshold}")
        if cooldown_s <= 0:
            raise ConfigurationError(
                f"cooldown_s must be > 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, cooldown expiry applied."""
        self._maybe_half_open()
        return self._state

    @property
    def trips(self) -> int:
        """How many times the breaker has opened."""
        return self._trips

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _maybe_half_open(self) -> None:
        if (self._state == BreakerState.OPEN
                and self._clock() - self._opened_at
                >= self.cooldown_s):
            self._state = BreakerState.HALF_OPEN
            self._probe_outstanding = False

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May one more job be admitted right now?

        Closed: always.  Open: never (until cooldown).  Half-open: one
        probe at a time — the first caller gets True, later callers
        False until the probe reports back.
        """
        self._maybe_half_open()
        if self._state == BreakerState.CLOSED:
            return True
        if self._state == BreakerState.HALF_OPEN:
            if not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False
        return False

    def record_success(self) -> None:
        """An admitted job finished cleanly."""
        self._consecutive_failures = 0
        self._probe_outstanding = False
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """An admitted job failed (all retries exhausted, or crashed)."""
        self._maybe_half_open()
        self._consecutive_failures += 1
        self._probe_outstanding = False
        if self._state == BreakerState.HALF_OPEN or (
                self._state == BreakerState.CLOSED
                and self._consecutive_failures
                >= self.failure_threshold):
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._trips += 1

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot for health reporting."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
            "trips": self._trips,
        }
