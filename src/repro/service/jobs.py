"""Job and result wire formats + the service state-directory layout.

A *job* asks the service to run one session, described by its
:class:`~repro.pipeline.spec.SessionSpec` document.  Jobs and results
are plain JSON files so every state transition is a single atomic
rename and recovery needs nothing but a directory listing.

State directory layout (``ServicePaths``)::

    <state_dir>/
      jobs/         <job_id>.json   submitted jobs (repro-job/1)
      results/      <job_id>.json   terminal outcomes (repro-result/1)
      checkpoints/  <job_id>.json   latest checkpoint (repro-checkpoint/1)
      journal.jsonl                 append-only operations journal
      health.json                   latest health snapshot (atomic)
      control/                      drain/stop marker files

**Results are the source of truth.**  A job is complete exactly when
``results/<job_id>.json`` exists; the file is written once, atomically,
and never rewritten.  Restarting the service after any crash therefore
cannot duplicate side effects: done jobs are skipped because their
result file exists, and everything else is re-queued (resuming from a
checkpoint when a valid one is on disk).  The journal is an audit
trail and health input, not a correctness dependency.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..errors import ServiceError
from ..ioutil import atomic_write_json, ensure_directory

PathLike = Union[str, pathlib.Path]

#: Schema tag of job documents.
JOB_SCHEMA = "repro-job/1"
#: Schema tag of terminal result documents.
RESULT_SCHEMA = "repro-result/1"

#: Job ids are path components; keep them boring.
_JOB_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")

_JOB_REQUIRED = ("schema", "job_id", "spec")
_JOB_ALLOWED = _JOB_REQUIRED + ("deadline_s", "submitted_seq",
                                "trace_id")


class JobStatus:
    """Terminal and in-flight job states (plain strings on the wire)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"

    TERMINAL = (DONE, FAILED, REJECTED)


def validate_job_id(job_id: str) -> str:
    """``job_id`` if it is a safe path component, else ServiceError."""
    if not isinstance(job_id, str) or not _JOB_ID_RE.match(job_id):
        raise ServiceError(
            f"invalid job id {job_id!r}: use 1-100 characters of "
            f"[A-Za-z0-9._-], starting alphanumeric",
            context={"subsystem": "service", "job_id": str(job_id)})
    return job_id


@dataclass(frozen=True)
class JobRequest:
    """One submitted session job (``repro-job/1``).

    ``spec`` is the raw :class:`~repro.pipeline.spec.SessionSpec`
    document — kept as a dict so a job file with a broken spec can
    still be loaded, identified and rejected with a structured failure
    record instead of being invisible.  ``submitted_seq`` is a
    client-side monotonic hint used only for deterministic scheduling
    order; ties (and absent values) fall back to ``job_id`` order.

    ``trace_id`` scopes the job's whole life — journal records,
    checkpoint documents, Perfetto export — to one timeline.  It is
    optional on the wire: when absent, the service mints the same
    deterministic ID :func:`repro.telemetry.tracing.mint_trace_id`
    derives from ``(job_id, submitted_seq)``, so old job files and
    post-crash re-ingests land on the identical trace.
    """

    job_id: str
    spec: Dict[str, Any]
    deadline_s: Optional[float] = None
    submitted_seq: int = 0
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        validate_job_id(self.job_id)
        if not isinstance(self.spec, dict):
            raise ServiceError(
                f"job {self.job_id}: spec must be a JSON object, got "
                f"{type(self.spec).__name__}",
                context={"subsystem": "service", "job_id": self.job_id})
        if self.deadline_s is not None and not (
                isinstance(self.deadline_s, (int, float))
                and not isinstance(self.deadline_s, bool)
                and self.deadline_s > 0):
            raise ServiceError(
                f"job {self.job_id}: deadline_s must be a positive "
                f"number, got {self.deadline_s!r}",
                context={"subsystem": "service", "job_id": self.job_id})
        if self.trace_id is not None:
            from ..telemetry.tracing import validate_trace_id
            try:
                validate_trace_id(self.trace_id)
            except Exception:
                raise ServiceError(
                    f"job {self.job_id}: malformed trace_id "
                    f"{self.trace_id!r} (want 8..64 lowercase hex)",
                    context={"subsystem": "service",
                             "job_id": self.job_id}) from None

    def to_json_dict(self) -> Dict[str, Any]:
        """The ``repro-job/1`` document."""
        document: Dict[str, Any] = {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "spec": self.spec,
            "submitted_seq": self.submitted_seq,
        }
        if self.deadline_s is not None:
            document["deadline_s"] = float(self.deadline_s)
        if self.trace_id is not None:
            document["trace_id"] = self.trace_id
        return document

    @classmethod
    def from_json_dict(cls, data: Any,
                       where: str = "job") -> "JobRequest":
        """Decode and strictly validate a ``repro-job/1`` document."""
        if not isinstance(data, dict):
            raise ServiceError(
                f"{where}: expected a JSON object, got "
                f"{type(data).__name__}",
                context={"subsystem": "service", "where": where})
        schema = data.get("schema")
        if schema != JOB_SCHEMA:
            raise ServiceError(
                f"{where}: unsupported schema {schema!r} "
                f"(expected {JOB_SCHEMA!r})",
                context={"subsystem": "service", "where": where,
                         "schema": schema})
        missing = [key for key in _JOB_REQUIRED if key not in data]
        unknown = [key for key in data if key not in _JOB_ALLOWED]
        if missing or unknown:
            raise ServiceError(
                f"{where}: missing keys {missing}, unknown keys "
                f"{unknown}",
                context={"subsystem": "service", "where": where,
                         "missing": missing, "unknown": unknown})
        seq = data.get("submitted_seq", 0)
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise ServiceError(
                f"{where}: submitted_seq must be an integer",
                context={"subsystem": "service", "where": where})
        return cls(job_id=data["job_id"], spec=data["spec"],
                   deadline_s=data.get("deadline_s"),
                   submitted_seq=seq,
                   trace_id=data.get("trace_id"))

    def sort_key(self):
        """Deterministic scheduling order: submit sequence, then id."""
        return (self.submitted_seq, self.job_id)


class ServicePaths:
    """Resolved paths inside one service state directory."""

    def __init__(self, state_dir: PathLike) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.results_dir = self.state_dir / "results"
        self.checkpoints_dir = self.state_dir / "checkpoints"
        self.control_dir = self.state_dir / "control"
        self.journal_path = self.state_dir / "journal.jsonl"
        self.health_path = self.state_dir / "health.json"

    def ensure(self) -> "ServicePaths":
        """Create the directory tree (idempotent)."""
        for directory in (self.state_dir, self.jobs_dir,
                          self.results_dir, self.checkpoints_dir,
                          self.control_dir):
            ensure_directory(directory)
        return self

    # -- per-job files -------------------------------------------------
    def job_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{validate_job_id(job_id)}.json"

    def result_path(self, job_id: str) -> pathlib.Path:
        return self.results_dir / f"{validate_job_id(job_id)}.json"

    def checkpoint_path(self, job_id: str) -> pathlib.Path:
        return self.checkpoints_dir / f"{validate_job_id(job_id)}.json"

    def drain_marker(self) -> pathlib.Path:
        return self.control_dir / "drain"

    def stop_marker(self) -> pathlib.Path:
        return self.control_dir / "stop"

    # -- listings ------------------------------------------------------
    def list_jobs(self) -> List[pathlib.Path]:
        """Every job file, sorted by name for determinism."""
        if not self.jobs_dir.is_dir():
            return []
        return sorted(self.jobs_dir.glob("*.json"))

    def list_results(self) -> List[pathlib.Path]:
        if not self.results_dir.is_dir():
            return []
        return sorted(self.results_dir.glob("*.json"))


def load_job_file(path: PathLike) -> JobRequest:
    """Read one ``jobs/<id>.json`` file; ServiceError on any damage."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ServiceError(
            f"cannot read job file {path}: {exc}",
            context={"subsystem": "service",
                     "path": str(path)}) from None
    except ValueError as exc:
        raise ServiceError(
            f"job file {path} is not valid JSON: {exc}",
            context={"subsystem": "service",
                     "path": str(path)}) from None
    return JobRequest.from_json_dict(data, where=str(path))


def write_result(paths: ServicePaths, job_id: str, status: str,
                 payload: Dict[str, Any]) -> Optional[pathlib.Path]:
    """Write a job's terminal ``repro-result/1`` document atomically.

    Write-once: if a result already exists the write is skipped and
    ``None`` returned — this is the idempotence barrier that makes
    crash-restart free of duplicate side effects.  ``payload`` carries
    ``summary`` for DONE and ``failure`` (a structured failure record)
    for FAILED/REJECTED.
    """
    if status not in JobStatus.TERMINAL:
        raise ServiceError(
            f"result status must be terminal "
            f"({'/'.join(JobStatus.TERMINAL)}), got {status!r}",
            context={"subsystem": "service", "job_id": job_id})
    path = paths.result_path(job_id)
    if path.exists():
        return None
    document = {"schema": RESULT_SCHEMA, "job_id": job_id,
                "status": status, **payload}
    return atomic_write_json(path, document)


def load_result(paths: ServicePaths,
                job_id: str) -> Optional[Dict[str, Any]]:
    """The job's terminal result document, or None if still in flight.

    A result file that exists but fails to parse raises — results are
    written atomically, so damage there is not crash fallout but real
    corruption, and silently treating the job as unfinished would
    re-run completed side effects.
    """
    path = paths.result_path(job_id)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise ServiceError(
            f"cannot read result {path}: {exc}",
            context={"subsystem": "service", "job_id": job_id,
                     "path": str(path)}) from None
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise ServiceError(
            f"result {path} is corrupt (results are written "
            f"atomically; this is not crash damage): {exc}",
            context={"subsystem": "service", "job_id": job_id,
                     "path": str(path)}) from None
    if not isinstance(document, dict) or document.get(
            "schema") != RESULT_SCHEMA:
        raise ServiceError(
            f"result {path} has unsupported schema "
            f"{document.get('schema') if isinstance(document, dict) else None!r}",
            context={"subsystem": "service", "job_id": job_id,
                     "path": str(path)})
    return document
