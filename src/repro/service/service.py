"""The asyncio session service: durable queue, checkpoints, degradation.

One :class:`SessionService` owns a state directory
(:class:`~repro.service.jobs.ServicePaths`) and runs submitted session
jobs to completion, surviving any crash:

* Jobs arrive as atomic file drops in ``jobs/`` — written by
  :func:`submit_job` (works with no service running) or by the running
  service's :meth:`SessionService.submit`.
* Sharded workers (plain asyncio tasks — sessions are CPU-bounded
  slices, so cooperative stepping keeps the loop responsive without
  threads) pull from bounded per-shard queues.  A full queue is
  *backpressure*: spooled jobs simply wait on disk; in-process submits
  fail fast with :class:`~repro.errors.ServiceUnavailableError`.
* Every job checkpoints periodically
  (:class:`~repro.sim.runner.SessionRunner` documents), so a SIGKILL
  at an arbitrary frame resumes — digest-verified — and produces a
  summary byte-identical to an uninterrupted run.
* Failures retry with exponential backoff up to ``max_attempts``, then
  become structured failure records (the same
  :func:`~repro.sim.batch.make_failure_record` shape the batch engine
  writes).  Consecutive failures trip a circuit breaker that rejects
  *new* jobs with structured records instead of queueing behind a
  dying fleet.
* SIGTERM/SIGINT drain gracefully: in-flight jobs checkpoint and park,
  queued jobs stay durable on disk, the service exits 0.
* Health/readiness snapshots (``health.json``, atomic) are fed by a
  :class:`~repro.telemetry.metrics.MetricsRegistry`.

Failure matrix and format reference: ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import pathlib
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..errors import (
    CheckpointError,
    ServiceError,
    ServiceUnavailableError,
)
from ..ioutil import atomic_write_json
from ..sim.batch import make_failure_record, summarize_result
from ..sim.runner import SessionRunner, resume_from_file
from ..telemetry.metrics import MetricsRegistry
from .breaker import BreakerState, CircuitBreaker
from .jobs import (
    JobRequest,
    JobStatus,
    ServicePaths,
    load_job_file,
    load_result,
    write_result,
)
from .journal import Journal, read_journal

PathLike = Union[str, pathlib.Path]

#: Health snapshot schema tag.
HEALTH_SCHEMA = "repro-health/1"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`SessionService`.

    Defaults favour correctness over throughput; the chaos harness and
    tests shrink the periods to provoke races quickly.

    ``slice_s`` is *simulation* seconds advanced per cooperative step;
    ``slice_sleep_s`` is *wall* seconds slept between steps (0 runs
    flat out — raise it to pace execution, e.g. so a chaos kill lands
    mid-job deterministically).  ``checkpoint_period_s`` is simulation
    seconds of progress between checkpoint writes.
    """

    state_dir: str
    workers: int = 2
    shards: int = 1
    queue_capacity: int = 16
    slice_s: float = 1.0
    slice_sleep_s: float = 0.0
    checkpoint_period_s: float = 5.0
    max_slice_events: int = 5_000_000
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    default_deadline_s: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    poll_period_s: float = 0.05
    health_period_s: float = 0.25
    fsync_journal: bool = True
    until_idle: bool = False
    max_runtime_s: Optional[float] = None
    drain_grace_s: float = 30.0

    def __post_init__(self) -> None:
        for name, minimum in (("workers", 1), ("shards", 1),
                              ("queue_capacity", 1),
                              ("max_attempts", 1),
                              ("max_slice_events", 1),
                              ("breaker_threshold", 1)):
            if getattr(self, name) < minimum:
                raise ServiceError(
                    f"{name} must be >= {minimum}, got "
                    f"{getattr(self, name)}",
                    context={"subsystem": "service", "field": name})
        for name in ("slice_s", "checkpoint_period_s",
                     "poll_period_s", "health_period_s",
                     "breaker_cooldown_s"):
            if getattr(self, name) <= 0:
                raise ServiceError(
                    f"{name} must be > 0, got {getattr(self, name)}",
                    context={"subsystem": "service", "field": name})
        if self.shards > self.workers:
            raise ServiceError(
                f"shards ({self.shards}) cannot exceed workers "
                f"({self.workers})",
                context={"subsystem": "service", "field": "shards"})


def backoff_delay_s(attempt: int, base_s: float,
                    max_s: float) -> float:
    """Deterministic exponential backoff: ``base * 2^(attempt-1)``,
    capped.  No jitter — reproducibility beats thundering-herd
    avoidance at this scale, and tests stay deterministic."""
    return min(max_s, base_s * (2.0 ** max(0, attempt - 1)))


def job_id_for_spec(spec_document: Dict[str, Any]) -> str:
    """Content-addressed default job id for a spec document."""
    payload = json.dumps(spec_document, sort_keys=True).encode("utf-8")
    return "job-" + hashlib.sha256(payload).hexdigest()[:16]


def submit_job(state_dir: PathLike, job: JobRequest) -> pathlib.Path:
    """Spool one job into a state directory (no service required).

    The drop is a single atomic rename, so a service scanning ``jobs/``
    can never observe a half-written job.  Duplicate ids are refused —
    results are keyed by id, and silently replacing a job would make
    "which spec does this result describe?" ambiguous.
    """
    paths = ServicePaths(state_dir).ensure()
    job_path = paths.job_path(job.job_id)
    if job_path.exists():
        raise ServiceError(
            f"job {job.job_id!r} is already submitted",
            context={"subsystem": "service", "job_id": job.job_id})
    if paths.result_path(job.job_id).exists():
        raise ServiceError(
            f"job {job.job_id!r} already has a result; pick a new id",
            context={"subsystem": "service", "job_id": job.job_id})
    return atomic_write_json(job_path, job.to_json_dict())


def next_submit_seq(state_dir: PathLike) -> int:
    """1 + the highest ``submitted_seq`` spooled so far."""
    paths = ServicePaths(state_dir)
    highest = -1
    for path in paths.list_jobs():
        try:
            job = load_job_file(path)
        except ServiceError:
            continue
        highest = max(highest, job.submitted_seq)
    return highest + 1


@dataclass
class _Shard:
    """One worker pool: a bounded queue plus its worker tasks."""

    index: int
    queue: "asyncio.Queue[JobRequest]"
    workers: List["asyncio.Task"] = field(default_factory=list)


class SessionService:
    """The durable session service.  One instance per state directory.

    Construct, then ``asyncio.run(service.serve())`` (or let the
    ``repro serve`` CLI do it).  All mutation happens on the event
    loop; no locks.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.paths = ServicePaths(config.state_dir)
        self.metrics = MetricsRegistry()
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s)
        self.journal: Optional[Journal] = None
        self._shards: List[_Shard] = []
        self._known: Dict[str, str] = {}
        self._pending: List[JobRequest] = []
        self._in_flight: int = 0
        self._draining = False
        self._stop_requested = False
        self._drain_then_exit = False
        self._journal_damage: Dict[str, Any] = {"torn_tail": False,
                                                "bad_lines": 0}
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return (sum(shard.queue.qsize() for shard in self._shards)
                + len(self._pending))

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def _terminal_count(self, *statuses: str) -> int:
        wanted = statuses or JobStatus.TERMINAL
        return sum(1 for status in self._known.values()
                   if status in wanted)

    def _all_terminal(self) -> bool:
        return (not self._pending and self._in_flight == 0
                and all(status in JobStatus.TERMINAL
                        for status in self._known.values()))

    # ------------------------------------------------------------------
    # Submission (in-process)
    # ------------------------------------------------------------------
    def submit(self, job: JobRequest) -> None:
        """Submit to the *running* service; sheds instead of blocking.

        Raises :class:`~repro.errors.ServiceUnavailableError` when the
        breaker is open or every shard queue is full — the caller gets
        a structured rejection now rather than an unbounded wait.  On
        success the job is spooled durably and enqueued.
        """
        if self._draining:
            raise ServiceUnavailableError(
                "service is draining; submit after restart",
                context=self._unavailable_context(job.job_id))
        if not self.breaker.allow():
            self._count("service.jobs_rejected")
            raise ServiceUnavailableError(
                f"circuit breaker is {self.breaker.state}; job "
                f"{job.job_id!r} shed",
                context=self._unavailable_context(job.job_id))
        shard = self._shard_for(job.job_id)
        if shard.queue.full():
            self._count("service.jobs_rejected")
            raise ServiceUnavailableError(
                f"shard {shard.index} queue is full "
                f"(capacity {self.config.queue_capacity}); job "
                f"{job.job_id!r} shed",
                context=self._unavailable_context(job.job_id))
        submit_job(self.config.state_dir, job)
        self._admit(job, shard)

    def _unavailable_context(self, job_id: str) -> Dict[str, Any]:
        return {"subsystem": "service", "job_id": job_id,
                "breaker": self.breaker.as_dict(),
                "queue_depth": self.queue_depth,
                "queue_capacity": self.config.queue_capacity}

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def serve(self) -> Dict[str, Any]:
        """Run until stopped; returns a final status summary.

        Exit conditions: SIGTERM/SIGINT (graceful park), a ``stop``
        control marker, a ``drain`` marker once everything known is
        terminal, ``until_idle`` once the backlog is empty, or
        ``max_runtime_s``.
        """
        config = self.config
        self.paths.ensure()
        self.journal = Journal(self.paths.journal_path,
                               fsync=config.fsync_journal)
        self._started_at = time.monotonic()
        self._install_signal_handlers()
        self._journal_op("service_start", workers=config.workers,
                         shards=config.shards)
        self._recover()
        workers_per_shard = max(1, config.workers // config.shards)
        for index in range(config.shards):
            shard = _Shard(index=index, queue=asyncio.Queue(
                maxsize=config.queue_capacity))
            shard.workers = [
                asyncio.create_task(self._worker(shard))
                for _ in range(workers_per_shard)]
            self._shards.append(shard)
        last_health = 0.0
        try:
            while True:
                self._ingest_spool()
                self._drain_pending()
                self._check_control_markers()
                now = time.monotonic()
                if now - last_health >= config.health_period_s:
                    self._write_health()
                    last_health = now
                if self._stop_requested:
                    break
                if self._drain_then_exit and self._all_terminal():
                    break
                if (config.until_idle and self._all_terminal()
                        and not self._scan_new_job_files()):
                    break
                if (config.max_runtime_s is not None
                        and now - self._started_at
                        >= config.max_runtime_s):
                    self._stop_requested = True
                    continue
                await asyncio.sleep(config.poll_period_s)
        finally:
            await self._shutdown()
        return self.status_summary()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Non-unix platforms / nested loops: rely on markers.
                return

    def request_shutdown(self) -> None:
        """Graceful stop: park in-flight jobs, keep the queue on disk."""
        self._draining = True
        self._stop_requested = True

    async def _shutdown(self) -> None:
        self._draining = True
        # Give in-flight jobs one drain-grace window to notice the
        # flag at their next slice boundary and park with a checkpoint
        # — cancelling first would lose the slice progress.
        grace_deadline = time.monotonic() + self.config.drain_grace_s
        while self._in_flight > 0 and \
                time.monotonic() < grace_deadline:
            await asyncio.sleep(self.config.poll_period_s)
        for shard in self._shards:
            for task in shard.workers:
                task.cancel()
        for shard in self._shards:
            for task in shard.workers:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._write_health(state="stopped")
        self._journal_op("service_stop",
                         done=self._terminal_count(JobStatus.DONE),
                         failed=self._terminal_count(JobStatus.FAILED),
                         rejected=self._terminal_count(
                             JobStatus.REJECTED))
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # ------------------------------------------------------------------
    # Recovery + ingest
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild in-memory state from disk after a (possibly dirty)
        start.  Results are authoritative; the journal only reports
        damage and history."""
        state = read_journal(self.paths.journal_path)
        self._journal_damage = {"torn_tail": state.torn_tail,
                                "bad_lines": state.bad_lines}
        if state.torn_tail or state.bad_lines:
            self._count("service.journal_torn_tail",
                        int(state.torn_tail))
            self._count("service.journal_bad_lines", state.bad_lines)
            self._journal_op(
                "recovery", torn_tail=state.torn_tail,
                bad_lines=state.bad_lines,
                note="journal damage tolerated; results directory is "
                     "authoritative")
        recovered = 0
        for path in self.paths.list_jobs():
            job_id = path.stem
            result = load_result(self.paths, job_id)
            if result is not None:
                self._known[job_id] = result["status"]
                recovered += 1
        # Orphan checkpoints (job finished, crash before cleanup).
        for path in sorted(
                self.paths.checkpoints_dir.glob("*.json")):
            if self.paths.result_path(path.stem).exists():
                path.unlink(missing_ok=True)
        if recovered:
            self._journal_op("recovery", completed_jobs=recovered)

    def _scan_new_job_files(self) -> List[pathlib.Path]:
        return [path for path in self.paths.list_jobs()
                if path.stem not in self._known]

    def _ingest_spool(self) -> None:
        """Pick up job files not yet known, in deterministic order."""
        new_jobs: List[JobRequest] = []
        for path in self._scan_new_job_files():
            job_id = path.stem
            result = load_result(self.paths, job_id)
            if result is not None:
                self._known[job_id] = result["status"]
                continue
            try:
                job = load_job_file(path)
            except ServiceError as exc:
                self._terminalize(
                    job_id=job_id, status=JobStatus.FAILED,
                    error=exc, spec={}, attempts=0)
                continue
            if job.job_id != job_id:
                self._terminalize(
                    job_id=job_id, status=JobStatus.FAILED,
                    error=ServiceError(
                        f"job file {path.name} carries mismatched "
                        f"job_id {job.job_id!r}",
                        context={"subsystem": "service"}),
                    spec=job.spec, attempts=0,
                    submitted_seq=job.submitted_seq)
                continue
            new_jobs.append(job)
        for job in sorted(new_jobs, key=JobRequest.sort_key):
            if not self.breaker.allow():
                self._count("service.jobs_rejected")
                self._journal_op("job_rejected", job_id=job.job_id,
                                 breaker=self.breaker.state)
                self._terminalize(
                    job_id=job.job_id,
                    status=JobStatus.REJECTED,
                    error=ServiceUnavailableError(
                        f"circuit breaker is {self.breaker.state}; "
                        f"job {job.job_id!r} shed",
                        context=self._unavailable_context(job.job_id)),
                    spec=job.spec, attempts=0, journal_failed=False,
                    submitted_seq=job.submitted_seq)
                continue
            self._known[job.job_id] = JobStatus.PENDING
            self._pending.append(job)
            self._count("service.jobs_ingested")
            self._journal_op("job_ingested", job_id=job.job_id,
                             submitted_seq=job.submitted_seq)

    def _drain_pending(self) -> None:
        """Move pending jobs into shard queues as capacity allows."""
        still_waiting: List[JobRequest] = []
        for job in self._pending:
            shard = self._shard_for(job.job_id)
            if shard.queue.full():
                still_waiting.append(job)
                continue
            shard.queue.put_nowait(job)
        self._pending = still_waiting

    def _admit(self, job: JobRequest, shard: _Shard) -> None:
        self._known[job.job_id] = JobStatus.PENDING
        self._count("service.jobs_ingested")
        self._journal_op("job_ingested", job_id=job.job_id,
                         submitted_seq=job.submitted_seq)
        shard.queue.put_nowait(job)

    def _shard_for(self, job_id: str) -> _Shard:
        digest = hashlib.sha256(job_id.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "big") % max(
            1, len(self._shards))
        return self._shards[index]

    def _check_control_markers(self) -> None:
        if self.paths.stop_marker().exists():
            self.paths.stop_marker().unlink(missing_ok=True)
            self.request_shutdown()
        if self.paths.drain_marker().exists():
            self._drain_then_exit = True

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self, shard: _Shard) -> None:
        while True:
            job = await shard.queue.get()
            self._in_flight += 1
            try:
                await self._run_job(job)
            finally:
                self._in_flight -= 1
                shard.queue.task_done()

    async def _run_job(self, job: JobRequest) -> None:
        config = self.config
        self._known[job.job_id] = JobStatus.RUNNING
        last_error: Optional[BaseException] = None
        for attempt in range(1, config.max_attempts + 1):
            self._count("service.attempts")
            self._journal_op("attempt_start", job_id=job.job_id,
                             attempt=attempt)
            try:
                parked = await self._execute(job)
            except asyncio.CancelledError:
                # Hard cancel (shutdown while mid-slice): park what we
                # can so restart resumes instead of recomputing.
                self._known[job.job_id] = JobStatus.PENDING
                raise
            except Exception as exc:
                last_error = exc
                self._count("service.job_failures")
                self.breaker.record_failure()
                if self.breaker.state == BreakerState.OPEN:
                    self._journal_op("breaker_open",
                                     job_id=job.job_id,
                                     trips=self.breaker.trips)
                self._journal_op(
                    "attempt_failed", job_id=job.job_id,
                    attempt=attempt,
                    error_type=type(exc).__name__,
                    error_message=str(exc))
                if attempt < config.max_attempts:
                    self._count("service.retries")
                    await asyncio.sleep(backoff_delay_s(
                        attempt, config.backoff_base_s,
                        config.backoff_max_s))
                continue
            if parked:
                self._known[job.job_id] = JobStatus.PENDING
                return
            self.breaker.record_success()
            return
        assert last_error is not None
        self._terminalize(job_id=job.job_id,
                          status=JobStatus.FAILED, error=last_error,
                          spec=job.spec,
                          attempts=config.max_attempts,
                          submitted_seq=job.submitted_seq)

    async def _execute(self, job: JobRequest) -> bool:
        """One attempt.  Returns True when the job *parked* (drain)."""
        config = self.config
        runner = self._build_runner(job)
        deadline_s = job.deadline_s or config.default_deadline_s
        deadline_at = (time.monotonic() + deadline_s
                       if deadline_s is not None else None)
        last_checkpoint_t = runner.now
        while not runner.done:
            if self._draining:
                self._park(job, runner)
                return True
            if deadline_at is not None and \
                    time.monotonic() > deadline_at:
                raise TimeoutError(
                    f"job {job.job_id!r} exceeded its deadline of "
                    f"{deadline_s:.3f}s (sim time reached "
                    f"{runner.now:.3f}s of {runner.duration_s:.3f}s)")
            runner.advance(runner.now + config.slice_s,
                           max_events=config.max_slice_events)
            if (not runner.done and runner.now - last_checkpoint_t
                    >= config.checkpoint_period_s):
                runner.save_checkpoint(
                    self.paths.checkpoint_path(job.job_id),
                    job_id=job.job_id)
                last_checkpoint_t = runner.now
                self._count("service.checkpoints_written")
                self._journal_op("checkpoint_written",
                                 job_id=job.job_id,
                                 sim_time_s=runner.now)
            await asyncio.sleep(config.slice_sleep_s)
        from ..analysis.export import json_sanitize

        summary = json_sanitize(summarize_result(runner.finish()))
        written = write_result(self.paths, job.job_id, JobStatus.DONE,
                               {"summary": summary})
        self._known[job.job_id] = JobStatus.DONE
        if written is not None:
            self._count("service.jobs_done")
            self._journal_op("job_done", job_id=job.job_id,
                             sim_time_s=runner.now)
        self.paths.checkpoint_path(job.job_id).unlink(missing_ok=True)
        return False

    def _build_runner(self, job: JobRequest) -> SessionRunner:
        """Resume from a valid checkpoint, else build from the spec.

        An unusable checkpoint (torn write, garbage, digest mismatch)
        is journaled, counted and deleted — the attempt restarts from
        scratch, trading wall time for a guaranteed-correct result.
        """
        from ..pipeline.spec import SessionSpec

        checkpoint_path = self.paths.checkpoint_path(job.job_id)
        if checkpoint_path.exists():
            try:
                runner = resume_from_file(
                    checkpoint_path,
                    max_events=self.config.max_slice_events)
            except CheckpointError as exc:
                self._count("service.checkpoints_invalid")
                self._journal_op(
                    "checkpoint_invalid", job_id=job.job_id,
                    error_type=type(exc).__name__,
                    error_message=str(exc))
                checkpoint_path.unlink(missing_ok=True)
            else:
                self._count("service.resumes")
                self._journal_op("job_resumed", job_id=job.job_id,
                                 sim_time_s=runner.now)
                return runner
        spec = SessionSpec.from_json_dict(job.spec)
        return SessionRunner(spec.to_config())

    def _park(self, job: JobRequest, runner: SessionRunner) -> None:
        """Checkpoint an in-flight job for the next service start."""
        try:
            runner.save_checkpoint(
                self.paths.checkpoint_path(job.job_id),
                job_id=job.job_id)
        except CheckpointError:
            # Not spec-expressible (cannot happen for spooled jobs,
            # which by construction came from a spec) — parking just
            # means a from-scratch restart.
            pass
        self._count("service.jobs_parked")
        self._journal_op("job_parked", job_id=job.job_id,
                         sim_time_s=runner.now)

    def _terminalize(self, *, job_id: str,
                     status: str, error: BaseException,
                     spec: Dict[str, Any], attempts: int,
                     journal_failed: bool = True,
                     submitted_seq: int = 0) -> None:
        """Write a structured terminal failure/rejection result."""
        record = make_failure_record(
            index=submitted_seq,
            config=spec if spec else {"app": "?"},
            error=error, attempts=attempts)
        record["job_id"] = job_id
        written = write_result(self.paths, job_id, status,
                               {"failure": record})
        self._known[job_id] = status
        if written is None:
            return
        if status == JobStatus.FAILED:
            self._count("service.jobs_failed")
            if journal_failed:
                self._journal_op(
                    "job_failed", job_id=job_id,
                    error_type=record["error_type"],
                    error_message=record["error_message"],
                    attempts=attempts)

    # ------------------------------------------------------------------
    # Health + bookkeeping
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def _journal_op(self, op: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(op, **fields)

    def status_summary(self) -> Dict[str, Any]:
        """In-memory job/queue/breaker overview (also in health)."""
        return {
            "jobs": {
                "known": len(self._known),
                "pending": sum(
                    1 for status in self._known.values()
                    if status == JobStatus.PENDING),
                "running": sum(
                    1 for status in self._known.values()
                    if status == JobStatus.RUNNING),
                "done": self._terminal_count(JobStatus.DONE),
                "failed": self._terminal_count(JobStatus.FAILED),
                "rejected": self._terminal_count(JobStatus.REJECTED),
            },
            "queue_depth": self.queue_depth,
            "in_flight": self._in_flight,
            "breaker": self.breaker.as_dict(),
            "journal": dict(self._journal_damage),
        }

    def _write_health(self, state: Optional[str] = None) -> None:
        self.metrics.gauge("service.queue_depth").set(
            self.queue_depth)
        self.metrics.gauge("service.in_flight").set(self._in_flight)
        document = {
            "schema": HEALTH_SCHEMA,
            "state": state or ("draining" if self._draining
                               else "running"),
            "ready": (not self._draining
                      and self.breaker.state != BreakerState.OPEN),
            **self.status_summary(),
            "metrics": self.metrics.as_dict(),
        }
        atomic_write_json(self.paths.health_path, document)


# ----------------------------------------------------------------------
# Offline status (CLI `repro status` — no running service needed)
# ----------------------------------------------------------------------
def service_status(state_dir: PathLike) -> Dict[str, Any]:
    """Status assembled from the state directory alone.

    Job states derive from the durable artifacts: a result file is
    terminal, a checkpoint without a result is ``parked``, a job file
    with neither is ``pending``.  The latest ``health.json`` snapshot
    (if any) rides along — it may be stale if no service is running.
    """
    paths = ServicePaths(state_dir)
    if not paths.state_dir.is_dir():
        raise ServiceError(
            f"state directory {paths.state_dir} does not exist",
            context={"subsystem": "service",
                     "path": str(paths.state_dir)})
    jobs: Dict[str, Dict[str, Any]] = {}
    for path in paths.list_jobs():
        job_id = path.stem
        entry: Dict[str, Any] = {"job_id": job_id}
        result = load_result(paths, job_id)
        if result is not None:
            entry["status"] = result["status"]
            failure = result.get("failure")
            if isinstance(failure, dict):
                entry["error_type"] = failure.get("error_type")
        elif paths.checkpoint_path(job_id).exists():
            entry["status"] = "parked"
        else:
            entry["status"] = JobStatus.PENDING
        jobs[job_id] = entry
    health: Optional[Dict[str, Any]] = None
    try:
        health = json.loads(paths.health_path.read_text())
    except (OSError, ValueError):
        health = None
    journal_state = read_journal(paths.journal_path)
    return {
        "state_dir": str(paths.state_dir),
        "jobs": [jobs[job_id] for job_id in sorted(jobs)],
        "counts": {
            status: sum(1 for entry in jobs.values()
                        if entry["status"] == status)
            for status in ("pending", "parked", "done", "failed",
                           "rejected")},
        "journal": {"records": len(journal_state.records),
                    "torn_tail": journal_state.torn_tail,
                    "bad_lines": journal_state.bad_lines},
        "health": health,
    }


def request_drain(state_dir: PathLike) -> pathlib.Path:
    """Drop the drain marker: finish everything, then exit."""
    paths = ServicePaths(state_dir).ensure()
    marker = paths.drain_marker()
    marker.touch()
    return marker


def request_stop(state_dir: PathLike) -> pathlib.Path:
    """Drop the stop marker: park in-flight jobs and exit now."""
    paths = ServicePaths(state_dir).ensure()
    marker = paths.stop_marker()
    marker.touch()
    return marker
