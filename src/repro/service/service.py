"""The asyncio session service: durable queue, checkpoints, degradation.

One :class:`SessionService` owns a state directory
(:class:`~repro.service.jobs.ServicePaths`) and runs submitted session
jobs to completion, surviving any crash:

* Jobs arrive as atomic file drops in ``jobs/`` — written by
  :func:`submit_job` (works with no service running) or by the running
  service's :meth:`SessionService.submit`.
* Sharded workers (plain asyncio tasks — sessions are CPU-bounded
  slices, so cooperative stepping keeps the loop responsive without
  threads) pull from bounded per-shard queues.  A full queue is
  *backpressure*: spooled jobs simply wait on disk; in-process submits
  fail fast with :class:`~repro.errors.ServiceUnavailableError`.
* Every job checkpoints periodically
  (:class:`~repro.sim.runner.SessionRunner` documents), so a SIGKILL
  at an arbitrary frame resumes — digest-verified — and produces a
  summary byte-identical to an uninterrupted run.
* Failures retry with exponential backoff up to ``max_attempts``, then
  become structured failure records (the same
  :func:`~repro.sim.batch.make_failure_record` shape the batch engine
  writes).  Consecutive failures trip a circuit breaker that rejects
  *new* jobs with structured records instead of queueing behind a
  dying fleet.
* SIGTERM/SIGINT drain gracefully: in-flight jobs checkpoint and park,
  queued jobs stay durable on disk, the service exits 0.
* Health/readiness snapshots (``health.json``, atomic) are fed by a
  :class:`~repro.telemetry.metrics.MetricsRegistry`.

Failure matrix and format reference: ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import pathlib
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..errors import (
    CheckpointError,
    ServiceError,
    ServiceUnavailableError,
)
from ..ioutil import atomic_write_json
from ..sim.batch import make_failure_record, summarize_result
from ..sim.runner import SessionRunner, resume_from_file
from ..telemetry.expose import render_groups
from ..telemetry.metrics import MetricsRegistry, merge_snapshots
from ..telemetry.profiling import SPAN_BUCKET_EDGES_S
from ..telemetry.tracing import mint_trace_id
from .breaker import BreakerState, CircuitBreaker
from .http import ObservabilityServer
from .jobs import (
    JobRequest,
    JobStatus,
    ServicePaths,
    load_job_file,
    load_result,
    write_result,
)
from .journal import Journal, read_journal

PathLike = Union[str, pathlib.Path]

#: Health snapshot schema tag.
HEALTH_SCHEMA = "repro-health/1"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`SessionService`.

    Defaults favour correctness over throughput; the chaos harness and
    tests shrink the periods to provoke races quickly.

    ``slice_s`` is *simulation* seconds advanced per cooperative step;
    ``slice_sleep_s`` is *wall* seconds slept between steps (0 runs
    flat out — raise it to pace execution, e.g. so a chaos kill lands
    mid-job deterministically).  ``checkpoint_period_s`` is simulation
    seconds of progress between checkpoint writes.
    """

    state_dir: str
    workers: int = 2
    shards: int = 1
    queue_capacity: int = 16
    slice_s: float = 1.0
    slice_sleep_s: float = 0.0
    checkpoint_period_s: float = 5.0
    max_slice_events: int = 5_000_000
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    default_deadline_s: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    poll_period_s: float = 0.05
    health_period_s: float = 0.25
    fsync_journal: bool = True
    until_idle: bool = False
    max_runtime_s: Optional[float] = None
    drain_grace_s: float = 30.0
    #: Observability listener port: ``None`` disables it, ``0`` binds
    #: an ephemeral port (published in ``health.json``).
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    #: Content-addressed result cache directory (``None`` disables
    #: caching): jobs whose spec is already cached complete without
    #: simulating, finished jobs populate the cache, and the cache's
    #: ``cache.*`` counters surface on the service /metrics scrape.
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        for name, minimum in (("workers", 1), ("shards", 1),
                              ("queue_capacity", 1),
                              ("max_attempts", 1),
                              ("max_slice_events", 1),
                              ("breaker_threshold", 1)):
            if getattr(self, name) < minimum:
                raise ServiceError(
                    f"{name} must be >= {minimum}, got "
                    f"{getattr(self, name)}",
                    context={"subsystem": "service", "field": name})
        for name in ("slice_s", "checkpoint_period_s",
                     "poll_period_s", "health_period_s",
                     "breaker_cooldown_s"):
            if getattr(self, name) <= 0:
                raise ServiceError(
                    f"{name} must be > 0, got {getattr(self, name)}",
                    context={"subsystem": "service", "field": name})
        if self.shards > self.workers:
            raise ServiceError(
                f"shards ({self.shards}) cannot exceed workers "
                f"({self.workers})",
                context={"subsystem": "service", "field": "shards"})
        if self.http_port is not None and not (
                0 <= self.http_port <= 65535):
            raise ServiceError(
                f"http_port must be 0..65535, got {self.http_port}",
                context={"subsystem": "service", "field": "http_port"})


def backoff_delay_s(attempt: int, base_s: float,
                    max_s: float) -> float:
    """Deterministic exponential backoff: ``base * 2^(attempt-1)``,
    capped.  No jitter — reproducibility beats thundering-herd
    avoidance at this scale, and tests stay deterministic."""
    return min(max_s, base_s * (2.0 ** max(0, attempt - 1)))


def job_id_for_spec(spec_document: Dict[str, Any]) -> str:
    """Content-addressed default job id for a spec document."""
    payload = json.dumps(spec_document, sort_keys=True).encode("utf-8")
    return "job-" + hashlib.sha256(payload).hexdigest()[:16]


def submit_job(state_dir: PathLike, job: JobRequest) -> pathlib.Path:
    """Spool one job into a state directory (no service required).

    The drop is a single atomic rename, so a service scanning ``jobs/``
    can never observe a half-written job.  Duplicate ids are refused —
    results are keyed by id, and silently replacing a job would make
    "which spec does this result describe?" ambiguous.
    """
    paths = ServicePaths(state_dir).ensure()
    job_path = paths.job_path(job.job_id)
    if job_path.exists():
        raise ServiceError(
            f"job {job.job_id!r} is already submitted",
            context={"subsystem": "service", "job_id": job.job_id})
    if paths.result_path(job.job_id).exists():
        raise ServiceError(
            f"job {job.job_id!r} already has a result; pick a new id",
            context={"subsystem": "service", "job_id": job.job_id})
    return atomic_write_json(job_path, job.to_json_dict())


def next_submit_seq(state_dir: PathLike) -> int:
    """1 + the highest ``submitted_seq`` spooled so far."""
    paths = ServicePaths(state_dir)
    highest = -1
    for path in paths.list_jobs():
        try:
            job = load_job_file(path)
        except ServiceError:
            continue
        highest = max(highest, job.submitted_seq)
    return highest + 1


@dataclass
class _Shard:
    """One worker pool: a bounded queue, worker tasks, and the shard's
    own :class:`~repro.telemetry.metrics.MetricsRegistry` (scrapes
    merge it with the service registry under a ``shard`` label)."""

    index: int
    queue: "asyncio.Queue[JobRequest]"
    workers: List["asyncio.Task"] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


class SessionService:
    """The durable session service.  One instance per state directory.

    Construct, then ``asyncio.run(service.serve())`` (or let the
    ``repro serve`` CLI do it).  All mutation happens on the event
    loop; no locks.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.paths = ServicePaths(config.state_dir)
        self.metrics = MetricsRegistry()
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s)
        self.journal: Optional[Journal] = None
        self._shards: List[_Shard] = []
        self._known: Dict[str, str] = {}
        self._pending: List[JobRequest] = []
        self._in_flight: int = 0
        self._draining = False
        self._stop_requested = False
        self._drain_then_exit = False
        self._journal_damage: Dict[str, Any] = {"torn_tail": False,
                                                "bad_lines": 0}
        self._started_at = 0.0
        self._trace_ids: Dict[str, str] = {}
        self._http: Optional[ObservabilityServer] = None
        #: ``(host, port)`` of the observability listener once bound.
        self.http_address: Optional[tuple] = None
        #: Content-addressed result cache (``None``: caching off).
        #: Shares the service metrics registry so its ``cache.*``
        #: counters ride the same scrape/exposition surface.
        self.cache = None
        if config.cache_dir is not None:
            from ..cache import ResultCache
            self.cache = ResultCache(config.cache_dir,
                                     metrics=self.metrics)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return (sum(shard.queue.qsize() for shard in self._shards)
                + len(self._pending))

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def _terminal_count(self, *statuses: str) -> int:
        wanted = statuses or JobStatus.TERMINAL
        return sum(1 for status in self._known.values()
                   if status in wanted)

    def _all_terminal(self) -> bool:
        return (not self._pending and self._in_flight == 0
                and all(status in JobStatus.TERMINAL
                        for status in self._known.values()))

    # ------------------------------------------------------------------
    # Submission (in-process)
    # ------------------------------------------------------------------
    def submit(self, job: JobRequest) -> None:
        """Submit to the *running* service; sheds instead of blocking.

        Raises :class:`~repro.errors.ServiceUnavailableError` when the
        breaker is open or every shard queue is full — the caller gets
        a structured rejection now rather than an unbounded wait.  On
        success the job is spooled durably and enqueued.
        """
        if self._draining:
            raise ServiceUnavailableError(
                "service is draining; submit after restart",
                context=self._unavailable_context(job.job_id))
        if not self.breaker.allow():
            self._count("service.jobs_rejected")
            raise ServiceUnavailableError(
                f"circuit breaker is {self.breaker.state}; job "
                f"{job.job_id!r} shed",
                context=self._unavailable_context(job.job_id))
        shard = self._shard_for(job.job_id)
        if shard.queue.full():
            self._count("service.jobs_rejected")
            raise ServiceUnavailableError(
                f"shard {shard.index} queue is full "
                f"(capacity {self.config.queue_capacity}); job "
                f"{job.job_id!r} shed",
                context=self._unavailable_context(job.job_id))
        submit_job(self.config.state_dir, job)
        self._admit(job, shard)

    def _unavailable_context(self, job_id: str) -> Dict[str, Any]:
        return {"subsystem": "service", "job_id": job_id,
                "breaker": self.breaker.as_dict(),
                "queue_depth": self.queue_depth,
                "queue_capacity": self.config.queue_capacity}

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def serve(self) -> Dict[str, Any]:
        """Run until stopped; returns a final status summary.

        Exit conditions: SIGTERM/SIGINT (graceful park), a ``stop``
        control marker, a ``drain`` marker once everything known is
        terminal, ``until_idle`` once the backlog is empty, or
        ``max_runtime_s``.
        """
        config = self.config
        self.paths.ensure()
        self.journal = Journal(self.paths.journal_path,
                               fsync=config.fsync_journal)
        self._started_at = time.monotonic()
        self._install_signal_handlers()
        self._journal_op("service_start", workers=config.workers,
                         shards=config.shards)
        self._recover()
        workers_per_shard = max(1, config.workers // config.shards)
        for index in range(config.shards):
            shard = _Shard(index=index, queue=asyncio.Queue(
                maxsize=config.queue_capacity))
            shard.workers = [
                asyncio.create_task(self._worker(shard))
                for _ in range(workers_per_shard)]
            self._shards.append(shard)
        if config.http_port is not None:
            self._http = ObservabilityServer(
                metrics_text=self.metrics_text,
                health_document=self.health_document,
                ready=lambda: (not self._draining
                               and self.breaker.state
                               != BreakerState.OPEN),
                host=config.http_host, port=config.http_port)
            self.http_address = await self._http.start()
        last_health = 0.0
        try:
            while True:
                self._ingest_spool()
                self._drain_pending()
                self._check_control_markers()
                now = time.monotonic()
                if now - last_health >= config.health_period_s:
                    self._write_health()
                    last_health = now
                if self._stop_requested:
                    break
                if self._drain_then_exit and self._all_terminal():
                    break
                if (config.until_idle and self._all_terminal()
                        and not self._scan_new_job_files()):
                    break
                if (config.max_runtime_s is not None
                        and now - self._started_at
                        >= config.max_runtime_s):
                    self._stop_requested = True
                    continue
                await asyncio.sleep(config.poll_period_s)
        finally:
            await self._shutdown()
        return self.status_summary()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Non-unix platforms / nested loops: rely on markers.
                return

    def request_shutdown(self) -> None:
        """Graceful stop: park in-flight jobs, keep the queue on disk."""
        self._draining = True
        self._stop_requested = True

    async def _shutdown(self) -> None:
        self._draining = True
        if self._http is not None:
            await self._http.stop()
            self._http = None
        # Give in-flight jobs one drain-grace window to notice the
        # flag at their next slice boundary and park with a checkpoint
        # — cancelling first would lose the slice progress.
        grace_deadline = time.monotonic() + self.config.drain_grace_s
        while self._in_flight > 0 and \
                time.monotonic() < grace_deadline:
            await asyncio.sleep(self.config.poll_period_s)
        for shard in self._shards:
            for task in shard.workers:
                task.cancel()
        for shard in self._shards:
            for task in shard.workers:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self.cache is not None:
            self.cache.write_index()
        self._write_health(state="stopped")
        self._journal_op("service_stop",
                         done=self._terminal_count(JobStatus.DONE),
                         failed=self._terminal_count(JobStatus.FAILED),
                         rejected=self._terminal_count(
                             JobStatus.REJECTED))
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # ------------------------------------------------------------------
    # Recovery + ingest
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild in-memory state from disk after a (possibly dirty)
        start.  Results are authoritative; the journal only reports
        damage and history."""
        state = read_journal(self.paths.journal_path)
        self._journal_damage = {"torn_tail": state.torn_tail,
                                "bad_lines": state.bad_lines}
        if state.torn_tail or state.bad_lines:
            self._count("service.journal_torn_tail",
                        int(state.torn_tail))
            self._count("service.journal_bad_lines", state.bad_lines)
            self._journal_op(
                "recovery", torn_tail=state.torn_tail,
                bad_lines=state.bad_lines,
                note="journal damage tolerated; results directory is "
                     "authoritative")
        recovered = 0
        durable = {JobStatus.DONE: 0, JobStatus.FAILED: 0,
                   JobStatus.REJECTED: 0}
        for path in self.paths.list_jobs():
            job_id = path.stem
            result = load_result(self.paths, job_id)
            if result is not None:
                self._known[job_id] = result["status"]
                if result["status"] in durable:
                    durable[result["status"]] += 1
                recovered += 1
        # Seed the terminal counters from the durable results so a
        # scrape sees values monotonic across process generations —
        # the in-memory registry died with the previous incarnation,
        # but the results directory did not.
        self._count("service.jobs_done", durable[JobStatus.DONE])
        self._count("service.jobs_failed", durable[JobStatus.FAILED])
        self._count("service.jobs_rejected",
                    durable[JobStatus.REJECTED])
        # Orphan checkpoints (job finished, crash before cleanup).
        for path in sorted(
                self.paths.checkpoints_dir.glob("*.json")):
            if self.paths.result_path(path.stem).exists():
                path.unlink(missing_ok=True)
        if recovered:
            self._journal_op("recovery", completed_jobs=recovered)

    def _scan_new_job_files(self) -> List[pathlib.Path]:
        return [path for path in self.paths.list_jobs()
                if path.stem not in self._known]

    def _ingest_spool(self) -> None:
        """Pick up job files not yet known, in deterministic order."""
        new_jobs: List[JobRequest] = []
        for path in self._scan_new_job_files():
            job_id = path.stem
            result = load_result(self.paths, job_id)
            if result is not None:
                self._known[job_id] = result["status"]
                continue
            try:
                job = load_job_file(path)
            except ServiceError as exc:
                self._terminalize(
                    job_id=job_id, status=JobStatus.FAILED,
                    error=exc, spec={}, attempts=0)
                continue
            if job.job_id != job_id:
                self._terminalize(
                    job_id=job_id, status=JobStatus.FAILED,
                    error=ServiceError(
                        f"job file {path.name} carries mismatched "
                        f"job_id {job.job_id!r}",
                        context={"subsystem": "service"}),
                    spec=job.spec, attempts=0,
                    submitted_seq=job.submitted_seq)
                continue
            new_jobs.append(job)
        for job in sorted(new_jobs, key=JobRequest.sort_key):
            self._register_trace(job)
            if not self.breaker.allow():
                self._count("service.jobs_rejected")
                self._journal_op("job_rejected", job_id=job.job_id,
                                 breaker=self.breaker.state)
                self._terminalize(
                    job_id=job.job_id,
                    status=JobStatus.REJECTED,
                    error=ServiceUnavailableError(
                        f"circuit breaker is {self.breaker.state}; "
                        f"job {job.job_id!r} shed",
                        context=self._unavailable_context(job.job_id)),
                    spec=job.spec, attempts=0, journal_failed=False,
                    submitted_seq=job.submitted_seq)
                continue
            self._known[job.job_id] = JobStatus.PENDING
            self._pending.append(job)
            self._count("service.jobs_ingested")
            self._journal_op("job_ingested", job_id=job.job_id,
                             submitted_seq=job.submitted_seq)

    def _drain_pending(self) -> None:
        """Move pending jobs into shard queues as capacity allows."""
        still_waiting: List[JobRequest] = []
        for job in self._pending:
            shard = self._shard_for(job.job_id)
            if shard.queue.full():
                still_waiting.append(job)
                continue
            shard.queue.put_nowait(job)
        self._pending = still_waiting

    def _register_trace(self, job: JobRequest) -> str:
        """The job's trace ID — carried on the job file, or minted
        deterministically so every process generation agrees."""
        trace_id = self._trace_ids.get(job.job_id)
        if trace_id is None:
            trace_id = job.trace_id or mint_trace_id(
                job.job_id, job.submitted_seq)
            self._trace_ids[job.job_id] = trace_id
        return trace_id

    def _admit(self, job: JobRequest, shard: _Shard) -> None:
        self._register_trace(job)
        self._known[job.job_id] = JobStatus.PENDING
        self._count("service.jobs_ingested")
        self._journal_op("job_ingested", job_id=job.job_id,
                         submitted_seq=job.submitted_seq)
        shard.queue.put_nowait(job)

    def _shard_for(self, job_id: str) -> _Shard:
        digest = hashlib.sha256(job_id.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "big") % max(
            1, len(self._shards))
        return self._shards[index]

    def _check_control_markers(self) -> None:
        if self.paths.stop_marker().exists():
            self.paths.stop_marker().unlink(missing_ok=True)
            self.request_shutdown()
        if self.paths.drain_marker().exists():
            self._drain_then_exit = True

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self, shard: _Shard) -> None:
        while True:
            job = await shard.queue.get()
            self._in_flight += 1
            shard.metrics.counter("worker.jobs_dispatched").inc()
            try:
                await self._run_job(job, shard)
            finally:
                self._in_flight -= 1
                shard.queue.task_done()

    async def _run_job(self, job: JobRequest,
                       shard: _Shard) -> None:
        config = self.config
        self._known[job.job_id] = JobStatus.RUNNING
        last_error: Optional[BaseException] = None
        for attempt in range(1, config.max_attempts + 1):
            self._count("service.attempts")
            self._journal_op("attempt_start", job_id=job.job_id,
                             attempt=attempt, shard=shard.index)
            shard.metrics.counter("worker.attempts").inc()
            try:
                parked = await self._execute(job, shard)
            except asyncio.CancelledError:
                # Hard cancel (shutdown while mid-slice): park what we
                # can so restart resumes instead of recomputing.
                self._known[job.job_id] = JobStatus.PENDING
                raise
            except Exception as exc:
                last_error = exc
                self._count("service.job_failures")
                self.breaker.record_failure()
                if self.breaker.state == BreakerState.OPEN:
                    self._journal_op("breaker_open",
                                     job_id=job.job_id,
                                     trips=self.breaker.trips)
                self._journal_op(
                    "attempt_failed", job_id=job.job_id,
                    attempt=attempt,
                    error_type=type(exc).__name__,
                    error_message=str(exc))
                if attempt < config.max_attempts:
                    self._count("service.retries")
                    await asyncio.sleep(backoff_delay_s(
                        attempt, config.backoff_base_s,
                        config.backoff_max_s))
                continue
            if parked:
                self._known[job.job_id] = JobStatus.PENDING
                return
            self.breaker.record_success()
            return
        assert last_error is not None
        self._terminalize(job_id=job.job_id,
                          status=JobStatus.FAILED, error=last_error,
                          spec=job.spec,
                          attempts=config.max_attempts,
                          submitted_seq=job.submitted_seq)

    async def _execute(self, job: JobRequest,
                       shard: _Shard) -> bool:
        """One attempt.  Returns True when the job *parked* (drain)."""
        from ..analysis.export import json_sanitize

        config = self.config
        cache_key = self._cache_key(job)
        if cache_key is not None:
            cached = self.cache.get(cache_key)
            if cached is not None:
                # Served from the content-addressed cache: the payload
                # is the byte-exact JSON round-trip of a finished run's
                # summary, so sanitizing it yields the identical result
                # document the uncached path below would have written.
                summary = json_sanitize(cached["entry"])
                written = write_result(self.paths, job.job_id,
                                       JobStatus.DONE,
                                       {"summary": summary})
                self._known[job.job_id] = JobStatus.DONE
                if written is not None:
                    self._count("service.jobs_done")
                    self._count("service.cache_hits")
                    shard.metrics.counter("worker.jobs_done").inc()
                    self._journal_op("job_done", job_id=job.job_id,
                                     sim_time_s=float(
                                         job.spec.get("duration_s",
                                                      0.0) or 0.0),
                                     cached=True)
                self.paths.checkpoint_path(job.job_id).unlink(
                    missing_ok=True)
                return False
        runner = self._build_runner(job)
        trace_id = self._register_trace(job)
        deadline_s = job.deadline_s or config.default_deadline_s
        deadline_at = (time.monotonic() + deadline_s
                       if deadline_s is not None else None)
        last_checkpoint_t = runner.now
        while not runner.done:
            if self._draining:
                self._park(job, runner)
                return True
            if deadline_at is not None and \
                    time.monotonic() > deadline_at:
                raise TimeoutError(
                    f"job {job.job_id!r} exceeded its deadline of "
                    f"{deadline_s:.3f}s (sim time reached "
                    f"{runner.now:.3f}s of {runner.duration_s:.3f}s)")
            slice_t0 = time.perf_counter()
            runner.advance(runner.now + config.slice_s,
                           max_events=config.max_slice_events)
            shard.metrics.counter("worker.slices").inc()
            # Wall-clock spans feed only the scrape surface (p50/p95
            # in `repro top`); nothing deterministic reads them.
            shard.metrics.histogram(
                "span.service_slice_seconds",
                SPAN_BUCKET_EDGES_S).observe(
                    time.perf_counter() - slice_t0)
            if (not runner.done and runner.now - last_checkpoint_t
                    >= config.checkpoint_period_s):
                checkpoint_t0 = time.perf_counter()
                runner.save_checkpoint(
                    self.paths.checkpoint_path(job.job_id),
                    job_id=job.job_id, trace_id=trace_id)
                shard.metrics.histogram(
                    "span.service_checkpoint_seconds",
                    SPAN_BUCKET_EDGES_S).observe(
                        time.perf_counter() - checkpoint_t0)
                last_checkpoint_t = runner.now
                self._count("service.checkpoints_written")
                self._journal_op("checkpoint_written",
                                 job_id=job.job_id,
                                 sim_time_s=runner.now)
            await asyncio.sleep(config.slice_sleep_s)
        raw = summarize_result(runner.finish())
        if cache_key is not None:
            self.cache.put(cache_key, {"entry": raw, "events": []})
        summary = json_sanitize(raw)
        written = write_result(self.paths, job.job_id, JobStatus.DONE,
                               {"summary": summary})
        self._known[job.job_id] = JobStatus.DONE
        if written is not None:
            self._count("service.jobs_done")
            shard.metrics.counter("worker.jobs_done").inc()
            self._journal_op("job_done", job_id=job.job_id,
                             sim_time_s=runner.now)
        self.paths.checkpoint_path(job.job_id).unlink(missing_ok=True)
        return False

    def _cache_key(self, job: JobRequest) -> Optional[str]:
        """The job's result-cache key, or None (no cache/uncacheable).

        A resumed job (valid checkpoint on disk) is mid-flight by
        definition; its cached answer would be correct too, but the
        lookup happens before resume so the checkpointed progress is
        never silently discarded in favour of a recompute-from-cache.
        """
        if self.cache is None:
            return None
        if self.paths.checkpoint_path(job.job_id).exists():
            return None
        from ..pipeline.spec import SessionSpec
        try:
            spec = SessionSpec.from_json_dict(job.spec)
        except Exception:  # noqa: BLE001 - malformed spec: run it
            return None
        return self.cache.key_for_spec(spec, capture=False)

    def _build_runner(self, job: JobRequest) -> SessionRunner:
        """Resume from a valid checkpoint, else build from the spec.

        An unusable checkpoint (torn write, garbage, digest mismatch)
        is journaled, counted and deleted — the attempt restarts from
        scratch, trading wall time for a guaranteed-correct result.
        """
        from ..pipeline.spec import SessionSpec

        checkpoint_path = self.paths.checkpoint_path(job.job_id)
        if checkpoint_path.exists():
            try:
                runner = resume_from_file(
                    checkpoint_path,
                    max_events=self.config.max_slice_events)
            except CheckpointError as exc:
                self._count("service.checkpoints_invalid")
                self._journal_op(
                    "checkpoint_invalid", job_id=job.job_id,
                    error_type=type(exc).__name__,
                    error_message=str(exc))
                checkpoint_path.unlink(missing_ok=True)
            else:
                self._count("service.resumes")
                self._journal_op("job_resumed", job_id=job.job_id,
                                 sim_time_s=runner.now)
                return runner
        spec = SessionSpec.from_json_dict(job.spec)
        return SessionRunner(spec.to_config())

    def _park(self, job: JobRequest, runner: SessionRunner) -> None:
        """Checkpoint an in-flight job for the next service start."""
        try:
            runner.save_checkpoint(
                self.paths.checkpoint_path(job.job_id),
                job_id=job.job_id,
                trace_id=self._register_trace(job))
        except CheckpointError:
            # Not spec-expressible (cannot happen for spooled jobs,
            # which by construction came from a spec) — parking just
            # means a from-scratch restart.
            pass
        self._count("service.jobs_parked")
        self._journal_op("job_parked", job_id=job.job_id,
                         sim_time_s=runner.now)

    def _terminalize(self, *, job_id: str,
                     status: str, error: BaseException,
                     spec: Dict[str, Any], attempts: int,
                     journal_failed: bool = True,
                     submitted_seq: int = 0) -> None:
        """Write a structured terminal failure/rejection result."""
        record = make_failure_record(
            index=submitted_seq,
            config=spec if spec else {"app": "?"},
            error=error, attempts=attempts)
        record["job_id"] = job_id
        written = write_result(self.paths, job_id, status,
                               {"failure": record})
        self._known[job_id] = status
        if written is None:
            return
        if status == JobStatus.FAILED:
            self._count("service.jobs_failed")
            if journal_failed:
                self._journal_op(
                    "job_failed", job_id=job_id,
                    error_type=record["error_type"],
                    error_message=record["error_message"],
                    attempts=attempts)

    # ------------------------------------------------------------------
    # Health + bookkeeping
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def _journal_op(self, op: str, **fields: Any) -> None:
        """Journal one op, stamped with a wall clock and — for job
        ops — the job's trace ID, so ``repro trace-export`` can fold
        the journal into a real-time Perfetto timeline.  The journal
        module itself stays clock-free; the stamps ride as the extra
        fields readers already tolerate."""
        if self.journal is None:
            return
        job_id = fields.get("job_id")
        if isinstance(job_id, str) and "trace_id" not in fields:
            trace_id = self._trace_ids.get(job_id)
            if trace_id is not None:
                fields["trace_id"] = trace_id
        fields.setdefault("wall_s", round(time.time(), 6))
        self.journal.append(op, **fields)

    def status_summary(self) -> Dict[str, Any]:
        """In-memory job/queue/breaker overview (also in health)."""
        return {
            "jobs": {
                "known": len(self._known),
                "pending": sum(
                    1 for status in self._known.values()
                    if status == JobStatus.PENDING),
                "running": sum(
                    1 for status in self._known.values()
                    if status == JobStatus.RUNNING),
                "done": self._terminal_count(JobStatus.DONE),
                "failed": self._terminal_count(JobStatus.FAILED),
                "rejected": self._terminal_count(JobStatus.REJECTED),
            },
            "queue_depth": self.queue_depth,
            "in_flight": self._in_flight,
            "breaker": self.breaker.as_dict(),
            "journal": dict(self._journal_damage),
        }

    def _refresh_gauges(self) -> None:
        self.metrics.gauge("service.queue_depth").set(
            self.queue_depth)
        self.metrics.gauge("service.in_flight").set(self._in_flight)
        for shard in self._shards:
            shard.metrics.gauge("worker.queue_depth").set(
                shard.queue.qsize())

    def health_document(self, state: Optional[str] = None
                        ) -> Dict[str, Any]:
        """The ``repro-health/1`` document, rendered fresh.

        ``written_unix`` and ``health_period_s`` let readers detect
        staleness (a dead service stops heartbeating but the last
        snapshot stays on disk); ``http`` publishes the observability
        listener address for scrape clients like ``repro top``.
        """
        self._refresh_gauges()
        document: Dict[str, Any] = {
            "schema": HEALTH_SCHEMA,
            "state": state or ("draining" if self._draining
                               else "running"),
            "ready": (not self._draining
                      and self.breaker.state != BreakerState.OPEN),
            "written_unix": round(time.time(), 6),
            "health_period_s": self.config.health_period_s,
            **self.status_summary(),
            "metrics": self.scrape_snapshot(),
        }
        if self.http_address is not None and \
                document["state"] != "stopped":
            document["http"] = {"host": self.http_address[0],
                                "port": self.http_address[1]}
        return document

    def scrape_snapshot(self) -> Dict[str, Any]:
        """Service + per-shard registries merged into one snapshot
        (counters add, gauges last-write-wins, histograms combine)."""
        return merge_snapshots(
            [self.metrics.as_dict()]
            + [shard.metrics.as_dict() for shard in self._shards])

    def metrics_text(self) -> str:
        """The ``/metrics`` body: the service registry unlabelled plus
        every shard registry labelled ``shard="N"``, one exposition
        family per metric name."""
        self._refresh_gauges()
        groups: list = [(self.metrics.as_dict(), None)]
        groups.extend(
            (shard.metrics.as_dict(), {"shard": str(shard.index)})
            for shard in self._shards)
        return render_groups(groups)

    def _write_health(self, state: Optional[str] = None) -> None:
        atomic_write_json(self.paths.health_path,
                          self.health_document(state))


# ----------------------------------------------------------------------
# Offline status (CLI `repro status` — no running service needed)
# ----------------------------------------------------------------------
def service_status(state_dir: PathLike) -> Dict[str, Any]:
    """Status assembled from the state directory alone.

    Job states derive from the durable artifacts: a result file is
    terminal, a checkpoint without a result is ``parked``, a job file
    with neither is ``pending``.  The latest ``health.json`` snapshot
    (if any) rides along — it may be stale if no service is running.
    """
    paths = ServicePaths(state_dir)
    if not paths.state_dir.is_dir():
        raise ServiceError(
            f"state directory {paths.state_dir} does not exist",
            context={"subsystem": "service",
                     "path": str(paths.state_dir)})
    jobs: Dict[str, Dict[str, Any]] = {}
    for path in paths.list_jobs():
        job_id = path.stem
        entry: Dict[str, Any] = {"job_id": job_id}
        result = load_result(paths, job_id)
        if result is not None:
            entry["status"] = result["status"]
            failure = result.get("failure")
            if isinstance(failure, dict):
                entry["error_type"] = failure.get("error_type")
        elif paths.checkpoint_path(job_id).exists():
            entry["status"] = "parked"
        else:
            entry["status"] = JobStatus.PENDING
        jobs[job_id] = entry
    health: Optional[Dict[str, Any]] = None
    try:
        health = json.loads(paths.health_path.read_text())
    except (OSError, ValueError):
        health = None
    health_age_s, health_stale = _health_staleness(paths, health)
    journal_state = read_journal(paths.journal_path)
    return {
        "state_dir": str(paths.state_dir),
        "jobs": [jobs[job_id] for job_id in sorted(jobs)],
        "counts": {
            status: sum(1 for entry in jobs.values()
                        if entry["status"] == status)
            for status in ("pending", "parked", "done", "failed",
                           "rejected")},
        "journal": {"records": len(journal_state.records),
                    "torn_tail": journal_state.torn_tail,
                    "bad_lines": journal_state.bad_lines},
        "health": health,
        "health_age_s": health_age_s,
        "health_stale": health_stale,
    }


def _health_staleness(paths: ServicePaths,
                      health: Optional[Dict[str, Any]],
                      now: Optional[float] = None,
                      ) -> tuple:
    """``(age_s, stale)`` for a health snapshot.

    A snapshot claiming a live state (``running``/``draining``) whose
    heartbeat is older than ``2 × health_period_s`` is *stale*: the
    service died without writing its terminal snapshot, and the state
    on disk describes the past.  ``written_unix`` is preferred;
    snapshots predating that field fall back to the file mtime.
    """
    if health is None:
        return None, False
    now = time.time() if now is None else now
    written = health.get("written_unix")
    age_s: Optional[float] = None
    if isinstance(written, (int, float)) and not isinstance(
            written, bool):
        age_s = max(0.0, now - float(written))
    else:
        try:
            age_s = max(0.0,
                        now - paths.health_path.stat().st_mtime)
        except OSError:
            return None, False
    period = health.get("health_period_s")
    if not isinstance(period, (int, float)) or isinstance(
            period, bool) or period <= 0:
        period = 0.25
    stale = (health.get("state") != "stopped"
             and age_s > 2.0 * float(period))
    return age_s, stale


def request_drain(state_dir: PathLike) -> pathlib.Path:
    """Drop the drain marker: finish everything, then exit."""
    paths = ServicePaths(state_dir).ensure()
    marker = paths.drain_marker()
    marker.touch()
    return marker


def request_stop(state_dir: PathLike) -> pathlib.Path:
    """Drop the stop marker: park in-flight jobs and exit now."""
    paths = ServicePaths(state_dir).ensure()
    marker = paths.stop_marker()
    marker.touch()
    return marker
