"""``repro top`` — a live terminal view of a running service.

No curses, no dependencies: the console repaints the whole frame each
refresh using a single ANSI home-and-clear escape, which works in any
terminal (and degrades to append-only output with ``--no-clear``, e.g.
when piping to a file).

Data comes from the two observability surfaces the service already
maintains:

* ``health.json`` — job counts, breaker state, queue depth, and the
  observability listener's address (``http``);
* ``GET /metrics`` on that address — the merged service + per-shard
  exposition, parsed back via
  :func:`repro.telemetry.expose.parse_exposition`, from which the
  console derives per-shard throughput and span latency quantiles
  (p50/p95 via :func:`~repro.telemetry.expose.histogram_quantile`
  over the ``span.*_seconds`` buckets).

The console is read-only and degrades gracefully: a missing or stale
``health.json`` is reported as such, and an unreachable listener just
drops the metrics panel while the health panel keeps refreshing.
"""

from __future__ import annotations

import math
import pathlib
import time
from typing import Any, Dict, List, Mapping, Optional, Union

from ..errors import ServiceError
from ..telemetry.expose import histogram_quantile, parse_exposition
from .http import fetch_blocking
from .service import service_status

PathLike = Union[str, pathlib.Path]

#: ANSI: cursor home + clear screen (the whole repaint).
_CLEAR = "\x1b[H\x1b[2J"


def gather_top(state_dir: PathLike) -> Dict[str, Any]:
    """One console frame's worth of data.

    Returns ``{status, health, metrics, scrape_error}`` where
    ``metrics`` is the parsed exposition (or None when the listener is
    absent/unreachable — ``scrape_error`` then says why).
    """
    status = service_status(state_dir)
    health = status.get("health")
    metrics: Optional[Dict[str, Any]] = None
    scrape_error: Optional[str] = None
    address = health.get("http") if isinstance(health, Mapping) else None
    if isinstance(health, Mapping) and \
            health.get("state") == "stopped":
        scrape_error = "service is stopped"
        address = None
    if isinstance(address, Mapping) and not status.get("health_stale"):
        try:
            code, body = fetch_blocking(
                str(address.get("host", "127.0.0.1")),
                int(address.get("port", 0)), "/metrics",
                timeout_s=2.0)
            if code == 200:
                metrics = parse_exposition(body)
            else:
                scrape_error = f"/metrics answered HTTP {code}"
        except ServiceError as exc:
            scrape_error = str(exc)
    elif isinstance(address, Mapping):
        scrape_error = "health snapshot is stale; not scraping"
    elif scrape_error is None:
        scrape_error = "service has no observability listener"
    return {"status": status, "health": health, "metrics": metrics,
            "scrape_error": scrape_error}


def _sample(metrics: Mapping[str, Any], family: str,
            labels: Mapping[str, str] = {}) -> Optional[float]:
    fam = metrics.get(family)
    if not isinstance(fam, Mapping):
        return None
    wanted = tuple(sorted(labels.items()))
    samples: Mapping = fam.get("samples", {})
    for (name, label_items), value in samples.items():
        if name == family and label_items == wanted:
            return float(value)
    return None


def _shard_rows(metrics: Mapping[str, Any]) -> List[List[str]]:
    """Per-shard throughput rows from the ``shard``-labelled workers'
    counters."""
    shards: Dict[str, Dict[str, float]] = {}
    for family, suffix in (("repro_worker_jobs_done_total", "done"),
                           ("repro_worker_jobs_dispatched_total",
                            "dispatched"),
                           ("repro_worker_slices_total", "slices"),
                           ("repro_worker_queue_depth", "queue")):
        fam = metrics.get(family)
        if not isinstance(fam, Mapping):
            continue
        for (_, label_items), value in fam.get("samples", {}).items():
            labels = dict(label_items)
            shard = labels.get("shard")
            if shard is not None:
                shards.setdefault(shard, {})[suffix] = float(value)
    rows = []
    for shard in sorted(shards, key=lambda s: (len(s), s)):
        data = shards[shard]
        rows.append([
            shard,
            f"{int(data.get('queue', 0))}",
            f"{int(data.get('dispatched', 0))}",
            f"{int(data.get('done', 0))}",
            f"{int(data.get('slices', 0))}",
        ])
    return rows


def _span_rows(metrics: Mapping[str, Any]) -> List[List[str]]:
    """p50/p95 rows for every ``span.*_seconds`` histogram family."""
    rows = []
    for family in sorted(metrics):
        fam = metrics[family]
        if not (isinstance(fam, Mapping)
                and fam.get("type") == "histogram"
                and family.startswith("repro_span_")):
            continue
        # Aggregate across label sets (per-shard series share edges,
        # and summing cumulative series bucket-wise stays cumulative).
        bucket_totals: Dict[float, float] = {}
        count = 0.0
        for (name, label_items), value in fam.get("samples",
                                                  {}).items():
            labels = dict(label_items)
            if name == family + "_bucket" and "le" in labels:
                le = labels["le"]
                edge = math.inf if le == "+Inf" else float(le)
                bucket_totals[edge] = (bucket_totals.get(edge, 0.0)
                                       + float(value))
            elif name == family + "_count":
                count += float(value)
        if not bucket_totals or count == 0:
            continue
        buckets = sorted(bucket_totals.items())
        # The +Inf bucket is always last; the diffs of the cumulative
        # series recover per-bucket counts (len == finite edges + 1).
        edges = [edge for edge, _ in buckets if not math.isinf(edge)]
        cumulative = [v for _, v in buckets]
        counts = [cumulative[0]] + [
            b - a for a, b in zip(cumulative, cumulative[1:])]
        p50 = histogram_quantile(edges, counts, 0.50)
        p95 = histogram_quantile(edges, counts, 0.95)
        short = family[len("repro_span_"):]
        rows.append([short, f"{int(count)}",
                     f"{p50 * 1e3:.3f}", f"{p95 * 1e3:.3f}"])
    return rows


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i])
                       for i, h in enumerate(headers))]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return lines


def render_top(snapshot: Mapping[str, Any]) -> str:
    """One console frame as plain text (no escape codes)."""
    status = snapshot["status"]
    health = snapshot.get("health") or {}
    metrics = snapshot.get("metrics")
    counts = status["counts"]
    lines: List[str] = []
    state = health.get("state", "unknown")
    if status.get("health_stale"):
        age = status.get("health_age_s")
        state = (f"STALE (last reported {state!r}"
                 + (f", {age:.1f}s ago" if age is not None else "")
                 + ")")
    breaker = (health.get("breaker") or {}).get("state", "unknown")
    lines.append(f"repro top — {status['state_dir']}")
    lines.append(f"state: {state}   ready: {health.get('ready')}   "
                 f"breaker: {breaker}")
    jobs = health.get("jobs") or {}
    lines.append(
        f"jobs:  {counts['done']} done  {counts['failed']} failed  "
        f"{counts['rejected']} rejected  {counts['parked']} parked  "
        f"{counts['pending']} pending")
    lines.append(
        f"live:  queue_depth={health.get('queue_depth', '?')}  "
        f"in_flight={health.get('in_flight', '?')}  "
        f"running={jobs.get('running', '?')}")
    if metrics is not None:
        shard_rows = _shard_rows(metrics)
        if shard_rows:
            lines.append("")
            lines.append("per-shard throughput:")
            lines.extend("  " + line for line in _table(
                ["shard", "queue", "dispatched", "done", "slices"],
                shard_rows))
        span_rows = _span_rows(metrics)
        if span_rows:
            lines.append("")
            lines.append("span latency (ms):")
            lines.extend("  " + line for line in _table(
                ["span", "count", "p50", "p95"], span_rows))
    elif snapshot.get("scrape_error"):
        lines.append("")
        lines.append(f"metrics: unavailable "
                     f"({snapshot['scrape_error']})")
    return "\n".join(lines) + "\n"


def run_top(state_dir: PathLike, interval_s: float = 1.0,
            iterations: Optional[int] = None, clear: bool = True,
            out: Any = None) -> int:
    """The ``repro top`` loop.

    ``iterations`` bounds the refresh count (None: until interrupted)
    — tests and scripting pass a small number.  Returns 0; Ctrl-C
    exits cleanly.
    """
    import sys

    stream = out if out is not None else sys.stdout
    if interval_s <= 0:
        raise ServiceError(
            f"interval must be > 0, got {interval_s}",
            context={"subsystem": "service", "component": "console"})
    remaining = iterations
    try:
        while remaining is None or remaining > 0:
            frame = render_top(gather_top(state_dir))
            if clear:
                stream.write(_CLEAR)
            stream.write(frame)
            stream.flush()
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0


__all__ = ["gather_top", "render_top", "run_top"]
