"""The append-only operations journal: crash-tolerant by design.

Every interesting service transition — job ingested, attempt started,
checkpoint written, job done/failed, recovery notes — appends one JSON
line.  Appends are flushed and fsynced, so a crash can tear at most
the final line; :func:`read_journal` (built on the tolerant
:func:`repro.ioutil.read_jsonl`) counts torn tails and corrupt lines
instead of failing, because the journal is an *audit log*: correctness
lives in the write-once results directory
(:mod:`repro.service.jobs`), never here.

Record shape::

    {"op": "job_done", "job_id": "...", "seq": 17, ...}

``seq`` increases monotonically within one journal; extra fields are
operation-specific.  No wall-clock timestamps by default — callers that
want them pass ``wall_time_s`` explicitly, keeping deterministic tests
byte-stable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..errors import JournalError
from ..ioutil import JsonlReadResult, append_jsonl_line, read_jsonl

PathLike = Union[str, pathlib.Path]

#: Known operation names (informational; unknown ops are tolerated on
#: read so newer journals remain readable by older code).
KNOWN_OPS = (
    "service_start", "service_stop",
    "job_ingested", "job_rejected",
    "attempt_start", "attempt_failed",
    "checkpoint_written", "checkpoint_invalid",
    "job_parked", "job_resumed", "job_done", "job_failed",
    "recovery", "breaker_open", "breaker_closed",
)


class Journal:
    """Appender over one journal file.

    Keeps the file handle open across appends (one open per service
    lifetime, not per record) and fsyncs each line.  Opening heals a
    torn tail left by a prior crash (terminates the unterminated final
    line) so new records never weld onto torn garbage.  Not
    thread-safe — the service serializes appends on the event loop.
    """

    def __init__(self, path: PathLike, *, fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self._fsync = fsync
        _heal_torn_tail(self.path)
        self._seq = _next_seq(self.path)
        try:
            self._handle: Optional[Any] = self.path.open("a")
        except OSError as exc:
            raise JournalError(
                f"cannot open journal {self.path}: {exc}",
                context={"subsystem": "service",
                         "path": str(self.path)}) from None

    @property
    def seq(self) -> int:
        """Sequence number the next append will carry."""
        return self._seq

    def append(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns it (with ``seq`` filled in)."""
        if self._handle is None:
            raise JournalError(
                f"journal {self.path} is closed",
                context={"subsystem": "service",
                         "path": str(self.path), "op": op})
        if op not in KNOWN_OPS:
            raise JournalError(
                f"unknown journal op {op!r}; known: {KNOWN_OPS}",
                context={"subsystem": "service",
                         "path": str(self.path), "op": op})
        record: Dict[str, Any] = {"op": op, "seq": self._seq, **fields}
        try:
            append_jsonl_line(self._handle, record, fsync=self._fsync)
        except OSError as exc:
            raise JournalError(
                f"cannot append to journal {self.path}: {exc}",
                context={"subsystem": "service",
                         "path": str(self.path), "op": op}) from None
        self._seq += 1
        return record

    def close(self) -> None:
        """Close the handle; further appends raise."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class JournalState:
    """What a journal read reveals about past service activity."""

    #: Decoded records, file order.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Raw read damage report from the tolerant reader.
    damage: JsonlReadResult = field(default_factory=JsonlReadResult)

    @property
    def torn_tail(self) -> bool:
        return self.damage.torn_tail

    @property
    def bad_lines(self) -> int:
        return self.damage.bad_lines

    def ops_for(self, job_id: str) -> List[Dict[str, Any]]:
        """Records mentioning one job, file order."""
        return [record for record in self.records
                if record.get("job_id") == job_id]

    def count(self, op: str,
              job_id: Optional[str] = None) -> int:
        """How many records carry ``op`` (optionally for one job)."""
        return sum(1 for record in self.records
                   if record.get("op") == op
                   and (job_id is None
                        or record.get("job_id") == job_id))


def read_journal(path: PathLike) -> JournalState:
    """Tolerantly read a journal file.

    Records that decode but are not objects (a JSON number on its own
    line, say) count as corrupt rather than raising — the journal is
    diagnostics, and recovery must proceed through any damage.
    """
    raw = read_jsonl(path)
    state = JournalState(damage=raw)
    for record in raw.records:
        if isinstance(record, dict) and isinstance(
                record.get("op"), str):
            state.records.append(record)
        else:
            state.damage.bad_lines += 1
    return state


def _heal_torn_tail(path: pathlib.Path) -> bool:
    """Terminate an unterminated final line before appending resumes.

    A crash can leave the journal's last line torn mid-record with no
    trailing newline.  Appending straight onto that tail would weld the
    next record to the garbage, losing *two* records to one torn write;
    writing a newline first caps the damage at the torn line itself.
    Returns True if a newline was added.
    """
    try:
        with path.open("rb+") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size == 0:
                return False
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return False
            handle.write(b"\n")
            return True
    except OSError:
        return False


def _next_seq(path: pathlib.Path) -> int:
    """1 + the highest ``seq`` already journaled (0 for a fresh file)."""
    state = read_journal(path)
    highest = -1
    for record in state.records:
        seq = record.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            highest = max(highest, seq)
    return highest + 1
