"""A minimal asyncio HTTP/1.0 listener for the observability plane.

``repro serve`` answers three read-only endpoints while jobs run:

* ``GET /metrics`` — Prometheus text exposition v0.0.4 of the merged
  service + per-shard registries (:mod:`repro.telemetry.expose`);
* ``GET /healthz`` — the same JSON document ``health.json`` carries,
  but fresh (rendered at request time, not at the last heartbeat);
* ``GET /readyz`` — 200 while accepting work, 503 while draining or
  stopped, for load-balancer-style gating.

The listener is deliberately tiny: stdlib ``asyncio.start_server``,
one short-lived connection per request, ``Connection: close``.  It
shares the service's event loop, so a scrape costs one callback
invocation between job slices — the simulation itself never observes
it (callbacks only *read* registries, and registries are not part of
the deterministic state digest).

Binding defaults to ``127.0.0.1`` and port 0 (ephemeral); the bound
address is published in ``health.json`` so clients (``repro top``, the
chaos harness) can discover it without configuration.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, Optional, Tuple

from ..errors import ServiceError
from ..telemetry.expose import CONTENT_TYPE as METRICS_CONTENT_TYPE

#: Seconds a single request may take to arrive before the connection
#: is dropped; scrapes are tiny, so this only guards held-open sockets.
REQUEST_TIMEOUT_S = 5.0

_MAX_REQUEST_BYTES = 16384


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz`` and ``/readyz`` callbacks."""

    def __init__(self, *,
                 metrics_text: Callable[[], str],
                 health_document: Callable[[], dict],
                 ready: Callable[[], bool],
                 host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._metrics_text = metrics_text
        self._health_document = health_document
        self._ready = ready
        self._requested_host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: ``(host, port)`` actually bound, set by :meth:`start`.
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        try:
            self._server = await asyncio.start_server(
                self._handle, host=self._requested_host,
                port=self._requested_port)
        except OSError as exc:
            raise ServiceError(
                f"cannot bind observability listener on "
                f"{self._requested_host}:{self._requested_port}: {exc}",
                context={"subsystem": "service",
                         "component": "http"}) from None
        sockets = self._server.sockets or []
        if not sockets:
            raise ServiceError(
                "observability listener bound no sockets",
                context={"subsystem": "service", "component": "http"})
        name = sockets[0].getsockname()
        self.address = (str(name[0]), int(name[1]))
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close; idempotent."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------

    def _respond(self, status: int, reason: str, content_type: str,
                 body: str) -> bytes:
        payload = body.encode("utf-8")
        head = (f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        return head.encode("ascii") + payload

    def _route(self, method: str, path: str) -> bytes:
        if method != "GET":
            return self._respond(405, "Method Not Allowed",
                                 "text/plain; charset=utf-8",
                                 "only GET is supported\n")
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return self._respond(200, "OK", METRICS_CONTENT_TYPE,
                                 self._metrics_text())
        if path == "/healthz":
            document = self._health_document()
            return self._respond(
                200, "OK", "application/json; charset=utf-8",
                json.dumps(document, sort_keys=True) + "\n")
        if path == "/readyz":
            if self._ready():
                return self._respond(200, "OK",
                                     "application/json; charset=utf-8",
                                     '{"ready": true}\n')
            return self._respond(503, "Service Unavailable",
                                 "application/json; charset=utf-8",
                                 '{"ready": false}\n')
        return self._respond(404, "Not Found",
                             "text/plain; charset=utf-8",
                             f"no route for {path}\n")

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=REQUEST_TIMEOUT_S)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                response = self._respond(
                    400, "Bad Request", "text/plain; charset=utf-8",
                    "malformed request line\n")
            else:
                # Drain headers (bounded) so clients see a clean close.
                consumed = len(request_line)
                while consumed < _MAX_REQUEST_BYTES:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=REQUEST_TIMEOUT_S)
                    consumed += len(line)
                    if line in (b"\r\n", b"\n", b""):
                        break
                try:
                    response = self._route(parts[0], parts[1])
                except Exception as exc:  # noqa: BLE001 — keep serving
                    response = self._respond(
                        500, "Internal Server Error",
                        "text/plain; charset=utf-8",
                        f"handler failed: {exc}\n")
            writer.write(response)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # client went away; nothing to salvage
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass


async def fetch(host: str, port: int, path: str,
                timeout_s: float = 5.0) -> Tuple[int, Dict[str, str], str]:
    """Tiny asyncio HTTP GET helper (tests and the chaos harness use
    it; ``repro top`` uses the blocking stdlib client instead).

    Returns ``(status, headers, body)``.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout_s)
    try:
        writer.write((f"GET {path} HTTP/1.0\r\n"
                      f"Host: {host}\r\n\r\n").encode("ascii"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout_s)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split()[1])
    except (IndexError, ValueError):
        raise ServiceError(
            f"malformed HTTP response from {host}:{port}{path}",
            context={"subsystem": "service",
                     "component": "http"}) from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name:
            headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8", errors="replace")


def fetch_blocking(host: str, port: int, path: str,
                   timeout_s: float = 5.0) -> Tuple[int, str]:
    """Blocking GET via ``urllib`` for synchronous callers
    (``repro top``).  Returns ``(status, body)``; non-2xx statuses are
    returned, not raised."""
    import urllib.error
    import urllib.request

    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as reply:
            return reply.status, reply.read().decode(
                "utf-8", errors="replace")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", errors="replace")
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(
            f"cannot reach {url}: {exc}",
            context={"subsystem": "service",
                     "component": "http"}) from None


__all__ = [
    "ObservabilityServer",
    "REQUEST_TIMEOUT_S",
    "fetch",
    "fetch_blocking",
]

# Callable alias kept for documentation clarity.
HealthCallback = Callable[[], Awaitable[dict]]
