"""Chaos harness: crash the session service on purpose, check it heals.

Each scenario runs a real ``repro serve`` subprocess against a scratch
state directory, injures it in a specific way, restarts it, and then
verifies three things:

* **liveness** — every submitted job reaches a terminal result within a
  hard wall-clock budget (the harness never hangs: every wait is
  bounded, and a timeout is itself a structured failure);
* **correctness** — each completed job's summary is byte-identical to
  the summary an uninterrupted in-process :func:`run_session` of the
  same spec produces;
* **idempotence** — the journal records at most one ``job_done`` per
  job across all service incarnations (results are write-once, so a
  crash-restart must not repeat side effects).

Scenarios (:data:`CHAOS_SCENARIOS`):

``kill``
    SIGKILL the service once the first checkpoint lands, restart it,
    and require every job — including a ``trace:<path>`` replay job and
    a fault-injected job — to finish with the correct summary.
``corrupt_checkpoint``
    Same kill, but every on-disk checkpoint is then corrupted
    (truncation, garbage bytes, or a digest flip, rotating
    deterministically by seed).  The restarted service must detect
    each bad checkpoint (``checkpoint_invalid`` in the journal),
    restart those jobs from scratch, and still produce correct
    summaries — never silently resume from a lie.
``truncate_journal``
    Same kill, then the journal tail is torn mid-record.  The restart
    must tolerate the damage (recording a ``recovery`` note) and
    complete every job.

The harness is exposed as ``repro chaos`` in the CLI and doubles as the
CI service smoke test.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ServiceError, TelemetryError
from ..faults.plan import FaultPlan
from ..pipeline.spec import SessionSpec
from ..sim.batch import summarize_result
from ..sim.session import SessionConfig, run_session
from ..telemetry.expose import parse_exposition
from ..telemetry.tracing import journal_trace_events
from .http import fetch_blocking
from .jobs import JobRequest, JobStatus, ServicePaths, load_result
from .journal import JournalState, read_journal
from .service import submit_job

PathLike = Union[str, pathlib.Path]

#: Scenario names, in the order ``run_chaos`` executes them.
CHAOS_SCENARIOS: Tuple[str, ...] = (
    "kill", "corrupt_checkpoint", "truncate_journal")

#: How a checkpoint gets damaged in ``corrupt_checkpoint`` (one mode
#: per checkpoint file, rotating deterministically).
_CORRUPTION_MODES: Tuple[str, ...] = ("truncate", "garbage", "digest")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one :func:`run_chaos` campaign.

    ``state_dir`` is the scratch *root*; each scenario gets its own
    subdirectory under it.  When None a temporary directory is created
    and removed again unless a scenario fails (failed state is kept
    for post-mortem and its path reported).
    """

    state_dir: Optional[str] = None
    jobs: int = 3
    duration_s: float = 20.0
    seed: int = 0
    scenarios: Sequence[str] = CHAOS_SCENARIOS
    #: Wall-clock pause between sim slices inside the service — paces
    #: execution so the kill lands mid-job instead of after the fact.
    slice_sleep_s: float = 0.05
    #: Sim seconds between service checkpoints.
    checkpoint_period_s: float = 2.0
    #: Hard budget for each service incarnation to drain all jobs.
    serve_timeout_s: float = 120.0
    #: Hard budget for the first checkpoint to appear before the kill.
    kill_wait_s: float = 60.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ServiceError(
                f"chaos needs at least 1 job, got {self.jobs}",
                context={"subsystem": "chaos"})
        if self.duration_s <= 0:
            raise ServiceError(
                f"duration_s must be positive, got {self.duration_s}",
                context={"subsystem": "chaos"})
        unknown = [s for s in self.scenarios if s not in CHAOS_SCENARIOS]
        if unknown:
            raise ServiceError(
                f"unknown chaos scenario(s) {unknown}; "
                f"choices: {CHAOS_SCENARIOS}",
                context={"subsystem": "chaos"})
        if not self.scenarios:
            raise ServiceError("no chaos scenarios selected",
                               context={"subsystem": "chaos"})


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------

_CHAOS_APPS = ("Jelly Splash", "Daum", "Auction")


def _build_specs(scenario_dir: pathlib.Path,
                 config: ChaosConfig) -> List[Tuple[str, SessionSpec]]:
    """The job mix for one scenario: plain specs, a faulted spec, and
    a ``trace:<path>`` replay job.

    Returns ``(job_id, spec)`` pairs.  Every spec is deterministic and
    untelemetered, so its summary can be recomputed in-process for the
    byte-identity check.
    """
    specs: List[Tuple[str, SessionSpec]] = []
    for index in range(config.jobs):
        app = _CHAOS_APPS[index % len(_CHAOS_APPS)]
        cfg = SessionConfig(app=app, governor="section+boost",
                            duration_s=config.duration_s,
                            seed=config.seed + index)
        specs.append((f"chaos-spec-{index}", SessionSpec.from_config(cfg)))
    # One job that exercises repro.faults under the service.
    faulted = SessionConfig(
        app=_CHAOS_APPS[0], governor="section+boost",
        duration_s=config.duration_s, seed=config.seed,
        faults=FaultPlan.parse(
            "panel_refuse=0.05,touch_drop=0.1", seed=config.seed))
    specs.append(("chaos-faulted", SessionSpec.from_config(faulted)))
    # One trace-replay job: record a synthetic trace next to the state
    # dir and submit a spec whose app is the trace:<path> scheme.
    from ..traces.format import save_trace
    from ..traces.synth import synthetic_trace
    trace_path = scenario_dir / "chaos.trace"
    save_trace(synthetic_trace("scroll",
                               duration_s=min(config.duration_s, 10.0),
                               seed=config.seed),
               trace_path)
    traced = SessionConfig(app=f"trace:{trace_path}",
                           governor="section+boost",
                           duration_s=min(config.duration_s, 10.0),
                           seed=config.seed)
    specs.append(("chaos-trace", SessionSpec.from_config(traced)))
    return specs


def _submit_all(state_dir: pathlib.Path,
                specs: Sequence[Tuple[str, SessionSpec]]) -> None:
    for seq, (job_id, spec) in enumerate(specs):
        submit_job(state_dir, JobRequest(
            job_id=job_id, spec=spec.to_json_dict(),
            deadline_s=None, submitted_seq=seq))


def _expected_summary(spec: SessionSpec) -> str:
    """The canonical summary JSON an uninterrupted run produces."""
    from ..analysis.export import json_sanitize
    summary = json_sanitize(summarize_result(run_session(spec.to_config())))
    return json.dumps(summary, sort_keys=True)


# ----------------------------------------------------------------------
# Service process control
# ----------------------------------------------------------------------

def _spawn_serve(state_dir: pathlib.Path, config: ChaosConfig,
                 log_path: pathlib.Path) -> "subprocess.Popen[bytes]":
    """Start ``repro serve --until-idle`` against ``state_dir``.

    Output goes to ``log_path`` (appended across incarnations) so a
    failing scenario leaves the service's own account behind.
    """
    src_dir = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(src_dir) if not existing
                         else str(src_dir) + os.pathsep + existing)
    command = [sys.executable, "-m", "repro", "serve",
               "--state-dir", str(state_dir),
               "--workers", "2",
               "--until-idle",
               "--http", "0",
               "--slice-sleep", str(config.slice_sleep_s),
               "--checkpoint-period", str(config.checkpoint_period_s),
               "--max-runtime", str(config.serve_timeout_s)]
    with log_path.open("ab") as log:
        return subprocess.Popen(command, stdout=log,
                                stderr=subprocess.STDOUT, env=env)


def _wait_until(predicate, timeout_s: float,
                poll_s: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return bool(predicate())


def _end_process(proc: "subprocess.Popen[bytes]") -> None:
    """Make sure a service process is gone (kill, bounded wait)."""
    if proc.poll() is None:
        proc.kill()
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        pass


def _kill_after_first_checkpoint(
        proc: "subprocess.Popen[bytes]", paths: ServicePaths,
        config: ChaosConfig) -> Optional[str]:
    """SIGKILL the service once a checkpoint exists.

    Returns an error detail string on failure, None on success.  If
    the service drains everything before a checkpoint appears the kill
    still happens (against a finished process this is a no-op) and the
    restart phase degrades to an idempotence check — that is recorded
    as success, not failure.
    """
    def checkpoint_or_exit() -> bool:
        if proc.poll() is not None:
            return True
        return any(paths.checkpoints_dir.glob("*.json"))

    if not _wait_until(checkpoint_or_exit, config.kill_wait_s):
        _end_process(proc)
        return (f"no checkpoint appeared within {config.kill_wait_s}s "
                f"and the service did not exit")
    if proc.poll() is None:
        os.kill(proc.pid, signal.SIGKILL)
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        return "service survived SIGKILL for 10s"
    return None


def _log_tail(log_path: pathlib.Path, lines: int = 12) -> str:
    try:
        text = log_path.read_text(errors="replace")
    except OSError:
        return "<no service log>"
    return " | ".join(text.strip().splitlines()[-lines:])


# ----------------------------------------------------------------------
# Damage injection
# ----------------------------------------------------------------------

def corrupt_checkpoint(path: PathLike, mode: str, seed: int = 0) -> None:
    """Damage a checkpoint file in place.

    ``truncate`` keeps the first half of the bytes (torn write),
    ``garbage`` overwrites the middle with seeded noise (bit rot), and
    ``digest`` rewrites the JSON with a flipped state digest (the
    subtle case: structurally valid, semantically a lie).
    """
    target = pathlib.Path(path)
    data = target.read_bytes()
    if mode == "truncate":
        target.write_bytes(data[:max(1, len(data) // 2)])
    elif mode == "garbage":
        import random
        rng = random.Random(seed)
        noise = bytes(rng.randrange(256) for _ in range(32))
        middle = len(data) // 2
        target.write_bytes(data[:middle] + noise + data[middle + 32:])
    elif mode == "digest":
        document = json.loads(data.decode("utf-8"))
        digest = document.get("digest", "")
        flipped = digest[:-8] + ("0" * 8 if not digest.endswith("0" * 8)
                                 else "f" * 8)
        document["digest"] = flipped
        target.write_bytes(json.dumps(document).encode("utf-8"))
    else:
        raise ServiceError(
            f"unknown corruption mode {mode!r}; "
            f"choices: {_CORRUPTION_MODES}",
            context={"subsystem": "chaos"})


def truncate_journal_tail(path: PathLike, cut_bytes: int = 7) -> bool:
    """Tear the journal's last record mid-line (simulated torn write).

    Returns True if the file was actually shortened.
    """
    target = pathlib.Path(path)
    try:
        data = target.read_bytes()
    except FileNotFoundError:
        return False
    if len(data) <= cut_bytes:
        return False
    target.write_bytes(data[:-cut_bytes])
    return True


# ----------------------------------------------------------------------
# Mid-run observability scrape
# ----------------------------------------------------------------------

def _scrape_live_metrics(paths: ServicePaths,
                         proc: "subprocess.Popen[bytes]",
                         timeout_s: float
                         ) -> Tuple[Optional[Dict[str, Any]],
                                    Optional[str]]:
    """Scrape ``/metrics`` from a live service incarnation.

    Polls ``health.json`` for the listener address the service
    publishes, fetches the exposition, and *parses it back* — a scrape
    succeeds only if the output is well-formed v0.0.4 text.  Returns
    ``({"families": N, "jobs_done": v}, None)`` on success or
    ``(None, why)`` on failure (including malformed exposition, which
    is the whole point of parsing).
    """
    deadline = time.monotonic() + timeout_s
    last_error = "no health snapshot with a listener address appeared"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return None, (f"service exited before a scrape succeeded "
                          f"({last_error})")
        try:
            health = json.loads(paths.health_path.read_text())
        except (OSError, ValueError):
            time.sleep(0.05)
            continue
        address = health.get("http")
        if not isinstance(address, dict):
            time.sleep(0.05)
            continue
        try:
            code, body = fetch_blocking(
                str(address.get("host", "127.0.0.1")),
                int(address.get("port", 0)), "/metrics",
                timeout_s=2.0)
        except ServiceError as exc:
            last_error = str(exc)
            time.sleep(0.05)
            continue
        if code != 200:
            last_error = f"/metrics answered HTTP {code}"
            time.sleep(0.05)
            continue
        try:
            families = parse_exposition(body)
        except TelemetryError as exc:
            return None, f"mid-run /metrics output malformed: {exc}"
        done = 0.0
        family = families.get("repro_service_jobs_done_total")
        if isinstance(family, dict):
            done = float(family["samples"].get(
                ("repro_service_jobs_done_total", ()), 0.0))
        return {"families": len(families), "jobs_done": done}, None
    return None, last_error


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------

def _verify_tracing(journal: JournalState,
                    specs: Sequence[Tuple[str, SessionSpec]]
                    ) -> List[str]:
    """Trace-continuity postconditions across process generations.

    Every journal record of one job must carry the *same* trace ID in
    every service incarnation (the deterministic minting guarantees
    it), and the journal must fold into a Chrome trace with at least
    one duration slice per job — the "one contiguous Perfetto
    timeline" property, asserted mechanically.
    """
    problems: List[str] = []
    starts = journal.count("service_start")
    if starts < 2:
        problems.append(
            f"expected >= 2 service generations in the journal, "
            f"found {starts}")
    for job_id, _ in specs:
        trace_ids = {record["trace_id"]
                     for record in journal.ops_for(job_id)
                     if isinstance(record.get("trace_id"), str)}
        if len(trace_ids) != 1:
            problems.append(
                f"{job_id}: expected exactly one trace id across "
                f"generations, found {sorted(trace_ids)}")
    events = journal_trace_events(journal.records)
    sliced = {event["args"].get("job_id")
              for event in events
              if event.get("ph") == "X"
              and isinstance(event.get("args"), dict)}
    for job_id, _ in specs:
        if job_id not in sliced:
            problems.append(
                f"{job_id}: trace export produced no duration slice")
    return problems


def _verify_outcomes(paths: ServicePaths,
                     specs: Sequence[Tuple[str, SessionSpec]]
                     ) -> List[str]:
    """Check results, summaries, and journal idempotence.

    Returns a list of problem strings (empty means the scenario's
    universal postconditions hold).
    """
    problems: List[str] = []
    journal = read_journal(paths.journal_path)
    for job_id, spec in specs:
        try:
            result = load_result(paths, job_id)
        except ServiceError as exc:
            problems.append(f"{job_id}: unreadable result ({exc})")
            continue
        if result is None:
            problems.append(f"{job_id}: no terminal result")
            continue
        if result.get("status") != JobStatus.DONE:
            problems.append(
                f"{job_id}: status {result.get('status')!r}, "
                f"failure={result.get('failure', {}).get('error_type')}")
            continue
        got = json.dumps(result.get("summary"), sort_keys=True)
        if got != _expected_summary(spec):
            problems.append(
                f"{job_id}: summary differs from uninterrupted run")
        done_records = journal.count("job_done", job_id=job_id)
        if done_records > 1:
            problems.append(
                f"{job_id}: {done_records} job_done journal "
                f"records (duplicate side effects)")
    return problems


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def _run_scenario(name: str, root: pathlib.Path,
                  config: ChaosConfig) -> Dict[str, Any]:
    scenario_dir = root / name
    state_dir = scenario_dir / "state"
    state_dir.mkdir(parents=True, exist_ok=True)
    log_path = scenario_dir / "serve.log"
    paths = ServicePaths(state_dir)

    specs = _build_specs(scenario_dir, config)
    _submit_all(state_dir, specs)

    # Phase 1: run, scrape /metrics while jobs are in flight, then
    # SIGKILL once checkpoint state exists.
    proc = _spawn_serve(state_dir, config, log_path)
    try:
        scrape, scrape_error = _scrape_live_metrics(
            paths, proc, config.kill_wait_s)
        error = _kill_after_first_checkpoint(proc, paths, config)
    finally:
        _end_process(proc)
    if error is None and scrape is None:
        error = f"mid-run /metrics scrape failed: {scrape_error}"
    if error is not None:
        return {"name": name, "ok": False,
                "detail": f"{error}; log: {_log_tail(log_path)}",
                "state_dir": str(state_dir)}

    # Phase 2: injure the on-disk state (scenario-specific).
    detail_bits: List[str] = []
    if name == "corrupt_checkpoint":
        checkpoints = sorted(paths.checkpoints_dir.glob("*.json"))
        for index, checkpoint in enumerate(checkpoints):
            mode = _CORRUPTION_MODES[
                (config.seed + index) % len(_CORRUPTION_MODES)]
            corrupt_checkpoint(checkpoint, mode, seed=config.seed + index)
            detail_bits.append(f"{checkpoint.name}:{mode}")
        if not checkpoints:
            return {"name": name, "ok": False,
                    "detail": "kill landed but no checkpoint survived "
                              "to corrupt",
                    "state_dir": str(state_dir)}
    elif name == "truncate_journal":
        if not truncate_journal_tail(paths.journal_path):
            return {"name": name, "ok": False,
                    "detail": "journal too small to tear",
                    "state_dir": str(state_dir)}
        detail_bits.append("journal tail torn")

    # Phase 3: restart and let the service drain everything.  A
    # best-effort second scrape mid-drain feeds the counter
    # monotonicity check (recovery seeds the durable counters, so the
    # restarted incarnation must never report fewer jobs_done than the
    # one that was killed).
    proc = _spawn_serve(state_dir, config, log_path)
    try:
        rescrape, _ = _scrape_live_metrics(paths, proc, 10.0)
        finished = _wait_until(lambda: proc.poll() is not None,
                               config.serve_timeout_s + 15.0,
                               poll_s=0.2)
    finally:
        _end_process(proc)
    if not finished:
        return {"name": name, "ok": False,
                "detail": f"restarted service did not drain within "
                          f"{config.serve_timeout_s + 15.0}s; "
                          f"log: {_log_tail(log_path)}",
                "state_dir": str(state_dir)}
    if proc.returncode != 0:
        return {"name": name, "ok": False,
                "detail": f"restarted service exited {proc.returncode}; "
                          f"log: {_log_tail(log_path)}",
                "state_dir": str(state_dir)}

    # Phase 4: universal postconditions + scenario-specific evidence.
    problems = _verify_outcomes(paths, specs)
    journal = read_journal(paths.journal_path)
    problems.extend(_verify_tracing(journal, specs))
    done = sum(1 for job_id, _ in specs
               if (load_result(paths, job_id) or {}).get("status")
               == JobStatus.DONE)
    if scrape is not None:
        detail_bits.append(
            f"scraped {scrape['families']} metric families mid-run")
        if rescrape is not None:
            if rescrape["jobs_done"] < scrape["jobs_done"]:
                problems.append(
                    f"jobs_done counter went backwards across "
                    f"kill/resume: {scrape['jobs_done']:g} -> "
                    f"{rescrape['jobs_done']:g}")
            else:
                detail_bits.append(
                    f"jobs_done {scrape['jobs_done']:g}->"
                    f"{rescrape['jobs_done']:g} across kill/resume")
        elif done < scrape["jobs_done"]:
            # No live rescrape (the restart drained too fast); the
            # durable results are the counter's floor.
            problems.append(
                f"only {done} durable done result(s) but the killed "
                f"incarnation already reported "
                f"{scrape['jobs_done']:g} jobs_done")
    if name == "corrupt_checkpoint":
        invalid = journal.count("checkpoint_invalid")
        if not invalid:
            problems.append(
                "no checkpoint_invalid journal record — corruption "
                "went undetected")
        else:
            detail_bits.append(
                f"{invalid} checkpoint(s) rejected")
    elif name == "truncate_journal":
        recoveries = journal.count("recovery")
        if not recoveries and not journal.damage.damaged:
            problems.append(
                "torn journal left no recovery record and no "
                "detected damage")
        else:
            detail_bits.append(
                f"damage detected (bad_lines={journal.damage.bad_lines}, "
                f"torn_tail={journal.damage.torn_tail})")
    if problems:
        return {"name": name, "ok": False,
                "detail": "; ".join(problems),
                "state_dir": str(state_dir)}
    detail = (f"{done}/{len(specs)} jobs correct after crash-restart"
              + (f" ({', '.join(detail_bits)})" if detail_bits else ""))
    return {"name": name, "ok": True, "detail": detail,
            "state_dir": str(state_dir)}


def run_chaos(config: ChaosConfig) -> Dict[str, Any]:
    """Run the selected scenarios; never hangs, never raises on a
    scenario failure — failures come back as structured records.

    The report: ``{"schema", "scenarios": [{name, ok, detail,
    state_dir}], "passed", "total", "ok"}``.
    """
    if config.state_dir is not None:
        root = pathlib.Path(config.state_dir)
        root.mkdir(parents=True, exist_ok=True)
        owns_root = False
    else:
        root = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        owns_root = True

    scenarios: List[Dict[str, Any]] = []
    for name in config.scenarios:
        try:
            scenarios.append(_run_scenario(name, root, config))
        except Exception as exc:  # noqa: BLE001 - harness must not die
            scenarios.append({
                "name": name, "ok": False,
                "detail": f"harness error: "
                          f"{exc.__class__.__name__}: {exc}",
                "state_dir": str(root / name / "state")})
    passed = sum(1 for s in scenarios if s["ok"])
    report = {"schema": "repro-chaos/1",
              "scenarios": scenarios,
              "passed": passed,
              "total": len(scenarios),
              "ok": passed == len(scenarios)}
    if owns_root and report["ok"]:
        shutil.rmtree(root, ignore_errors=True)
    return report
