"""Surface Manager — the compositor (SurfaceFlinger's role).

Applications *post* their surfaces whenever they finish rendering; the
compositor latches pending posts at each V-Sync and writes one combined
frame into the framebuffer.  Two properties of the real pipeline that
the paper depends on fall out of this design:

* **V-Sync limits the frame rate to the refresh rate** — however many
  times an app posts between two V-Syncs, at most one frame update
  happens per V-Sync (Section 2.1).
* **Redundant frames reach the framebuffer** — posting an unchanged
  surface still produces a frame update with byte-identical content,
  which is exactly what the content-rate meter must detect and discount
  (Section 2.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..errors import GraphicsError
from .framebuffer import Framebuffer
from .surface import Surface

#: Callback fired after each composition: ``(time, frame_was_redundant)``.
CompositionListener = Callable[[float, bool], None]


class SurfaceManager:
    """Composites posted surfaces into the framebuffer at V-Sync."""

    def __init__(self, framebuffer: Framebuffer) -> None:
        self._framebuffer = framebuffer
        self._surfaces: List[Surface] = []
        self._pending: Dict[str, Surface] = {}
        self._scratch = np.zeros(framebuffer.shape, dtype=np.uint8)
        self._previous = np.zeros(framebuffer.shape, dtype=np.uint8)
        self._compositions = 0
        self._redundant_compositions = 0
        self._listeners: List[CompositionListener] = []
        # Frame-coherence fast path (opt-in, see
        # enable_coherence_fast_path): _coherent is True while
        # _previous provably equals the framebuffer contents *and* the
        # surface stack is unchanged since the last full composite.
        self._fast_path = False
        self._coherent = False
        self._pending_dirty = False

    # ------------------------------------------------------------------
    # Surface lifecycle
    # ------------------------------------------------------------------
    def register_surface(self, surface: Surface) -> None:
        """Add a surface to the composition stack."""
        surface.check_fits(self._framebuffer.width, self._framebuffer.height)
        if any(s.name == surface.name for s in self._surfaces):
            raise GraphicsError(
                f"a surface named {surface.name!r} is already registered")
        self._surfaces.append(surface)
        self._surfaces.sort(key=lambda s: s.z_order)
        self._coherent = False

    def unregister_surface(self, surface: Surface) -> None:
        """Remove a surface from the stack."""
        try:
            self._surfaces.remove(surface)
        except ValueError:
            raise GraphicsError(
                f"surface {surface.name!r} is not registered") from None
        self._pending.pop(surface.name, None)
        self._coherent = False

    @property
    def surfaces(self) -> List[Surface]:
        """Registered surfaces in z-order (bottom first)."""
        return list(self._surfaces)

    # ------------------------------------------------------------------
    # Posting and composition
    # ------------------------------------------------------------------
    def post(self, surface: Surface,
             content_changed: bool = True) -> None:
        """Queue a surface for the next V-Sync composition.

        Posting the same surface twice in one V-Sync interval collapses
        to a single frame update — that is the V-Sync throttle.

        ``content_changed=False`` is the poster's declaration that the
        surface pixels are untouched since its last post (an idle
        repost — the paper's "redundant frame").  The declaration only
        feeds the opt-in coherence fast path, and is cross-checked
        against surface damage there; posters that cannot make it
        simply use the default.
        """
        if surface not in self._surfaces:
            raise GraphicsError(
                f"cannot post unregistered surface {surface.name!r}")
        self._pending[surface.name] = surface
        if content_changed:
            self._pending_dirty = True

    def enable_coherence_fast_path(self) -> None:
        """Opt in to skipping provably-redundant compositions.

        When every pending post declares ``content_changed=False``, no
        registered surface is damaged, and the previous full composite
        is still current, the composited frame is byte-identical to
        what the framebuffer already holds — so :meth:`on_vsync` skips
        the blit/compare/copy entirely and performs the same
        accounting.  Off by default: the scalar reference path keeps
        doing the full work so equivalence tests compare against an
        unmodified baseline.
        """
        self._fast_path = True

    @property
    def has_pending_posts(self) -> bool:
        """True if any surface is waiting for the next V-Sync."""
        return bool(self._pending)

    def on_vsync(self, time: float) -> bool:
        """Latch pending posts and composite; returns True if a frame
        update happened.

        With no pending posts the framebuffer is untouched — no frame
        update, no composition work, exactly like the real pipeline
        idling on a static screen.
        """
        if not self._pending:
            return False
        if (self._fast_path and self._coherent
                and not self._pending_dirty
                and not any(s.is_damaged for s in self._surfaces)):
            # Every pending post declared its pixels unchanged, no
            # surface mutated since the last full composite (damage
            # cross-check), and _previous still mirrors the
            # framebuffer: the blit would reproduce the previous frame
            # byte for byte.  Perform the identical accounting without
            # the pixel work.
            for surface in self._pending.values():
                surface.acknowledge_post()
            self._pending.clear()
            self._framebuffer.write_unchanged(time)
            self._compositions += 1
            self._redundant_compositions += 1
            for listener in self._listeners:
                listener(time, True)
            return True
        for surface in self._pending.values():
            surface.acknowledge_post()
        self._pending.clear()
        self._pending_dirty = False

        self._scratch[:] = 0
        for surface in self._surfaces:
            y0, x0, y1, x1 = surface.rect
            self._scratch[y0:y1, x0:x1] = surface.pixels

        redundant = bool(np.array_equal(self._scratch, self._previous))
        np.copyto(self._previous, self._scratch)
        self._framebuffer.write(self._scratch, time)
        self._coherent = True

        self._compositions += 1
        if redundant:
            self._redundant_compositions += 1
        for listener in self._listeners:
            listener(time, redundant)
        return True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def compositions(self) -> int:
        """Total frame updates performed."""
        return self._compositions

    @property
    def redundant_compositions(self) -> int:
        """Frame updates whose pixels matched the previous frame exactly.

        This is ground truth (full-buffer comparison) used to validate
        the grid-based meter; the meter itself never sees this.
        """
        return self._redundant_compositions

    @property
    def meaningful_compositions(self) -> int:
        """Frame updates that changed at least one pixel (ground truth)."""
        return self._compositions - self._redundant_compositions

    def add_composition_listener(self,
                                 listener: CompositionListener) -> None:
        """Register a callback fired after every composition."""
        self._listeners.append(listener)
