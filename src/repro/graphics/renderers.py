"""Pixel-content generators.

Each renderer applies *one content change* to a surface — the atomic
"meaningful frame" of the paper.  Different application classes change
the screen in characteristically different ways, and those differences
matter to the grid-based comparator (a full-screen scroll is caught by
any grid; a moving 2x2 dot can slip between grid points).  The renderer
classes below model those regimes:

=============================  ==========================================
Renderer                       Models
=============================  ==========================================
:class:`ScrollRenderer`        list/feed scrolling (Facebook, news apps)
:class:`SceneChangeRenderer`   page or game-board transitions
:class:`FullScreenVideoRenderer`  video playback / full-screen game action
:class:`SmallRegionRenderer`   a clock, counter or small ad banner
:class:`MovingSpritesRenderer` the Nexus Revamped live wallpaper (small
                               dots drifting across the screen)
:class:`StaticRenderer`        no visible change (identity; test helper)
=============================  ==========================================

Renderers are deterministic given the supplied numpy ``Generator``, which
keeps whole sessions reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_positive_int
from .surface import Surface


class Renderer:
    """Base class: apply one content change to a surface."""

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        """Mutate ``surface.pixels`` and mark the surface damaged."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state (sprite positions, scroll offset)."""


class StaticRenderer(Renderer):
    """Identity renderer: leaves the pixels untouched.

    Posting after a ``StaticRenderer.render`` produces a byte-identical
    frame — the redundant-frame case the meter must *not* count.
    """

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        # Intentionally no mark_damaged: the content did not change.
        del surface, rng


class ScrollRenderer(Renderer):
    """Vertical scroll: shift the buffer and synthesise the new band.

    The freshly exposed band is filled with horizontal stripes of random
    colour, which looks nothing like the shifted-out content, so every
    scroll step is a large, grid-visible change.
    """

    def __init__(self, scroll_px: int = 8) -> None:
        self.scroll_px = ensure_positive_int(scroll_px, "scroll_px")

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        px = surface.pixels
        step = min(self.scroll_px, surface.height)
        px[:-step] = px[step:]
        band = px[-step:]
        stripe_colors = rng.integers(0, 256, size=(step, 1, 3),
                                     dtype=np.uint8)
        band[:, :] = stripe_colors
        surface.mark_damaged()


class SceneChangeRenderer(Renderer):
    """Replace a handful of random rectangles (a page/board transition)."""

    def __init__(self, num_rects: int = 4, min_frac: float = 0.15,
                 max_frac: float = 0.6) -> None:
        self.num_rects = ensure_positive_int(num_rects, "num_rects")
        if not 0 < min_frac <= max_frac <= 1:
            raise ConfigurationError(
                f"need 0 < min_frac <= max_frac <= 1, got "
                f"({min_frac}, {max_frac})")
        self.min_frac = min_frac
        self.max_frac = max_frac

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        h, w = surface.height, surface.width
        px = surface.pixels
        for _ in range(self.num_rects):
            rh = max(1, int(h * rng.uniform(self.min_frac, self.max_frac)))
            rw = max(1, int(w * rng.uniform(self.min_frac, self.max_frac)))
            y0 = int(rng.integers(0, h - rh + 1))
            x0 = int(rng.integers(0, w - rw + 1))
            color = rng.integers(0, 256, size=3, dtype=np.uint8)
            px[y0:y0 + rh, x0:x0 + rw] = color
        surface.mark_damaged()


class FullScreenVideoRenderer(Renderer):
    """Regenerate the whole buffer from coarse random blocks.

    Approximates consecutive video frames: globally different content
    every frame, with block structure like a codec macroblock grid.
    """

    def __init__(self, block_px: int = 16) -> None:
        self.block_px = ensure_positive_int(block_px, "block_px")

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        bh = (surface.height + self.block_px - 1) // self.block_px
        bw = (surface.width + self.block_px - 1) // self.block_px
        blocks = rng.integers(0, 256, size=(bh, bw, 3), dtype=np.uint8)
        frame = np.repeat(np.repeat(blocks, self.block_px, axis=0),
                          self.block_px, axis=1)
        surface.pixels[:, :] = frame[:surface.height, :surface.width]
        surface.mark_damaged()


class SmallRegionRenderer(Renderer):
    """Change only a small fixed region (clock digits, a tiny banner).

    A stressor for grid-based comparison: whether the change is seen
    depends on whether a grid point lands inside the region.
    """

    def __init__(self, region_height: int = 4, region_width: int = 12,
                 y: int = 0, x: int = 0) -> None:
        self.region_height = ensure_positive_int(region_height,
                                                 "region_height")
        self.region_width = ensure_positive_int(region_width, "region_width")
        self.y = y
        self.x = x

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        rh = min(self.region_height, surface.height - self.y)
        rw = min(self.region_width, surface.width - self.x)
        if rh <= 0 or rw <= 0:
            raise ConfigurationError(
                "SmallRegionRenderer region lies outside the surface")
        color = rng.integers(0, 256, size=3, dtype=np.uint8)
        surface.pixels[self.y:self.y + rh, self.x:self.x + rw] = color
        surface.mark_damaged()


class MovingSpritesRenderer(Renderer):
    """Small dots drifting across the screen (Nexus Revamped analogue).

    The paper used this live wallpaper as the extreme accuracy test for
    the grid comparator: each frame "continuously makes small changes by
    moving small dots across the screen".  Dot positions persist between
    calls; each render moves every dot by ``step_px`` in a random
    direction, erasing it at the old position.
    """

    def __init__(self, num_dots: int = 6, dot_px: int = 2,
                 step_px: int = 3,
                 background: int = 12) -> None:
        self.num_dots = ensure_positive_int(num_dots, "num_dots")
        self.dot_px = ensure_positive_int(dot_px, "dot_px")
        self.step_px = ensure_positive_int(step_px, "step_px")
        if not 0 <= background <= 255:
            raise ConfigurationError(
                f"background must be a uint8 level, got {background}")
        self.background = background
        self._positions: np.ndarray = np.empty((0, 2), dtype=int)

    def reset(self) -> None:
        self._positions = np.empty((0, 2), dtype=int)

    def _initialise(self, surface: Surface,
                    rng: np.random.Generator) -> None:
        surface.pixels[:, :] = self.background
        ys = rng.integers(0, max(1, surface.height - self.dot_px),
                          size=self.num_dots)
        xs = rng.integers(0, max(1, surface.width - self.dot_px),
                          size=self.num_dots)
        self._positions = np.stack([ys, xs], axis=1).astype(int)

    def render(self, surface: Surface, rng: np.random.Generator) -> None:
        if len(self._positions) != self.num_dots:
            self._initialise(surface, rng)
        px = surface.pixels
        d = self.dot_px
        # Erase dots at their old positions.
        for y, x in self._positions:
            px[y:y + d, x:x + d] = self.background
        # Drift each dot by exactly +-step_px per axis.  A full step in
        # both axes keeps old and new dot areas disjoint whenever
        # step_px >= dot_px, so every move changes 2 * dot_px^2 pixels
        # — the controlled change size the Figure 6 accuracy study
        # sweeps the grid against.
        max_y = max(0, surface.height - d)
        max_x = max(0, surface.width - d)
        steps = rng.choice([-self.step_px, self.step_px],
                           size=(self.num_dots, 2))
        self._positions = np.clip(self._positions + steps,
                                  [0, 0], [max_y, max_x])
        for y, x in self._positions:
            px[y:y + d, x:x + d] = 255
        surface.mark_damaged()
