"""Android-style graphics stack model.

This package reproduces the display path of Figure 1 in the paper:
applications render into :class:`~repro.graphics.surface.Surface` objects,
the :class:`~repro.graphics.compositor.SurfaceManager` (SurfaceFlinger's
role) combines them at V-Sync into the
:class:`~repro.graphics.framebuffer.Framebuffer`, and the display hardware
scans the framebuffer out at the panel refresh rate.

Pixels are real: surfaces and the framebuffer are numpy ``uint8`` arrays,
so the content-rate meter in :mod:`repro.core` compares actual bytes, not
a flag saying "the app claims this frame changed".
"""

from .compositor import SurfaceManager
from .framebuffer import Framebuffer
from .renderers import (
    FullScreenVideoRenderer,
    MovingSpritesRenderer,
    Renderer,
    SceneChangeRenderer,
    ScrollRenderer,
    SmallRegionRenderer,
    StaticRenderer,
)
from .surface import Surface

__all__ = [
    "Framebuffer",
    "FullScreenVideoRenderer",
    "MovingSpritesRenderer",
    "Renderer",
    "SceneChangeRenderer",
    "ScrollRenderer",
    "SmallRegionRenderer",
    "StaticRenderer",
    "Surface",
    "SurfaceManager",
]
