"""The framebuffer: the single full-screen pixel array the panel scans.

In Android, Surface Manager writes the composited image into the
framebuffer and the display hardware refreshes the screen from it.  The
content-rate meter of the paper hooks exactly here — it observes
framebuffer *updates* (writes), not panel *refreshes*.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import GraphicsError
from ..units import ensure_positive_int

#: Callback invoked after every framebuffer write: ``(time, framebuffer)``.
UpdateListener = Callable[[float, "Framebuffer"], None]


class Framebuffer:
    """A ``(height, width, 3)`` RGB pixel store with update notification.

    Parameters
    ----------
    width, height:
        Panel resolution in pixels.  The paper's Galaxy S3 is 720x1280;
        simulations default to a scaled-down buffer for speed (the
        metering code is resolution-independent).
    storage:
        Optional pre-allocated ``(height, width, 3)`` uint8 array to
        use as the pixel store instead of allocating one.  The vector
        engine passes one row of its ``(n, height, width, 3)``
        struct-of-arrays block so a batch of framebuffers is a single
        contiguous allocation it can gather across; semantics are
        unchanged (the array is zeroed on adoption).
    """

    CHANNELS = 3

    def __init__(self, width: int, height: int,
                 storage: Optional[np.ndarray] = None) -> None:
        self.width = ensure_positive_int(width, "width")
        self.height = ensure_positive_int(height, "height")
        shape = (height, width, self.CHANNELS)
        if storage is None:
            self._pixels = np.zeros(shape, dtype=np.uint8)
        else:
            if storage.shape != shape or storage.dtype != np.uint8:
                raise GraphicsError(
                    f"framebuffer storage must be uint8 {shape}, got "
                    f"{storage.dtype} {storage.shape}")
            storage[...] = 0
            self._pixels = storage
        self._generation = 0
        self._last_update_time = 0.0
        self._last_write_unchanged = False
        self._listeners: List[UpdateListener] = []

    # ------------------------------------------------------------------
    # Geometry / state
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(height, width, channels)`` of the pixel array."""
        return self._pixels.shape

    @property
    def pixel_count(self) -> int:
        """Total number of pixels (``width * height``)."""
        return self.width * self.height

    @property
    def pixels(self) -> np.ndarray:
        """The live pixel array.

        This is the real buffer, not a copy — mirroring the fact that on
        the device the meter reads the actual framebuffer memory.
        Callers that need a snapshot must copy (that is precisely what
        the double-buffering technique of Section 3.1 is for).
        """
        return self._pixels

    @property
    def generation(self) -> int:
        """Monotone counter of completed writes."""
        return self._generation

    @property
    def last_update_time(self) -> float:
        """Timestamp of the most recent write."""
        return self._last_update_time

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, pixels: np.ndarray, time: float) -> None:
        """Replace the framebuffer contents (a frame update).

        ``pixels`` must match the framebuffer geometry exactly; partial
        updates go through the compositor, not here.
        """
        if pixels.shape != self._pixels.shape:
            raise GraphicsError(
                f"framebuffer write shape {pixels.shape} does not match "
                f"framebuffer shape {self._pixels.shape}")
        if pixels.dtype != np.uint8:
            raise GraphicsError(
                f"framebuffer expects uint8 pixels, got {pixels.dtype}")
        np.copyto(self._pixels, pixels)
        self._generation += 1
        self._last_update_time = time
        self._last_write_unchanged = False
        for listener in self._listeners:
            listener(time, self)

    def write_unchanged(self, time: float) -> None:
        """Record a frame update whose pixels equal the current contents.

        The compositor's frame-coherence fast path calls this when it
        has *proved* the newly composited frame is byte-identical to
        what the framebuffer already holds: the copy is skipped, but
        the update is otherwise real — generation, timestamp, and
        listener notification behave exactly like :meth:`write` with
        identical pixels.  Listeners that themselves compare frames can
        consult :attr:`last_write_unchanged` to skip their comparison.
        """
        self._generation += 1
        self._last_update_time = time
        self._last_write_unchanged = True
        for listener in self._listeners:
            listener(time, self)

    @property
    def last_write_unchanged(self) -> bool:
        """True when the most recent update was a proven-identical
        :meth:`write_unchanged` (valid during listener callbacks)."""
        return self._last_write_unchanged

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback fired after every write (meter hook)."""
        self._listeners.append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> None:
        """Unregister a previously added callback."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            raise GraphicsError("listener was not registered") from None

    def snapshot(self) -> np.ndarray:
        """An independent copy of the current pixels."""
        return self._pixels.copy()
