"""The framebuffer: the single full-screen pixel array the panel scans.

In Android, Surface Manager writes the composited image into the
framebuffer and the display hardware refreshes the screen from it.  The
content-rate meter of the paper hooks exactly here — it observes
framebuffer *updates* (writes), not panel *refreshes*.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from ..errors import GraphicsError
from ..units import ensure_positive_int

#: Callback invoked after every framebuffer write: ``(time, framebuffer)``.
UpdateListener = Callable[[float, "Framebuffer"], None]


class Framebuffer:
    """A ``(height, width, 3)`` RGB pixel store with update notification.

    Parameters
    ----------
    width, height:
        Panel resolution in pixels.  The paper's Galaxy S3 is 720x1280;
        simulations default to a scaled-down buffer for speed (the
        metering code is resolution-independent).
    """

    CHANNELS = 3

    def __init__(self, width: int, height: int) -> None:
        self.width = ensure_positive_int(width, "width")
        self.height = ensure_positive_int(height, "height")
        self._pixels = np.zeros((height, width, self.CHANNELS),
                                dtype=np.uint8)
        self._generation = 0
        self._last_update_time = 0.0
        self._listeners: List[UpdateListener] = []

    # ------------------------------------------------------------------
    # Geometry / state
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(height, width, channels)`` of the pixel array."""
        return self._pixels.shape

    @property
    def pixel_count(self) -> int:
        """Total number of pixels (``width * height``)."""
        return self.width * self.height

    @property
    def pixels(self) -> np.ndarray:
        """The live pixel array.

        This is the real buffer, not a copy — mirroring the fact that on
        the device the meter reads the actual framebuffer memory.
        Callers that need a snapshot must copy (that is precisely what
        the double-buffering technique of Section 3.1 is for).
        """
        return self._pixels

    @property
    def generation(self) -> int:
        """Monotone counter of completed writes."""
        return self._generation

    @property
    def last_update_time(self) -> float:
        """Timestamp of the most recent write."""
        return self._last_update_time

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, pixels: np.ndarray, time: float) -> None:
        """Replace the framebuffer contents (a frame update).

        ``pixels`` must match the framebuffer geometry exactly; partial
        updates go through the compositor, not here.
        """
        if pixels.shape != self._pixels.shape:
            raise GraphicsError(
                f"framebuffer write shape {pixels.shape} does not match "
                f"framebuffer shape {self._pixels.shape}")
        if pixels.dtype != np.uint8:
            raise GraphicsError(
                f"framebuffer expects uint8 pixels, got {pixels.dtype}")
        np.copyto(self._pixels, pixels)
        self._generation += 1
        self._last_update_time = time
        for listener in self._listeners:
            listener(time, self)

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback fired after every write (meter hook)."""
        self._listeners.append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> None:
        """Unregister a previously added callback."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            raise GraphicsError("listener was not registered") from None

    def snapshot(self) -> np.ndarray:
        """An independent copy of the current pixels."""
        return self._pixels.copy()
