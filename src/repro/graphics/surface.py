"""Application surfaces.

A surface is one application's private drawing buffer plus its placement
on screen.  Surface Manager composites the registered surfaces (in
z-order) into the framebuffer at V-Sync.  Most sessions use a single
full-screen surface; the compositor also supports smaller overlays (a
status bar, a floating widget) to exercise multi-surface composition.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GraphicsError
from ..units import ensure_non_negative_int, ensure_positive_int


class Surface:
    """A rectangular RGB drawing buffer with screen placement.

    Parameters
    ----------
    width, height:
        Buffer size in pixels.
    x, y:
        Top-left placement on screen (column, row).
    z_order:
        Stacking order; higher values composite on top.
    name:
        Label used in error messages and traces.
    """

    def __init__(self, width: int, height: int, x: int = 0, y: int = 0,
                 z_order: int = 0, name: str = "surface") -> None:
        self.width = ensure_positive_int(width, "width")
        self.height = ensure_positive_int(height, "height")
        self.x = ensure_non_negative_int(x, "x")
        self.y = ensure_non_negative_int(y, "y")
        self.z_order = z_order
        self.name = name
        self._pixels = np.zeros((height, width, 3), dtype=np.uint8)
        self._damage_generation = 0
        self._posted_generation = 0

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    @property
    def pixels(self) -> np.ndarray:
        """The mutable pixel array applications draw into."""
        return self._pixels

    def mark_damaged(self) -> None:
        """Note that the pixels changed since the last post.

        Renderers call this after mutating :attr:`pixels`.  Posting an
        undamaged surface is exactly the paper's "redundant frame": a
        frame update whose content is unchanged.
        """
        self._damage_generation += 1

    @property
    def is_damaged(self) -> bool:
        """True if the surface changed since it was last posted."""
        return self._damage_generation != self._posted_generation

    def acknowledge_post(self) -> None:
        """Called by the compositor when the surface is consumed."""
        self._posted_generation = self._damage_generation

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def rect(self) -> Tuple[int, int, int, int]:
        """``(y0, x0, y1, x1)`` screen rectangle (half-open)."""
        return (self.y, self.x, self.y + self.height, self.x + self.width)

    def check_fits(self, screen_width: int, screen_height: int) -> None:
        """Raise if the surface extends past the screen bounds."""
        if self.x + self.width > screen_width or \
                self.y + self.height > screen_height:
            raise GraphicsError(
                f"surface {self.name!r} rect {self.rect} exceeds screen "
                f"{screen_width}x{screen_height}")

    def fill(self, color: Tuple[int, int, int]) -> None:
        """Flood the surface with one colour and mark it damaged."""
        self._pixels[:, :] = np.asarray(color, dtype=np.uint8)
        self.mark_damaged()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Surface {self.name!r} {self.width}x{self.height} "
                f"at ({self.x},{self.y}) z={self.z_order}>")
