"""Incremental session execution: start / advance / finish + checkpoints.

:class:`SessionRunner` splits the run-to-completion path of
:meth:`~repro.pipeline.builder.SessionBuilder.run` into resumable
steps.  The discrete-event engine makes this safe by construction:
events fire off a heap at absolute sim times, so driving the clock to
``duration_s`` in one ``run_until`` call or in a thousand slices fires
the identical event sequence — nothing in the pipeline observes slice
boundaries.  ``SessionBuilder.run()`` itself delegates here, so the
sliced path *is* the only path and cannot drift from it.

Checkpoint/resume builds on the same property plus determinism.  A
live simulator cannot be pickled (the heap holds closures over every
component), but it does not need to be: a checkpoint is the session's
:class:`~repro.pipeline.spec.SessionSpec` plus the sim time reached
plus a digest of the observable state.  Resuming rebuilds the pipeline
from the spec and deterministically replays to the checkpointed time;
the digest then *proves* the replayed state matches what was
checkpointed (wrong code version, tampered file, non-deterministic
config — anything that diverges fails the digest and raises
:class:`~repro.errors.CheckpointError` instead of silently producing
wrong results).  Because the resumed heap state equals the
uninterrupted run's heap state, the final summary is byte-identical —
the property ``tests/test_checkpoint.py`` pins at every frame
boundary.

Checkpoint document (``repro-checkpoint/1``, written atomically)::

    {
      "schema": "repro-checkpoint/1",
      "spec": { ... SessionSpec document ... },
      "sim_time_s": 12.35,
      "events_processed": 48211,
      "digest": "sha256:...",
      "job_id": "batch-007",         # optional service annotation
      "trace_id": "9f2c..."          # optional trace correlation
    }

No wall-clock fields — the same session checkpointed at the same sim
time produces the same bytes.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import struct
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

import numpy as np

from ..errors import CheckpointError, SimulationError
from ..ioutil import atomic_write_json
from ..pipeline.builder import SessionBuilder, finalize_telemetry

if TYPE_CHECKING:
    from .session import SessionConfig, SessionResult

PathLike = Union[str, pathlib.Path]

#: Schema tag of checkpoint documents.
CHECKPOINT_SCHEMA = "repro-checkpoint/1"

#: Keys a checkpoint document must carry.
_REQUIRED_KEYS = ("schema", "spec", "sim_time_s", "events_processed",
                  "digest")
#: Keys a checkpoint document may carry.
_ALLOWED_KEYS = _REQUIRED_KEYS + ("job_id", "trace_id")


class SessionRunner:
    """Drives one session incrementally: start, advance, finish.

    Construct from a :class:`~repro.sim.session.SessionConfig` (or an
    existing, possibly partially-assembled
    :class:`~repro.pipeline.builder.SessionBuilder`); the pipeline is
    assembled eagerly so attribute access (``framebuffer``, ``panel``)
    works immediately.

    Lifecycle: :meth:`start` (idempotent; :meth:`advance` auto-starts)
    -> any number of ``advance(until_s)`` calls with non-decreasing
    times -> :meth:`finish`, which stops the components, finalizes
    telemetry and returns the same
    :class:`~repro.sim.session.SessionResult` the monolithic path
    returned.  :meth:`run` does all three, and is exactly what
    ``run_session`` executes.
    """

    def __init__(self, source: Union["SessionConfig", SessionBuilder],
                 ) -> None:
        if isinstance(source, SessionBuilder):
            self.builder = source
        else:
            self.builder = SessionBuilder(source)
        self.builder.assemble()
        self._started = False
        self._finished = False
        self._result: Optional["SessionResult"] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> "SessionConfig":
        """The session's immutable configuration."""
        return self.builder.config

    @property
    def sim(self):
        """The underlying :class:`~repro.sim.engine.Simulator`."""
        return self.builder.sim

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.builder.sim.now

    @property
    def duration_s(self) -> float:
        """Target session duration."""
        return self.builder.config.duration_s

    @property
    def started(self) -> bool:
        """True once components have been started."""
        return self._started

    @property
    def done(self) -> bool:
        """True once the clock has reached the session duration."""
        return self._started and self.now >= self.duration_s

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has produced the result."""
        return self._finished

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SessionRunner":
        """Start every component (exact monolith order); idempotent."""
        if self._started:
            return self
        builder = self.builder
        telemetry = builder.telemetry
        if telemetry is not None and telemetry.profile_spans:
            with telemetry.span("runner.start", self.now):
                self._start_components()
        else:
            self._start_components()
        self._started = True
        return self

    def _start_components(self) -> None:
        builder = self.builder
        application = builder._need(builder.application, "application")
        application.start()
        if builder.status_bar_app is not None:
            builder.status_bar_app.start()
        builder._need(builder.panel, "panel").start()
        builder._need(builder.driver, "driver").start()
        builder._need(builder.touch_source, "touch_source").start()

    def advance(self, until_s: float,
                max_events: Optional[int] = None) -> int:
        """Fire events up to sim time ``until_s`` (clamped to the
        session duration); returns the number of events fired.

        ``max_events`` bounds the slice; hitting the bound with
        eligible events still pending raises
        :class:`~repro.errors.SimulationError` (an event storm — a
        runaway self-rescheduling loop would otherwise spin forever
        inside one slice).  Times at or before ``now`` are a no-op.
        """
        if self._finished:
            raise SimulationError(
                "cannot advance a finished session runner")
        self.start()
        until_s = min(float(until_s), self.duration_s)
        if until_s <= self.now:
            return 0
        telemetry = self.builder.telemetry
        if telemetry is not None and telemetry.profile_spans:
            with telemetry.span("runner.advance", self.now):
                fired = self.sim.run_until(until_s, max_events)
        else:
            fired = self.sim.run_until(until_s, max_events)
        if max_events is not None and self.now < until_s:
            raise SimulationError(
                f"event storm: slice to t={until_s:.6f}s exceeded "
                f"{max_events} events (stalled at t={self.now:.6f}s)",
                context={"subsystem": "runner", "sim_time_s": self.now,
                         "max_events": max_events})
        return fired

    def finish(self) -> "SessionResult":
        """Advance to the full duration, stop components, build the
        result.  Idempotent — later calls return the cached result."""
        if self._result is not None:
            return self._result
        from .session import SessionResult

        self.advance(self.duration_s)
        builder = self.builder
        config = builder.config
        panel = builder._need(builder.panel, "panel")
        driver = builder._need(builder.driver, "driver")
        meter = builder._need(builder.meter, "meter")
        policy = builder._need(builder.policy, "policy")
        telemetry = builder.telemetry
        if telemetry is not None and telemetry.profile_spans:
            # Recorded before finalize closes the hub, so the span
            # reaches sinks and the span.*_seconds histogram.
            with telemetry.span("runner.finish", self.now):
                driver.stop()
                panel.stop()
        else:
            driver.stop()
            panel.stop()
        if telemetry is not None:
            finalize_telemetry(telemetry, config, builder.sim,
                               panel, meter, builder.injector,
                               builder.watchdog)
        self._finished = True
        self._result = SessionResult(
            config=config,
            profile=builder.profile,
            duration_s=config.duration_s,
            governor_name=policy.name,
            metering_active=config.governor != "fixed",
            panel=panel,
            meter=meter,
            application=builder._need(builder.application,
                                      "application"),
            driver=driver,
            touch_script=builder._need(builder.touch_script,
                                       "touch_script"),
            compositions=builder._need(builder.compositions,
                                       "compositions"),
            meaningful_compositions=builder._need(
                builder.meaningful_compositions,
                "meaningful_compositions"),
            oled_tracker=builder.oled_tracker,
            status_bar_app=builder.status_bar_app,
            injector=builder.injector,
            watchdog=builder.watchdog,
            telemetry=builder.telemetry,
        )
        return self._result

    def run(self) -> "SessionResult":
        """start + advance(duration) + finish in one call."""
        return self.finish()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """``sha256:<hex>`` over the session's observable sim state.

        Hashes the framebuffer pixels, engine progress (events
        processed, clock), composition logs, panel rate history, meter
        counters and application render/content logs — everything the
        summary derives from.  Two runners holding byte-identical state
        digest identically; any divergence (different code, different
        spec, non-determinism) is detected with overwhelming
        probability.
        """
        builder = self.builder
        sha = hashlib.sha256()
        framebuffer = builder._need(builder.framebuffer, "framebuffer")
        sha.update(np.ascontiguousarray(framebuffer.pixels).tobytes())
        sha.update(struct.pack("<qd", self.sim.events_processed,
                               self.now))
        for log in (builder._need(builder.compositions, "compositions"),
                    builder._need(builder.meaningful_compositions,
                                  "meaningful_compositions")):
            sha.update(np.asarray(log.times, dtype="<f8").tobytes())
        panel = builder._need(builder.panel, "panel")
        times, values = panel.rate_history.transitions
        sha.update(np.asarray(times, dtype="<f8").tobytes())
        sha.update(np.asarray(values, dtype="<f8").tobytes())
        meter = builder._need(builder.meter, "meter")
        sha.update(struct.pack("<qqq", meter.total_frames,
                               meter.total_meaningful,
                               meter.bytes_copied))
        application = builder._need(builder.application, "application")
        for log_name in ("renders", "content_changes"):
            log = getattr(application, log_name, None)
            if log is not None:
                sha.update(np.asarray(log.times,
                                      dtype="<f8").tobytes())
        return "sha256:" + sha.hexdigest()

    def checkpoint_document(self,
                            job_id: Optional[str] = None,
                            trace_id: Optional[str] = None,
                            ) -> Dict[str, Any]:
        """The ``repro-checkpoint/1`` document for the current state.

        Requires a spec-expressible config (the checkpoint must carry
        everything needed to rebuild the pipeline in another process) —
        configs holding live objects a spec cannot encode raise
        :class:`~repro.errors.CheckpointError`.  The runner is started
        if it has not been, so ``sim_time_s`` reflects a consistent
        "all events <= t fired" state.
        """
        from ..pipeline.spec import SessionSpec

        if self._finished:
            raise CheckpointError(
                "cannot checkpoint a finished session",
                context={"subsystem": "checkpoint"})
        self.start()
        try:
            spec = SessionSpec.from_config(self.config)
            rebuilt = SessionSpec.from_config(spec.to_config())
        except Exception as exc:
            raise CheckpointError(
                f"session config is not spec-expressible and cannot "
                f"be checkpointed: {exc}",
                context={"subsystem": "checkpoint",
                         "error_type": type(exc).__name__}) from exc
        if rebuilt != spec:
            raise CheckpointError(
                "session spec does not round-trip; refusing to "
                "checkpoint a config that cannot be rebuilt",
                context={"subsystem": "checkpoint"})
        document: Dict[str, Any] = {
            "schema": CHECKPOINT_SCHEMA,
            "spec": spec.to_json_dict(),
            "sim_time_s": self.now,
            "events_processed": self.sim.events_processed,
            "digest": self.state_digest(),
        }
        if job_id is not None:
            document["job_id"] = job_id
        if trace_id is not None:
            document["trace_id"] = trace_id
        return document

    def save_checkpoint(self, path: PathLike,
                        job_id: Optional[str] = None,
                        trace_id: Optional[str] = None) -> pathlib.Path:
        """Write the checkpoint document atomically to ``path``."""
        return atomic_write_json(
            path, self.checkpoint_document(job_id, trace_id=trace_id))


# ----------------------------------------------------------------------
# Checkpoint documents: validate / load / resume
# ----------------------------------------------------------------------
def validate_checkpoint(document: Any,
                        where: str = "checkpoint") -> Dict[str, Any]:
    """Structural validation of a ``repro-checkpoint/1`` document.

    Returns the document; raises
    :class:`~repro.errors.CheckpointError` on anything malformed —
    wrong type, wrong schema tag, missing or unknown keys, or fields
    of the wrong type.  Deliberately strict: a checkpoint that cannot
    be trusted completely must not be trusted at all.
    """
    if not isinstance(document, dict):
        raise CheckpointError(
            f"{where}: expected a JSON object, got "
            f"{type(document).__name__}",
            context={"subsystem": "checkpoint", "where": where})
    schema = document.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{where}: unsupported schema {schema!r} "
            f"(expected {CHECKPOINT_SCHEMA!r})",
            context={"subsystem": "checkpoint", "where": where,
                     "schema": schema})
    missing = [key for key in _REQUIRED_KEYS if key not in document]
    unknown = [key for key in document if key not in _ALLOWED_KEYS]
    if missing or unknown:
        raise CheckpointError(
            f"{where}: missing keys {missing}, unknown keys {unknown}",
            context={"subsystem": "checkpoint", "where": where,
                     "missing": missing, "unknown": unknown})
    if not isinstance(document["spec"], dict):
        raise CheckpointError(
            f"{where}: 'spec' must be an object",
            context={"subsystem": "checkpoint", "where": where})
    for key, kinds in (("sim_time_s", (int, float)),
                       ("events_processed", (int,))):
        if not isinstance(document[key], kinds) or isinstance(
                document[key], bool):
            raise CheckpointError(
                f"{where}: {key!r} must be a number, got "
                f"{document[key]!r}",
                context={"subsystem": "checkpoint", "where": where,
                         "key": key})
    digest = document["digest"]
    if not (isinstance(digest, str) and digest.startswith("sha256:")):
        raise CheckpointError(
            f"{where}: 'digest' must be a 'sha256:<hex>' string",
            context={"subsystem": "checkpoint", "where": where})
    return document


def load_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Read and validate a checkpoint file.

    Unreadable files, JSON syntax errors and schema violations all
    raise :class:`~repro.errors.CheckpointError` with the path in
    context — the caller's recovery policy (restart from scratch) is
    the same for every flavour of corruption.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}",
            context={"subsystem": "checkpoint",
                     "path": str(path)}) from None
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}",
            context={"subsystem": "checkpoint",
                     "path": str(path)}) from None
    return validate_checkpoint(document, where=str(path))


def _runner_for_engine(config: "SessionConfig",
                       engine: str) -> SessionRunner:
    """A runner for ``config`` on the requested execution engine.

    ``"scalar"`` builds the reference :class:`SessionRunner`;
    ``"auto"`` builds a :class:`~repro.sim.vector.VectorRunner` when
    the config is vector-eligible and falls back to scalar otherwise;
    ``"vector"`` requires eligibility (the eligibility error
    propagates).  Both runners share the checkpoint/digest contract —
    identical ``events_processed``, identical ``state_digest`` at
    every advance boundary — so the choice never changes what a resume
    verifies, only how fast the replay reaches the checkpoint.
    """
    if engine == "scalar":
        return SessionRunner(config)
    from ..pipeline.eligibility import probe_vector_eligibility
    from .vector import VectorRunner

    if engine == "auto":
        try:
            if not probe_vector_eligibility(config).eligible:
                return SessionRunner(config)
        except Exception:  # noqa: BLE001 - probe failure => scalar
            return SessionRunner(config)
        return VectorRunner(config)
    if engine == "vector":
        return VectorRunner(config)
    from ..errors import ConfigurationError

    raise ConfigurationError(
        f"engine must be 'scalar', 'auto' or 'vector', got {engine!r}")


def resume_runner(document: Dict[str, Any],
                  max_events: Optional[int] = None,
                  engine: str = "scalar") -> SessionRunner:
    """Rebuild a runner from a checkpoint document and fast-forward it.

    The pipeline is reconstructed from the embedded spec and replayed
    deterministically to ``sim_time_s``; the replayed state must then
    match the checkpointed ``events_processed`` and ``digest`` exactly,
    or :class:`~repro.errors.CheckpointError` is raised (resuming from
    state that cannot be verified would risk silently wrong results).

    ``engine`` selects the replay engine (see :func:`_runner_for_engine`).
    A vector replay still verifies against digests recorded by a scalar
    run — the digest match then additionally proves the two engines
    reached byte-identical state.
    """
    from ..pipeline.spec import SessionSpec

    document = validate_checkpoint(document)
    try:
        spec = SessionSpec.from_json_dict(document["spec"])
        config = spec.to_config()
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint spec cannot be decoded: {exc}",
            context={"subsystem": "checkpoint",
                     "error_type": type(exc).__name__}) from exc
    runner = _runner_for_engine(config, engine)
    sim_time_s = float(document["sim_time_s"])
    if sim_time_s > config.duration_s:
        raise CheckpointError(
            f"checkpoint time {sim_time_s:.6f}s exceeds session "
            f"duration {config.duration_s:.6f}s",
            context={"subsystem": "checkpoint",
                     "sim_time_s": sim_time_s})
    runner.advance(sim_time_s, max_events=max_events)
    if runner.sim.events_processed != document["events_processed"]:
        raise CheckpointError(
            f"checkpoint replay diverged: events_processed "
            f"{runner.sim.events_processed} != recorded "
            f"{document['events_processed']}",
            context={"subsystem": "checkpoint",
                     "sim_time_s": sim_time_s,
                     "replayed": runner.sim.events_processed,
                     "recorded": document["events_processed"]})
    digest = runner.state_digest()
    if digest != document["digest"]:
        raise CheckpointError(
            f"checkpoint replay diverged: state digest mismatch at "
            f"t={sim_time_s:.6f}s",
            context={"subsystem": "checkpoint",
                     "sim_time_s": sim_time_s,
                     "replayed": digest,
                     "recorded": document["digest"]})
    return runner


def resume_from_file(path: PathLike,
                     max_events: Optional[int] = None,
                     engine: str = "scalar") -> SessionRunner:
    """:func:`load_checkpoint` + :func:`resume_runner` in one step."""
    return resume_runner(load_checkpoint(path), max_events=max_events,
                         engine=engine)
