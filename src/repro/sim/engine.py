"""Event-driven simulation engine.

The engine is a classic priority-queue scheduler: callbacks are scheduled
at absolute timestamps and fired in time order.  Ties are broken by
insertion order, which makes runs fully deterministic — an essential
property here, because every experiment in the paper is a comparison
between two runs of *the same* workload script with different display
governors.

Design notes
------------
* Timestamps are ``float`` seconds.  The engine never invents time: it
  jumps from event to event, so a 180-second session with a mostly idle
  app costs almost nothing to simulate.
* Cancellation is lazy (a cancelled handle stays in the heap and is
  skipped when popped).  This is the standard approach and keeps
  :meth:`Simulator.cancel` O(1); the display panel uses it heavily when a
  refresh-rate switch invalidates the next scheduled V-Sync.
* Callbacks receive the simulator so they can read ``sim.now`` and
  schedule follow-up events without closing over the engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..units import ensure_non_negative, ensure_positive

#: Signature of every scheduled callback.
Callback = Callable[["Simulator"], None]


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Instances are returned by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_after`; they are not constructed directly.
    """

    __slots__ = ("time", "name", "_callback", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callback, name: str) -> None:
        self.time = time
        self.name = name
        self._callback = callback
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`Simulator.cancel` has been called on this."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting in the queue."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending")
        return f"<EventHandle {self.name!r} t={self.time:.6f} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.call_after(1.0, lambda s: seen.append(s.now))
    >>> sim.run_until(2.0)
    >>> seen
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = ensure_non_negative(start_time, "start_time")
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled ones included until
        they are popped; use for rough monitoring only)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callback,
                name: str = "event") -> EventHandle:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling exactly at ``now`` is allowed (the event fires during
        the current :meth:`run_until` pass, after events already queued
        for the same instant); scheduling in the past is an error.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {name!r} at t={time:.6f}, "
                f"which is before now={self._now:.6f}")
        handle = EventHandle(time, callback, name)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        return handle

    def call_after(self, delay: float, callback: Callback,
                   name: str = "event") -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        ensure_non_negative(delay, "delay")
        return self.call_at(self._now + delay, callback, name)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling a fired or already
        cancelled event is a silent no-op."""
        handle._cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time: float,
                  max_events: Optional[int] = None) -> int:
        """Fire events in order until the queue is exhausted or the next
        event lies strictly after ``end_time``; then set ``now`` to
        ``end_time``.  Returns the number of events fired.

        The final clock jump means integrators (e.g. the power meter)
        can rely on ``sim.now == end_time`` when the session finishes.

        ``max_events`` bounds one call: when the limit is reached with
        eligible events still queued, the call returns early and ``now``
        stays at the last fired event's time (the clock does **not**
        jump to ``end_time``), so a caller stepping the simulation in
        slices can detect the incomplete slice (``sim.now < end_time``)
        and decide whether that is an event storm.  Calling
        ``run_until`` again with the same ``end_time`` resumes exactly
        where the previous call stopped — event order is owned by the
        heap, not by call boundaries.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before now {self._now:.6f}")
        if max_events is not None:
            ensure_positive(max_events, "max_events")
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        fired = 0
        try:
            while self._queue and self._queue[0][0] <= end_time:
                if max_events is not None and fired >= max_events:
                    return fired
                time, _, handle = heapq.heappop(self._queue)
                if handle._cancelled:
                    continue
                self._now = time
                handle._fired = True
                self._processed += 1
                handle._callback(self)
                fired += 1
            self._now = end_time
        finally:
            self._running = False
        return fired

    def run(self, max_events: int = 10_000_000) -> None:
        """Fire events until the queue empties.

        ``max_events`` bounds runaway self-rescheduling loops (a
        periodic task with no stop condition would otherwise never
        terminate).
        """
        ensure_positive(max_events, "max_events")
        if self._running:
            raise SimulationError("run called re-entrantly")
        self._running = True
        fired = 0
        try:
            while self._queue:
                time, _, handle = heapq.heappop(self._queue)
                if handle._cancelled:
                    continue
                if fired >= max_events:
                    raise SimulationError(
                        f"run exceeded max_events={max_events}")
                self._now = time
                handle._fired = True
                self._processed += 1
                fired += 1
                handle._callback(self)
        finally:
            self._running = False


class PeriodicTask:
    """A callback fired at a fixed period until stopped.

    The display governor and the power sampler are periodic; this helper
    owns the reschedule-on-fire loop so they do not repeat it.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Seconds between invocations.
    callback:
        Called with the simulator at each tick.
    start_delay:
        Delay before the first invocation; defaults to one full period.
    name:
        Event-name used for the scheduled handles (debugging aid).
    """

    def __init__(self, sim: Simulator, period: float, callback: Callback,
                 start_delay: Optional[float] = None,
                 name: str = "periodic") -> None:
        self._sim = sim
        self._period = ensure_positive(period, "period")
        self._callback = callback
        self._name = name
        self._stopped = False
        self._ticks = 0
        self._last_fire = sim.now
        first = period if start_delay is None else ensure_non_negative(
            start_delay, "start_delay")
        self._handle: Optional[EventHandle] = sim.call_after(
            first, self._fire, name=name)

    @property
    def period(self) -> float:
        """Current period in seconds."""
        return self._period

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    def set_period(self, period: float, *, retime: bool = False) -> None:
        """Change the period.

        By default the pending tick keeps its scheduled time and the
        new period applies from the *next* reschedule — the semantics
        every existing caller was written against (a rate change
        commits at a tick boundary, exactly like a V-Sync-latched
        display rate switch; see
        :class:`repro.display.panel.DisplayPanel`).

        With ``retime=True`` the pending tick is cancelled and
        re-scheduled at ``last_fire + new_period`` (clamped to *now*),
        so a period change takes effect immediately — shrinking the
        period pulls the next tick earlier, growing it pushes the tick
        later.  Use this for controllers whose reaction latency must
        not exceed the *old* period.
        """
        self._period = ensure_positive(period, "period")
        if not retime or self._stopped or self._handle is None:
            return
        self._sim.cancel(self._handle)
        next_time = max(self._sim.now, self._last_fire + self._period)
        self._handle = self._sim.call_at(next_time, self._fire,
                                         name=self._name)

    def stop(self) -> None:
        """Cancel the pending tick and fire no more."""
        self._stopped = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    def _fire(self, sim: Simulator) -> None:
        if self._stopped:
            return
        self._ticks += 1
        self._last_fire = sim.now
        self._callback(sim)
        if not self._stopped:
            self._handle = sim.call_after(
                self._period, self._fire, name=self._name)
