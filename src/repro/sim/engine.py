"""Event-driven simulation engine.

The engine is a classic priority-queue scheduler: callbacks are scheduled
at absolute timestamps and fired in time order.  Ties are broken by
insertion order, which makes runs fully deterministic — an essential
property here, because every experiment in the paper is a comparison
between two runs of *the same* workload script with different display
governors.

Design notes
------------
* Timestamps are ``float`` seconds.  The engine never invents time: it
  jumps from event to event, so a 180-second session with a mostly idle
  app costs almost nothing to simulate.
* Cancellation is lazy (a cancelled handle stays in the heap and is
  skipped when popped).  This is the standard approach and keeps
  :meth:`Simulator.cancel` O(1); the display panel uses it heavily when a
  refresh-rate switch invalidates the next scheduled V-Sync.
* Callbacks receive the simulator so they can read ``sim.now`` and
  schedule follow-up events without closing over the engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..units import ensure_non_negative, ensure_positive

#: Signature of every scheduled callback.
Callback = Callable[["Simulator"], None]


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Instances are returned by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_after`; they are not constructed directly.
    """

    __slots__ = ("time", "name", "_callback", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callback, name: str) -> None:
        self.time = time
        self.name = name
        self._callback = callback
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`Simulator.cancel` has been called on this."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting in the queue."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending")
        return f"<EventHandle {self.name!r} t={self.time:.6f} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.call_after(1.0, lambda s: seen.append(s.now))
    >>> sim.run_until(2.0)
    >>> seen
    [1.0]
    """

    #: Compaction trigger: sweep the heap once at least this many
    #: cancelled entries are queued *and* they outnumber live ones.
    COMPACT_MIN_CANCELLED = 8

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = ensure_non_negative(start_time, "start_time")
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued.

        Cancelled-but-unpopped entries are excluded: the heap keeps
        them until they surface (lazy cancellation), but they are not
        pending work and monitoring should not count them.
        """
        return len(self._queue) - self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callback,
                name: str = "event") -> EventHandle:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling exactly at ``now`` is allowed (the event fires during
        the current :meth:`run_until` pass, after events already queued
        for the same instant); scheduling in the past is an error.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {name!r} at t={time:.6f}, "
                f"which is before now={self._now:.6f}")
        handle = EventHandle(time, callback, name)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        return handle

    def call_after(self, delay: float, callback: Callback,
                   name: str = "event") -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        ensure_non_negative(delay, "delay")
        return self.call_at(self._now + delay, callback, name)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling a fired or already
        cancelled event is a silent no-op.

        Cancellation stays lazy (O(1)), but the engine tracks how many
        cancelled entries are sitting in the heap and sweeps them out
        once they outnumber the live ones — cancel-heavy sessions
        (panel rate switches cancel the next V-Sync on every decision)
        would otherwise grow the heap without bound.
        """
        was_pending = handle.pending
        handle._cancelled = True
        if was_pending:
            self._cancelled_pending += 1
            if (self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
                    and self._cancelled_pending * 2 > len(self._queue)):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        Rebinding ``self._queue`` is safe mid-run: the run loops re-read
        the attribute on every iteration, and ``(time, seq)`` ordering
        is preserved by :func:`heapq.heapify`.
        """
        self._queue = [entry for entry in self._queue
                       if not entry[2]._cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time: float,
                  max_events: Optional[int] = None) -> int:
        """Fire events in order until the queue is exhausted or the next
        event lies strictly after ``end_time``; then set ``now`` to
        ``end_time``.  Returns the number of events fired.

        The final clock jump means integrators (e.g. the power meter)
        can rely on ``sim.now == end_time`` when the session finishes.

        ``max_events`` bounds one call: when the limit is reached with
        eligible events still queued, the call returns early and ``now``
        stays at the last fired event's time (the clock does **not**
        jump to ``end_time``), so a caller stepping the simulation in
        slices can detect the incomplete slice (``sim.now < end_time``)
        and decide whether that is an event storm.  Calling
        ``run_until`` again with the same ``end_time`` resumes exactly
        where the previous call stopped — event order is owned by the
        heap, not by call boundaries.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before now {self._now:.6f}")
        if max_events is not None:
            ensure_positive(max_events, "max_events")
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        fired = 0
        try:
            while self._queue and self._queue[0][0] <= end_time:
                if max_events is not None and fired >= max_events:
                    return fired
                time, _, handle = heapq.heappop(self._queue)
                if handle._cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = time
                handle._fired = True
                self._processed += 1
                handle._callback(self)
                fired += 1
            self._now = end_time
        finally:
            self._running = False
        return fired

    def run(self, max_events: int = 10_000_000) -> None:
        """Fire events until the queue empties.

        ``max_events`` bounds runaway self-rescheduling loops (a
        periodic task with no stop condition would otherwise never
        terminate).
        """
        ensure_positive(max_events, "max_events")
        if self._running:
            raise SimulationError("run called re-entrantly")
        self._running = True
        fired = 0
        try:
            while self._queue:
                time, _, handle = heapq.heappop(self._queue)
                if handle._cancelled:
                    self._cancelled_pending -= 1
                    continue
                if fired >= max_events:
                    raise SimulationError(
                        f"run exceeded max_events={max_events}")
                self._now = time
                handle._fired = True
                self._processed += 1
                fired += 1
                handle._callback(self)
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Fine-grained stepping (vector-engine fast path)
    # ------------------------------------------------------------------
    # These primitives let an external controller replicate exactly what
    # run_until would do — fire one event, observe the next live event,
    # account for analytically-skipped ticks — without owning the loop.
    # The scalar path never calls them; byte-equivalence of the vector
    # path rests on each primitive matching run_until's semantics.

    def peek_next_live(self) -> Optional[EventHandle]:
        """The next live event, or ``None`` if the queue is drained.

        Cancelled entries at the top of the heap are popped as a side
        effect (the same lazy sweep ``run_until`` performs).
        """
        while self._queue and self._queue[0][2]._cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending -= 1
        return self._queue[0][2] if self._queue else None

    def next_live_time_excluding(self, *exclude: EventHandle
                                 ) -> Optional[float]:
        """Earliest live event time ignoring the given handles.

        A linear scan over the heap — O(queue), acceptable because the
        fast-path controller calls it once per *skip region*, not per
        tick, and heap compaction keeps the queue small.
        """
        skip = {id(handle) for handle in exclude}
        best: Optional[float] = None
        for time, _, handle in self._queue:
            if handle._cancelled or id(handle) in skip:
                continue
            if best is None or time < best:
                best = time
        return best

    def step_one(self, end_time: float) -> bool:
        """Fire the single next live event if it lies at or before
        ``end_time``.  Returns True if an event fired.

        Unlike :meth:`run_until` the clock is *not* jumped to
        ``end_time`` when no event fires — pair with
        :meth:`advance_clock` to finish a slice.
        """
        if self._running:
            raise SimulationError("step_one called re-entrantly")
        while self._queue and self._queue[0][0] <= end_time:
            time, _, handle = heapq.heappop(self._queue)
            if handle._cancelled:
                self._cancelled_pending -= 1
                continue
            self._running = True
            try:
                self._now = time
                handle._fired = True
                self._processed += 1
                handle._callback(self)
            finally:
                self._running = False
            return True
        return False

    def advance_clock(self, end_time: float) -> None:
        """Jump the clock to ``end_time`` without firing anything.

        This is the final clock jump of :meth:`run_until` split out for
        callers that stepped events themselves.  Jumping over a live
        event would silently reorder the timeline, so it is an error.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before now {self._now:.6f}")
        nxt = self.peek_next_live()
        if nxt is not None and nxt.time <= end_time:
            raise SimulationError(
                f"advance_clock({end_time:.6f}) would jump over live "
                f"event {nxt.name!r} at t={nxt.time:.6f}")
        self._now = end_time

    def credit_skipped(self, count: int) -> None:
        """Account for ``count`` events resolved analytically.

        The fast path proves a run of ticks is observationally inert
        and skips firing them; crediting keeps ``events_processed`` —
        part of the checkpoint/digest contract — identical to a scalar
        run that fired every tick.
        """
        if count < 0:
            raise SimulationError(
                f"cannot credit {count} skipped events")
        self._processed += count


class PeriodicTask:
    """A callback fired at a fixed period until stopped.

    The display governor and the power sampler are periodic; this helper
    owns the reschedule-on-fire loop so they do not repeat it.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Seconds between invocations.
    callback:
        Called with the simulator at each tick.
    start_delay:
        Delay before the first invocation; defaults to one full period.
    name:
        Event-name used for the scheduled handles (debugging aid).
    """

    def __init__(self, sim: Simulator, period: float, callback: Callback,
                 start_delay: Optional[float] = None,
                 name: str = "periodic") -> None:
        self._sim = sim
        self._period = ensure_positive(period, "period")
        self._callback = callback
        self._name = name
        self._stopped = False
        self._ticks = 0
        self._last_fire = sim.now
        first = period if start_delay is None else ensure_non_negative(
            start_delay, "start_delay")
        self._handle: Optional[EventHandle] = sim.call_after(
            first, self._fire, name=name)

    @property
    def period(self) -> float:
        """Current period in seconds."""
        return self._period

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    @property
    def last_fire(self) -> float:
        """Simulation time of the most recent tick (start time before
        the first tick)."""
        return self._last_fire

    @property
    def pending_handle(self) -> Optional[EventHandle]:
        """The scheduled next-tick handle, or ``None`` once stopped."""
        return self._handle

    def fast_forward(self, count: int, last_fire_time: float) -> None:
        """Account for ``count`` ticks resolved analytically.

        The vector fast path proves a run of ticks would each fire the
        callback with no observable effect beyond bookkeeping it
        replicates itself; this commits the task-side bookkeeping: tick
        count, last-fire time, and a fresh next-tick handle at
        ``last_fire_time + period`` — the exact float the skipped final
        tick would have computed via ``call_after(period)``.
        """
        if self._stopped or self._handle is None:
            raise SimulationError(
                f"cannot fast-forward stopped task {self._name!r}")
        if count <= 0:
            raise SimulationError(
                f"fast_forward needs a positive count, got {count}")
        self._ticks += count
        self._last_fire = last_fire_time
        self._sim.cancel(self._handle)
        self._handle = self._sim.call_at(
            last_fire_time + self._period, self._fire, name=self._name)

    def set_period(self, period: float, *, retime: bool = False) -> None:
        """Change the period.

        By default the pending tick keeps its scheduled time and the
        new period applies from the *next* reschedule — the semantics
        every existing caller was written against (a rate change
        commits at a tick boundary, exactly like a V-Sync-latched
        display rate switch; see
        :class:`repro.display.panel.DisplayPanel`).

        With ``retime=True`` the pending tick is cancelled and
        re-scheduled at ``last_fire + new_period`` (clamped to *now*),
        so a period change takes effect immediately — shrinking the
        period pulls the next tick earlier, growing it pushes the tick
        later.  Use this for controllers whose reaction latency must
        not exceed the *old* period.
        """
        self._period = ensure_positive(period, "period")
        if not retime or self._stopped or self._handle is None:
            return
        self._sim.cancel(self._handle)
        next_time = max(self._sim.now, self._last_fire + self._period)
        self._handle = self._sim.call_at(next_time, self._fire,
                                         name=self._name)

    def stop(self) -> None:
        """Cancel the pending tick and fire no more."""
        self._stopped = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    def _fire(self, sim: Simulator) -> None:
        if self._stopped:
            return
        self._ticks += 1
        self._last_fire = sim.now
        self._callback(sim)
        if not self._stopped:
            self._handle = sim.call_after(
                self._period, self._fire, name=self._name)
