"""Trace containers for simulation output.

Three shapes of data come out of a session, matching the three kinds of
plot in the paper:

* :class:`EventLog` — bare timestamps (frame submissions, content
  changes, touches).  Figure 2/3-style *rates* are windowed counts over
  an event log.
* :class:`StepSeries` — piecewise-constant signals (the panel refresh
  rate, instantaneous power draw).  Figure 7's refresh-rate trace and
  the energy integral both come from here.
* :class:`TimeSeries` — irregularly sampled values (the meter's
  content-rate estimates).

All three convert to numpy arrays for analysis, and all enforce
monotonically non-decreasing timestamps, which the simulator guarantees
by construction.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..units import ensure_non_negative, ensure_positive


class EventLog:
    """An append-only log of event timestamps (seconds)."""

    def __init__(self, name: str = "events") -> None:
        self.name = name
        self._times: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float) -> None:
        """Record one event at ``time``; times must not decrease."""
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"event log {self.name!r}: time went backwards "
                f"({time:.6f} < {self._times[-1]:.6f})")
        self._times.append(time)

    def extend(self, times: Sequence[float]) -> None:
        """Record a non-decreasing run of events in one call.

        Equivalent to appending each element in order — the vector
        engine's bulk idle-submit skip lands a whole region's worth of
        timestamps per log this way instead of one ``append`` per
        skipped tick.  The monotonicity invariant is enforced over the
        run and against the existing tail before anything lands.
        """
        if not times:
            return
        prev = self._times[-1] if self._times else float("-inf")
        for time in times:
            if time < prev:
                raise SimulationError(
                    f"event log {self.name!r}: time went backwards "
                    f"({time:.6f} < {prev:.6f})")
            prev = time
        self._times.extend(times)

    @property
    def times(self) -> np.ndarray:
        """All event timestamps as a float array."""
        return np.asarray(self._times, dtype=float)

    def count_in(self, start: float, end: float) -> int:
        """Number of events with ``start < t <= end``.

        The half-open convention means adjacent windows partition the
        events exactly — summing windowed counts equals the total.
        """
        if end < start:
            raise SimulationError(
                f"event log {self.name!r}: count_in window end "
                f"({end:.6f}) precedes start ({start:.6f})",
                context={"log": self.name, "operation": "count_in",
                         "start": start, "end": end})
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return hi - lo

    def count_in_batch(self, starts: Sequence[float],
                       ends: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`count_in` over many windows at once.

        Same half-open ``(start, end]`` convention; element ``i``
        equals ``count_in(starts[i], ends[i])`` exactly —
        ``np.searchsorted(side="right")`` over the same float64 values
        is ``bisect.bisect_right`` (both are pure comparisons, no
        arithmetic).  This is the batched meter-window kernel the
        vector engine uses to price a whole run of governor decisions
        in one pass.
        """
        start_arr = np.asarray(starts, dtype=np.float64)
        end_arr = np.asarray(ends, dtype=np.float64)
        if np.any(end_arr < start_arr):
            raise SimulationError(
                f"event log {self.name!r}: count_in_batch window end "
                f"precedes start",
                context={"log": self.name,
                         "operation": "count_in_batch"})
        times = np.asarray(self._times, dtype=np.float64)
        lo = np.searchsorted(times, start_arr, side="right")
        hi = np.searchsorted(times, end_arr, side="right")
        return (hi - lo).astype(np.int64)

    def rate_in(self, start: float, end: float) -> float:
        """Mean event rate (events/second) over ``(start, end]``."""
        span = end - start
        if span <= 0:
            raise SimulationError(
                f"event log {self.name!r}: rate_in window "
                f"({start:.6f}, {end:.6f}] has non-positive span",
                context={"log": self.name, "operation": "rate_in",
                         "start": start, "end": end})
        return self.count_in(start, end) / span

    def binned_rate(self, start: float, end: float,
                    bin_width: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Event rate per fixed-width bin — the frame-rate traces of
        Figure 2 use 1-second bins.

        Returns ``(bin_centers, rates)``.  A trailing partial bin is
        normalised by its actual width.
        """
        ensure_positive(bin_width, "bin_width")
        if end <= start:
            raise SimulationError(
                f"event log {self.name!r}: binned_rate window end "
                f"({end:.6f}) must be after start ({start:.6f})",
                context={"log": self.name, "operation": "binned_rate",
                         "start": start, "end": end,
                         "bin_width": bin_width})
        edges = np.arange(start, end + bin_width * 1e-9, bin_width)
        if edges[-1] < end:
            edges = np.append(edges, end)
        centers = (edges[:-1] + edges[1:]) / 2.0
        widths = np.diff(edges)
        counts = np.array([
            self.count_in(edges[i], edges[i + 1])
            for i in range(len(edges) - 1)
        ], dtype=float)
        return centers, counts / widths


class StepSeries:
    """A piecewise-constant signal defined by ``set`` transitions.

    The value holds from its set-time until the next transition.  Used
    for the refresh rate and for instantaneous power, so it supports
    exact integration (energy = integral of power).
    """

    def __init__(self, name: str = "step", initial: float = 0.0,
                 start_time: float = 0.0) -> None:
        self.name = name
        self._times: List[float] = [ensure_non_negative(start_time,
                                                        "start_time")]
        self._values: List[float] = [float(initial)]

    def __len__(self) -> int:
        return len(self._times)

    def set(self, time: float, value: float) -> None:
        """Record a transition to ``value`` at ``time``.

        Setting at an existing timestamp overwrites that transition
        (last write wins), which is what happens when a governor makes
        two decisions in the same instant.
        """
        last = self._times[-1]
        if time < last:
            raise SimulationError(
                f"step series {self.name!r}: time went backwards "
                f"({time:.6f} < {last:.6f})")
        if time == last:
            self._values[-1] = float(value)
        else:
            self._times.append(time)
            self._values.append(float(value))

    def value_at(self, time: float) -> float:
        """Value of the signal at ``time`` (>= the series start)."""
        if time < self._times[0]:
            raise SimulationError(
                f"step series {self.name!r}: query at {time:.6f} precedes "
                f"series start {self._times[0]:.6f}")
        idx = bisect.bisect_right(self._times, time) - 1
        return self._values[idx]

    @property
    def current(self) -> float:
        """Most recently set value."""
        return self._values[-1]

    @property
    def transitions(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` arrays of every transition."""
        return (np.asarray(self._times, dtype=float),
                np.asarray(self._values, dtype=float))

    def integrate(self, start: float, end: float) -> float:
        """Exact integral of the signal over ``[start, end]``.

        For a power series in mW this yields energy in mJ.
        """
        if end < start:
            raise SimulationError("integrate: end before start")
        if start < self._times[0]:
            raise SimulationError(
                f"integrate: start {start:.6f} precedes series start")
        # Lazy import: power.meter owns the integration kernel (it is
        # the power path's hot loop) and must not import tracing back.
        from ..power.meter import integrate_segments

        # Walk transitions that fall inside the window, collecting the
        # (value, duration) of each constant segment; the kernel owns
        # the arithmetic so scalar and vector paths share one
        # implementation of the math.
        values: List[float] = []
        durations: List[float] = []
        idx = bisect.bisect_right(self._times, start) - 1
        t = start
        while t < end:
            seg_value = self._values[idx]
            next_t = (self._times[idx + 1]
                      if idx + 1 < len(self._times) else end)
            seg_end = min(next_t, end)
            values.append(seg_value)
            durations.append(seg_end - t)
            t = seg_end
            idx += 1
        return integrate_segments(values, durations)

    def mean(self, start: float, end: float) -> float:
        """Time-weighted mean of the signal over ``[start, end]``."""
        span = end - start
        if span <= 0:
            raise SimulationError("mean: window must have positive span")
        return self.integrate(start, end) / span

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Signal value at each query time (for plotting on a grid)."""
        return np.array([self.value_at(t) for t in times], dtype=float)


class TimeSeries:
    """Irregularly sampled ``(time, value)`` pairs."""

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Record one sample; times must not decrease."""
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"time series {self.name!r}: time went backwards "
                f"({time:.6f} < {self._times[-1]:.6f})")
        self._times.append(time)
        self._values.append(float(value))

    def extend(self, times: Sequence[float],
               values: Sequence[float]) -> None:
        """Record a non-decreasing run of samples in one call.

        Equivalent to appending each pair in order — the vector
        engine's fast path commits a whole region of analytically
        resolved governor decisions this way.  Monotonicity is checked
        over the run and against the existing tail before anything
        lands.
        """
        if len(times) != len(values):
            raise SimulationError(
                f"time series {self.name!r}: extend got {len(times)} "
                f"times but {len(values)} values")
        if not times:
            return
        prev = self._times[-1] if self._times else float("-inf")
        for time in times:
            if time < prev:
                raise SimulationError(
                    f"time series {self.name!r}: time went backwards "
                    f"({time:.6f} < {prev:.6f})")
            prev = time
        self._times.extend(times)
        self._values.extend(float(value) for value in values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        """Plain (unweighted) mean of the samples."""
        if not self._values:
            raise SimulationError(
                f"time series {self.name!r} is empty; no mean")
        return float(np.mean(self._values))

    def binned_mean(self, start: float, end: float,
                    bin_width: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Mean sample value per fixed-width bin; empty bins yield NaN."""
        ensure_positive(bin_width, "bin_width")
        if end <= start:
            raise SimulationError("binned_mean: end must be after start")
        edges = np.arange(start, end + bin_width * 1e-9, bin_width)
        if edges[-1] < end:
            edges = np.append(edges, end)
        centers = (edges[:-1] + edges[1:]) / 2.0
        times = self.times
        values = self.values
        means = np.full(len(centers), np.nan)
        for i in range(len(centers)):
            mask = (times > edges[i]) & (times <= edges[i + 1])
            if mask.any():
                means[i] = float(values[mask].mean())
        return centers, means


class TraceSet:
    """A named bundle of traces collected during one session.

    Acts as a small typed registry so session code can create traces
    lazily and analysis code can enumerate what was recorded.
    """

    def __init__(self) -> None:
        self._events: Dict[str, EventLog] = {}
        self._steps: Dict[str, StepSeries] = {}
        self._series: Dict[str, TimeSeries] = {}

    def event_log(self, name: str) -> EventLog:
        """Get or create the event log called ``name``."""
        if name not in self._events:
            self._events[name] = EventLog(name)
        return self._events[name]

    def step_series(self, name: str, initial: float = 0.0,
                    start_time: float = 0.0) -> StepSeries:
        """Get or create the step series called ``name``."""
        if name not in self._steps:
            self._steps[name] = StepSeries(name, initial, start_time)
        return self._steps[name]

    def time_series(self, name: str) -> TimeSeries:
        """Get or create the time series called ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    @property
    def event_log_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._events))

    @property
    def step_series_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._steps))

    @property
    def time_series_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._series))
