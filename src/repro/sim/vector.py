"""Lockstep vector session engine with a frame-coherence fast path.

The scalar path simulates one session as an object graph driven by a
private event heap.  This module adds a second execution engine that
(a) advances many sessions together over struct-of-arrays numpy state
and (b) skips event-heap work it can *prove* inert — while remaining
**byte-identical** to the scalar path in every observable output
(summaries, digests, checkpoints).  Equivalence, not speed, is the
acceptance bar; speed follows from how much proving beats doing.

Three layers
------------
:class:`VectorRunner`
    A :class:`~repro.sim.runner.SessionRunner` whose ``advance`` loop
    steps the heap one event at a time and, between events, consults an
    analytic *fast-forward controller* (below).  It also enables the
    compositor's frame-coherence fast path
    (:meth:`~repro.graphics.compositor.SurfaceManager
    .enable_coherence_fast_path`), so idle re-posts skip the
    blit/compare/copy of provably-identical frames.  The checkpoint
    and digest contract is inherited unchanged from the scalar runner
    — a vector checkpoint resumes on either engine.

The fast-forward controller
    Between heap events the only future work is the panel's V-Sync
    chain and the governor's decision chain — both periodic, both
    rescheduled by sequential float accumulation (``t + period``).
    When every app has no pending content, the compositor has no
    pending posts and the panel has no pending rate switch, the
    controller enumerates upcoming ticks of both chains and proves,
    tick by tick, that firing them would only perform bookkeeping it
    can replicate exactly:

    * a V-Sync tick with no posts and no due idle submission touches
      nothing but the V-Sync counter and its own reschedule;
    * a V-Sync tick whose only work is an **idle re-post** that the
      compositor's coherence fast path would absorb (coherent state,
      no dirty posts, no damaged surfaces, and the framebuffer's sole
      observer is the meter) performs a fixed, fully enumerable chain
      of bookkeeping — render/submission log appends, the redundant
      composition counters, the framebuffer generation bump, the
      meter's known-equal accounting — which the controller replays
      in bulk at commit time;
    * a governor tick whose replicated decision equals the panel's
      current target rate appends one decision-trace entry and
      reschedules (``set_refresh_rate`` to the current target is a
      no-op).

    Governor decisions for a whole run of ticks are priced in one
    vectorised pass — windowed content rates via
    :meth:`~repro.core.content_rate.ContentRateMeter
    .content_rates_batch` and section-table lookups via
    :meth:`~repro.core.section_table.SectionTable.lookup_batch`, both
    proven elementwise-identical to the scalar reads.  Anything the
    proof does not cover — another live heap event at or before a tick
    (content change, touch, scroll motion), an idle submission coming
    due, a decision that would change the rate, an exact
    V-Sync/decision time collision — is a *blocker*: enumeration stops
    strictly before it and the blocked tick fires normally through the
    heap.  Skipped ticks are committed through the components' own
    fast-forward hooks (:meth:`~repro.display.panel.DisplayPanel
    .fast_forward_vsyncs`, :meth:`~repro.sim.engine.PeriodicTask
    .fast_forward`, :meth:`~repro.core.governor.GovernorDriver
    .record_skipped_decisions`, :meth:`~repro.sim.engine.Simulator
    .credit_skipped`) in the chronological order of each chain's last
    skipped tick, which reproduces the heap's insertion-sequence
    tie-breaks exactly.

:class:`VectorEngine` / :func:`run_vector_batch`
    The lockstep layer: N eligible sessions advance together in fixed
    time slices over a shared ``(N, height, width, 3)`` uint8
    framebuffer block (one row per session, injected via
    :attr:`~repro.pipeline.builder.SessionBuilder
    .framebuffer_storage`), so a whole batch's pixel state lives in
    one contiguous allocation and batched sample extraction is a
    single stacked gather (:meth:`~repro.core.grid.GridSpec
    .sample_batch`).  Sessions the proofs do not cover
    (:func:`~repro.pipeline.eligibility.probe_vector_eligibility`)
    fall back to the scalar engine transparently, per session.
"""

from __future__ import annotations

import bisect

from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np
import numpy.typing as npt

from ..baselines.fixed import FixedRefreshGovernor
from ..core.governor import (
    GovernorPolicy,
    NaiveMatchGovernor,
    SectionBasedGovernor,
    TouchBoostGovernor,
)
from ..errors import ConfigurationError, SimulationError
from ..pipeline.builder import SessionBuilder
from ..pipeline.eligibility import probe_vector_eligibility
from ..pipeline.spec import SessionSpec
from ..units import ensure_positive
from .runner import SessionRunner

if TYPE_CHECKING:
    from ..apps.base import Application
    from ..display.panel import DisplayPanel
    from ..graphics.compositor import SurfaceManager
    from .session import SessionConfig, SessionResult

#: Session description accepted by the vector entry points.
VectorSource = Union["SessionConfig", SessionSpec]

#: Default lockstep slice.  Any value is equivalent (slice boundaries
#: only cap how far one fast-forward region may reach before the next
#: barrier), so the choice is purely a throughput knob: each barrier
#: costs one ``advance`` prologue plus one truncated fast-forward
#: region per session, and measured batch throughput on idle-heavy
#: workloads climbs until about a ten-second slice before flattening
#: out.  Sessions still march together — only at a coarser cadence.
DEFAULT_SLICE_S = 10.0


def _replicate_rates(policy: GovernorPolicy,
                     times: npt.NDArray[np.float64]
                     ) -> Optional[npt.NDArray[np.float64]]:
    """What ``policy.select_rate`` would return at each future time.

    Returns ``None`` when the policy is not one of the vectorizable
    builtins — the caller then treats every decision tick as a blocker
    (correct, just slower).  For the supported policies the result is
    **elementwise byte-identical** to calling ``select_rate`` at each
    time against the current (static-during-the-region) meter state:

    * ``fixed`` — a constant;
    * ``section`` — batched windowed content rates
      (``searchsorted`` == ``bisect`` on identical float64) fed
      through the batched table lookup (index = count of section
      highs <= rate, exactly the scalar half-open scan);
    * ``naive`` — first rate level >= content rate, via a left
      ``searchsorted`` over the sorted levels;
    * ``section+boost`` — the exact boost predicate
      ``time < boost_until`` selecting between the boost rate and the
      inner policy's replicated rates.
    """
    if isinstance(policy, FixedRefreshGovernor):
        return np.full(times.shape, policy.rate_hz, dtype=np.float64)
    if isinstance(policy, TouchBoostGovernor):
        inner = _replicate_rates(policy.inner, times)
        if inner is None:
            return None
        return np.where(times < policy.boost_until,
                        np.float64(policy.boost_rate_hz), inner)
    if isinstance(policy, SectionBasedGovernor):
        contents = policy.meter.content_rates_batch(
            times, policy.window_s)
        return policy.table.lookup_batch(contents)
    if isinstance(policy, NaiveMatchGovernor):
        contents = policy.meter.content_rates_batch(
            times, policy.window_s)
        levels = np.asarray(policy.rates, dtype=np.float64)
        index = np.minimum(
            np.searchsorted(levels, contents, side="left"),
            len(levels) - 1)
        return levels[index]
    return None


def _chain_times(start: float, period: float, until: float,
                 block: Optional[float]) -> List[float]:
    """Tick times of one periodic chain inside the region limits.

    Exactly the ticks the scalar loop would fire: ``start``,
    ``start + period``, … — :func:`numpy.add.accumulate` performs the
    same left-to-right pairwise float64 additions as the sequential
    ``t = t + period`` reschedules, so the values are bit-identical,
    and the plain-Python loop used for short chains performs literally
    those additions.  The two branches produce the same floats; the
    split is purely a constant-factor matter (numpy setup costs more
    than a dozen iterations of the loop, and governor chains are
    usually a handful of ticks).  Ticks are kept while ``t <= until``
    and, when a blocking event exists, ``t < block``.
    """
    if start > until or (block is not None and start >= block):
        return []
    count = int((until - start) / period) + 2
    if count <= 48:
        result: List[float] = []
        t = start
        while t <= until and (block is None or t < block):
            result.append(t)
            t = t + period
        return result
    steps = np.full(count, period, dtype=np.float64)
    steps[0] = start
    times = np.add.accumulate(steps)
    end = int(np.searchsorted(times, until, side="right"))
    if block is not None:
        end = min(end, int(np.searchsorted(times, block,
                                           side="left")))
    tail: List[float] = times[:end].tolist()
    return tail


def _first_due(times: List[float], start_index: int, last_post: float,
               threshold: float) -> int:
    """First index >= ``start_index`` whose tick is idle-submit due.

    Evaluates the exact scalar predicate
    ``times[i] - last_post >= threshold``.  Due ticks form a suffix of
    the list (float subtraction is monotone in the minuend), so the
    boundary is found by binary search; returns ``len(times)`` when no
    remaining tick is due.
    """
    lo, hi = start_index, len(times)
    while lo < hi:
        mid = (lo + hi) // 2
        if times[mid] - last_post >= threshold:
            hi = mid
        else:
            lo = mid + 1
    return lo


class VectorRunner(SessionRunner):
    """A session runner that proves ticks inert instead of firing them.

    Construction requires an eligible config
    (:func:`~repro.pipeline.eligibility.probe_vector_eligibility`);
    ineligible configs raise :class:`~repro.errors.ConfigurationError`
    listing every disqualifier — callers wanting transparent fallback
    use :func:`run_vector_session` or the batch layer.

    Everything observable — summaries, ``state_digest``, checkpoint
    documents, ``events_processed`` — is byte-identical to a scalar
    :class:`~repro.sim.runner.SessionRunner` over the same config.
    """

    def __init__(self, source: Union["SessionConfig", SessionBuilder]
                 ) -> None:
        config = source.config if isinstance(source, SessionBuilder) \
            else source
        verdict = probe_vector_eligibility(config)
        if not verdict.eligible:
            raise ConfigurationError(
                "config is not vector-eligible: "
                + "; ".join(verdict.reasons),
                context={"subsystem": "vector",
                         "reasons": list(verdict.reasons),
                         "codes": list(verdict.codes)})
        super().__init__(source)
        builder = self.builder
        self._compositor: "SurfaceManager" = builder._need(
            builder.compositor, "compositor")
        self._compositor.enable_coherence_fast_path()
        self._panel: "DisplayPanel" = builder._need(
            builder.panel, "panel")
        self._vec_driver = builder._need(builder.driver, "driver")
        apps: List["Application"] = [
            builder._need(builder.application, "application")]
        if builder.status_bar_app is not None:
            apps.append(builder.status_bar_app)
        self._apps: Tuple["Application", ...] = tuple(apps)
        # Idle-submission predicate inputs, with each threshold computed
        # by the exact float expression Application.on_vsync evaluates.
        self._idle_apps: Tuple[Tuple["Application", float], ...] = tuple(
            (app, (1.0 / app.profile.idle_submit_fps) - 1e-9)
            for app in self._apps if app.profile.idle_submit_fps > 0)
        self._framebuffer = builder._need(builder.framebuffer,
                                          "framebuffer")
        self._meter = builder._need(builder.meter, "meter")
        self._compositions_log = builder._need(builder.compositions,
                                               "compositions")
        # Bulk idle-submit skipping replays the coherence fast branch's
        # entire effect chain at commit time; that replay is complete
        # only when the framebuffer's sole observer is the meter and
        # the compositor's sole listener is the builder's composition
        # log.  Anything else watching updates (an OLED tracker, a
        # trace recorder) must see every tick — idle-due ticks then
        # block the region and fire through the heap as before.
        fb_listeners = self._framebuffer._listeners
        self._idle_skip_ok = (
            builder.oled_tracker is None
            and len(fb_listeners) == 1
            and getattr(fb_listeners[0], "__self__", None)
            is self._meter
            and len(self._compositor._listeners) == 1)
        self._skipped_ticks = 0
        self._skip_regions = 0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def skipped_ticks(self) -> int:
        """Ticks resolved analytically instead of fired off the heap."""
        return self._skipped_ticks

    @property
    def skip_regions(self) -> int:
        """Number of committed fast-forward regions."""
        return self._skip_regions

    # ------------------------------------------------------------------
    # The stepping loop
    # ------------------------------------------------------------------
    def advance(self, until_s: float,
                max_events: Optional[int] = None) -> int:
        """Advance to ``until_s`` via step-or-fast-forward.

        Counts analytically skipped ticks toward the returned total and
        the ``max_events`` storm bound — they stand for events the
        scalar engine would have fired.
        """
        if self._finished:
            raise SimulationError(
                "cannot advance a finished session runner")
        self.start()
        until = min(float(until_s), self.duration_s)
        if until <= self.now:
            return 0
        sim = self.sim
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                nxt = sim.peek_next_live()
                if nxt is not None and nxt.time <= until:
                    raise SimulationError(
                        f"event storm: slice to t={until:.6f}s "
                        f"exceeded {max_events} events (stalled at "
                        f"t={self.now:.6f}s)",
                        context={"subsystem": "runner",
                                 "sim_time_s": self.now,
                                 "max_events": max_events})
                sim.advance_clock(until)
                break
            skipped = self._fast_forward_once(until)
            if skipped:
                fired += skipped
                continue
            if sim.step_one(until):
                fired += 1
                continue
            sim.advance_clock(until)
            break
        return fired

    # ------------------------------------------------------------------
    # The fast-forward controller
    # ------------------------------------------------------------------
    def _fast_forward_once(self, until: float) -> int:
        """Skip one provably-inert run of ticks; 0 when none exists.

        See the module docstring for the full proof obligations.  Every
        check below either replicates a scalar predicate with the exact
        same float expression or conservatively declines (returning 0
        costs only speed, never correctness).
        """
        # The prologue runs once per potential region — after every
        # stepped event — so it reads the private fields its public
        # twins (``next_vsync_handle``, ``pending``, ``pending_rate_hz``,
        # ``has_pending_posts``, ``pending_changes``) wrap, skipping
        # ~10 property calls per invocation.
        panel = self._panel
        vsync = panel._next_vsync
        if (vsync is None or vsync._cancelled or vsync._fired
                or panel._pending_rate is not None):
            # No scheduled tick, or a latched switch applies at the
            # next real tick.
            return 0
        task = self._vec_driver._task
        if task is None:
            return 0
        decision = task._handle
        if decision is None or decision._cancelled or decision._fired:
            return 0
        if vsync.time > until and decision.time > until:
            # Both chains start beyond the slice — nothing to skip,
            # whatever the heap holds.  This is the common shape right
            # after a committed region consumed the slice.
            return 0
        if self._compositor._pending:
            # The next V-Sync composites (cheaply, via the coherence
            # fast path) — it is a real event.
            return 0
        for app in self._apps:
            if app._pending_changes > 0:
                return 0
        sim = self.sim
        block = sim.next_live_time_excluding(vsync, decision)

        # Idle re-posts are skippable too when the coherence fast
        # branch is guaranteed to absorb them: the compositor is
        # coherent with nothing dirty or damaged, and the effect chain
        # has no unknown observers (_idle_skip_ok).  Those guarantees
        # are stable across the whole region — skipped ticks post
        # nothing dirty and damage nothing.
        comp = self._compositor
        replicate_idle = (self._idle_skip_ok and comp._coherent
                          and not comp._pending_dirty
                          and not any(s.is_damaged
                                      for s in comp._surfaces))

        # Enumerate both periodic chains.  The sequential scalar loop
        # walks the merged order tick by tick, but every one of its
        # stopping conditions — t past until/block, an exact
        # V-Sync/decision collision, an idle submission the replay
        # cannot cover — cuts *both* chains at one time, so the chains
        # can be generated wholesale and truncated.  Tick times come
        # from ``np.add.accumulate``, which produces the exact float64
        # sequence of the scalar ``t = t + period`` reschedules
        # (left-to-right pairwise addition either way).
        vsync_period = 1.0 / panel.refresh_rate_hz
        decision_period = task.period
        v_times = _chain_times(vsync.time, vsync_period, until, block)
        g_times = _chain_times(decision.time, decision_period, until,
                               block)
        if g_times and v_times:
            # An exact V-Sync/decision collision: relative order is
            # owned by heap insertion sequence, which analysis cannot
            # see — stop both chains strictly before it.  Probe each
            # decision tick (the short chain) into the sorted V-Sync
            # chain; the first hit is the earliest collision.
            for index, tick in enumerate(g_times):
                at = bisect.bisect_left(v_times, tick)
                if at < len(v_times) and v_times[at] == tick:
                    del v_times[at:]
                    del g_times[index:]
                    break

        # Replay the idle-submission predicate per app.  Posts of
        # different apps are independent (each app's due test reads
        # only its own last-post time), and for one app the due ticks
        # form a suffix of the remaining region (``tv - last`` is
        # non-decreasing in ``tv``), so each post is found by binary
        # search with the exact scalar predicate instead of a per-tick
        # scan.
        idle_ticks: List[float] = []
        idle_posts: List[List[float]] = [
            [] for _ in self._idle_apps]
        if self._idle_apps and v_times:
            if not replicate_idle:
                # Stop both chains strictly before the first tick any
                # app would post at — that tick is a real event.
                first_due = None
                for app, threshold in self._idle_apps:
                    index = _first_due(v_times, 0, app.last_post_time,
                                       threshold)
                    if index < len(v_times) and (
                            first_due is None
                            or v_times[index] < first_due):
                        first_due = v_times[index]
                if first_due is not None:
                    del v_times[bisect.bisect_left(v_times,
                                                   first_due):]
                    del g_times[bisect.bisect_left(g_times,
                                                   first_due):]
            else:
                for slot, (app, threshold) in enumerate(
                        self._idle_apps):
                    last = app.last_post_time
                    posts = idle_posts[slot]
                    index = 0
                    while True:
                        index = _first_due(v_times, index, last,
                                           threshold)
                        if index == len(v_times):
                            break
                        last = v_times[index]
                        posts.append(last)
                        index += 1
                if len(self._idle_apps) == 1:
                    idle_ticks = idle_posts[0]
                else:
                    merged = set()
                    for posts in idle_posts:
                        merged.update(posts)
                    idle_ticks = sorted(merged)
        g_rates: List[float] = []
        cut: Optional[float] = None
        if g_times:
            policy = self._vec_driver.policy
            target = panel.target_rate_hz
            if isinstance(policy, FixedRefreshGovernor):
                # Constant decision: no arrays to build — either every
                # tick matches the target or the first one blocks.
                if policy.rate_hz == target:
                    g_rates = [policy.rate_hz] * len(g_times)
                else:
                    cut = g_times[0]
                    g_times = []
            else:
                rates = _replicate_rates(
                    policy, np.asarray(g_times, dtype=np.float64))
                if rates is None:
                    # Unreplicable policy: every decision tick blocks,
                    # and V-Syncs after the first decision see unknown
                    # state.
                    cut = g_times[0]
                    g_times = []
                else:
                    g_rates = [float(r) for r in rates.tolist()]
                    mismatch = next(
                        (i for i, rate in enumerate(g_rates)
                         if rate != target), None)
                    if mismatch is not None:
                        # This decision changes the rate — a real
                        # event — and later V-Syncs run under the new
                        # rate.
                        cut = g_times[mismatch]
                        g_times = g_times[:mismatch]
                        g_rates = g_rates[:mismatch]
        if cut is not None:
            del v_times[bisect.bisect_left(v_times, cut):]
            if idle_ticks:
                idle_ticks = idle_ticks[
                    :bisect.bisect_left(idle_ticks, cut)]
                idle_posts = [
                    posts[:bisect.bisect_left(posts, cut)]
                    for posts in idle_posts]
        count = len(v_times) + len(g_times)
        if count == 0:
            return 0

        # Commit.  Final reschedules are allocated in chronological
        # order of each chain's last skipped tick — the order the
        # scalar run would have allocated them in, preserving heap
        # insertion-sequence tie-breaks for any later collision.
        chains: List[Tuple[float, str]] = []
        if v_times:
            chains.append((v_times[-1], "v"))
        if g_times:
            chains.append((g_times[-1], "g"))
        chains.sort()
        for last, kind in chains:
            if kind == "v":
                panel.fast_forward_vsyncs(len(v_times), last)
                if idle_ticks:
                    self._replay_idle_posts(idle_ticks, idle_posts)
            else:
                task.fast_forward(len(g_times), last)
                self._vec_driver.record_skipped_decisions(
                    g_times, g_rates)
        sim.advance_clock(chains[-1][0])
        sim.credit_skipped(count)
        self._skipped_ticks += count
        self._skip_regions += 1
        return count

    def _replay_idle_posts(self, tick_times: List[float],
                           posts_per_app: List[List[float]]) -> None:
        """Land the effect chain of skipped idle-submit ticks in bulk.

        Each tick in ``tick_times`` stands for one V-Sync at which one
        or more apps re-posted an unchanged frame and the compositor's
        coherence fast branch absorbed it.  The scalar sequence per
        tick is: the posting app appends to its render and submission
        logs and advances its last-post time; the compositor
        acknowledges the post (a no-op here — the region precondition
        guarantees no surface is damaged, so posted and damage
        generations already agree), clears pending, calls
        ``framebuffer.write_unchanged`` (generation bump, timestamp,
        meter fast branch: frame-log append, known-equal comparison,
        redundant capture), bumps both composition counters and
        notifies the composition log with ``redundant=True``.  All of
        it is appends of known timestamps and counter arithmetic, so
        the whole region lands as a handful of bulk extends.
        """
        n = len(tick_times)
        for (app, _), times in zip(self._idle_apps, posts_per_app):
            if not times:
                continue
            app.renders.extend(times)
            app.submissions.extend(times)
            app._last_post_time = times[-1]
        comp = self._compositor
        comp._compositions += n
        comp._redundant_compositions += n
        self._compositions_log.extend(tick_times)
        framebuffer = self._framebuffer
        framebuffer._generation += n
        framebuffer._last_update_time = tick_times[-1]
        framebuffer._last_write_unchanged = True
        meter = self._meter
        meter._frames.extend(tick_times)
        if meter.config.min_changed_cells == 1:
            meter.comparator.note_equal(n)
        meter._store.note_redundant_capture(n)


# ----------------------------------------------------------------------
# Lockstep batches
# ----------------------------------------------------------------------
class VectorEngine:
    """Advance N eligible sessions in lockstep over shared SoA state.

    All sessions' framebuffers with the same geometry live as rows of
    one contiguous ``(N, height, width, 3)`` uint8 block, injected
    into each :class:`~repro.pipeline.builder.SessionBuilder` before
    its display stage runs.  :meth:`run` drives every session through
    the same sequence of time slices; each session's
    :class:`VectorRunner` does its own event stepping and fast
    forwarding inside the slice, so heterogeneous event streams never
    block each other.

    Every source must be vector-eligible;
    :class:`~repro.errors.ConfigurationError` (listing the offending
    indices and reasons) otherwise.  Use :func:`run_vector_batch` for
    transparent per-session fallback.
    """

    def __init__(self, sources: Sequence[VectorSource], *,
                 slice_s: float = DEFAULT_SLICE_S) -> None:
        if not sources:
            raise ConfigurationError(
                "VectorEngine needs at least one session")
        self.slice_s = ensure_positive(slice_s, "slice_s")
        configs: List["SessionConfig"] = [
            source.to_config() if isinstance(source, SessionSpec)
            else source for source in sources]
        problems: List[str] = []
        for index, config in enumerate(configs):
            verdict = probe_vector_eligibility(config)
            if not verdict.eligible:
                problems.append(
                    f"#{index}: " + "; ".join(verdict.reasons))
        if problems:
            raise ConfigurationError(
                "sessions are not vector-eligible: "
                + " | ".join(problems),
                context={"subsystem": "vector"})
        # Group by framebuffer geometry; each group shares one block.
        by_shape: Dict[Tuple[int, int], List[int]] = {}
        for index, config in enumerate(configs):
            by_shape.setdefault(
                self._geometry(config), []).append(index)
        self._blocks: List[Tuple[npt.NDArray[np.uint8], List[int]]] = []
        runners: List[Optional[VectorRunner]] = [None] * len(configs)
        for (height, width), indices in by_shape.items():
            pixel_block: npt.NDArray[np.uint8] = np.zeros(
                (len(indices), height, width, 3), dtype=np.uint8)
            for row, index in enumerate(indices):
                builder = SessionBuilder(configs[index])
                builder.framebuffer_storage = pixel_block[row]
                runners[index] = VectorRunner(builder)
            self._blocks.append((pixel_block, indices))
        assert all(runner is not None for runner in runners)
        self.runners: List[VectorRunner] = [
            runner for runner in runners if runner is not None]

    @staticmethod
    def _geometry(config: "SessionConfig") -> Tuple[int, int]:
        """(height, width) of the session's framebuffer — the same
        arithmetic as ``SessionBuilder.build_display``."""
        spec = config.panel
        return (max(8, spec.height // config.resolution_divisor),
                max(8, spec.width // config.resolution_divisor))

    # ------------------------------------------------------------------
    @property
    def session_count(self) -> int:
        """Number of sessions advancing in lockstep."""
        return len(self.runners)

    def framebuffer_samples(self) -> List[npt.NDArray[np.uint8]]:
        """One stacked grid gather per block: ``(n, samples, 3)``.

        The batched view of every session's framebuffer at its
        block's sample points (the first session's meter grid), via
        :meth:`~repro.core.grid.GridSpec.sample_batch` — a single
        advanced-indexing gather over the whole block instead of N
        per-session extractions.
        """
        views: List[npt.NDArray[np.uint8]] = []
        for pixel_block, indices in self._blocks:
            grid = self.runners[indices[0]].builder._need(
                self.runners[indices[0]].builder.meter, "meter").grid
            views.append(grid.sample_batch(pixel_block))
        return views

    def run(self) -> List["SessionResult"]:
        """Advance every session to completion, in lockstep slices."""
        horizon = max(runner.duration_s for runner in self.runners)
        t = 0.0
        while t < horizon:
            t = min(t + self.slice_s, horizon)
            for runner in self.runners:
                if not runner.done:
                    runner.advance(t)
        return [runner.finish() for runner in self.runners]


def run_vector_session(source: VectorSource) -> "SessionResult":
    """Run one session on the vector engine, falling back to scalar.

    The transparent entry point: eligible configs run through a
    :class:`VectorRunner`, ineligible ones through the scalar
    :class:`~repro.sim.runner.SessionRunner` — byte-identical results
    either way.
    """
    config = source.to_config() if isinstance(source, SessionSpec) \
        else source
    if probe_vector_eligibility(config).eligible:
        return VectorRunner(config).run()
    return SessionRunner(config).run()


def run_vector_batch(sources: Sequence[VectorSource], *,
                     slice_s: float = DEFAULT_SLICE_S
                     ) -> List[Dict[str, Any]]:
    """Batch payloads (``{"entry", "events"}``) for many sessions.

    Eligible sessions advance in one lockstep :class:`VectorEngine`;
    ineligible ones fall back per-session to the scalar runner.
    Results come back in input order in the batch wire form
    (:func:`~repro.sim.batch.summarize_result` entries), so
    :func:`~repro.sim.batch.run_batch` can merge them into its result
    slots unchanged.  Eligible sessions never carry telemetry, so
    their captured event streams are always empty.
    """
    from .batch import summarize_result

    if not sources:
        raise ConfigurationError(
            "run_vector_batch needs at least one session")
    configs: List["SessionConfig"] = [
        source.to_config() if isinstance(source, SessionSpec)
        else source for source in sources]
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(configs)
    eligible: List[int] = []
    for index, config in enumerate(configs):
        try:
            if probe_vector_eligibility(config).eligible:
                eligible.append(index)
        except Exception:  # noqa: BLE001 - probe failure => scalar path
            pass
    if eligible:
        engine = VectorEngine([configs[i] for i in eligible],
                              slice_s=slice_s)
        for index, result in zip(eligible, engine.run()):
            payloads[index] = {"entry": summarize_result(result),
                               "events": []}
    for index, config in enumerate(configs):
        if payloads[index] is None:
            result = SessionRunner(config).run()
            payloads[index] = {"entry": summarize_result(result),
                               "events": []}
    return [payload for payload in payloads if payload is not None]
