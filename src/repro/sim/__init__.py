"""Discrete-event simulation substrate.

This package provides the event-driven clock every other subsystem hangs
off: the :class:`~repro.sim.engine.Simulator` core, periodic-task helpers,
and trace-recording utilities used to collect the time series that the
paper's figures are built from.
"""

from .engine import EventHandle, PeriodicTask, Simulator
from .tracing import EventLog, StepSeries, TimeSeries, TraceSet

__all__ = [
    "EventHandle",
    "EventLog",
    "PeriodicTask",
    "Simulator",
    "StepSeries",
    "TimeSeries",
    "TraceSet",
]
