"""Discrete-event simulation substrate.

This package provides the event-driven clock every other subsystem hangs
off: the :class:`~repro.sim.engine.Simulator` core, periodic-task helpers,
and trace-recording utilities used to collect the time series that the
paper's figures are built from.  Two execution engines drive sessions
over that substrate: the scalar :class:`~repro.sim.runner.SessionRunner`
and the lockstep :mod:`~repro.sim.vector` engine (byte-identical
results; see ``docs/architecture.md``).
"""

from typing import Any

from .engine import EventHandle, PeriodicTask, Simulator
from .tracing import EventLog, StepSeries, TimeSeries, TraceSet

#: Vector-engine names exported lazily (PEP 562): :mod:`repro.sim` is
#: imported by the lowest layers of the package, and the vector engine
#: sits at the top of the stack — an eager import here would be
#: circular.  ``from repro.sim import VectorRunner`` still works.
_VECTOR_EXPORTS = ("VectorEngine", "VectorRunner",
                   "run_vector_batch", "run_vector_session")


def __getattr__(name: str) -> Any:
    if name in _VECTOR_EXPORTS:
        from . import vector

        return getattr(vector, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EventHandle",
    "EventLog",
    "PeriodicTask",
    "Simulator",
    "StepSeries",
    "TimeSeries",
    "TraceSet",
    "VectorEngine",
    "VectorRunner",
    "run_vector_batch",
    "run_vector_session",
]
