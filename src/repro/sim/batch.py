"""Hardened parallel batch execution of sessions.

The 30-app survey is embarrassingly parallel (every session is an
independent simulation), and multi-seed replication multiplies it
further.  This module fans session configurations out over a process
pool and returns *summaries* — full :class:`SessionResult` objects hold
live simulator state (listeners, closures) that does not cross process
boundaries, and batch workflows only need the aggregate numbers anyway.

Summaries are exactly :func:`repro.analysis.export.session_summary_dict`
plus the traces the figures aggregate (binned rates and power), all
plain numpy/python data.

Resilience
----------
One misbehaving session must never take down a 30-app × multi-seed
sweep.  Every config therefore runs *error-isolated*: a session that
raises produces a structured **failure record** (see
:func:`make_failure_record`) in its slot of the result list instead of
poisoning the whole pool, optionally after ``retries`` re-attempts.
Results always come back in input order, one entry per config; use
:func:`is_failure_record` to separate the two kinds and
:func:`batch_failure_summary` for the end-of-batch report.  Callers
that prefer the old fail-fast behaviour pass ``on_error="raise"``.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.export import session_summary_dict
from ..errors import ConfigurationError
from ..telemetry.metrics import MetricsRegistry
from .session import SessionConfig, run_session

#: ``on_error`` modes of :func:`run_batch`.
ON_ERROR_CHOICES = ("record", "raise")


def run_session_summary(config: SessionConfig) -> Dict:
    """Run one session and return its plain-data summary.

    Module-level (picklable) so it can be a multiprocessing worker.
    """
    result = run_session(config)
    summary = session_summary_dict(result)
    centers, power = result.power_trace(bin_width_s=1.0)
    _, content = result.meaningful_compositions.binned_rate(
        0.0, result.duration_s, 1.0)
    summary["trace"] = {
        "time_s": centers.tolist(),
        "power_mw": power.tolist(),
        "content_fps": content.tolist(),
    }
    return summary


# ----------------------------------------------------------------------
# Failure records
# ----------------------------------------------------------------------

def make_failure_record(index: int, config: SessionConfig,
                        error: BaseException,
                        attempts: int) -> Dict:
    """Structured description of one failed session.

    Keys: ``batch_failed`` (always True — the discriminator), config
    identity (``config_index``, ``app``, ``governor``, ``seed``,
    ``duration_s``), the error (``error_type``, ``error_message``,
    ``context`` — the structured :class:`~repro.errors.ReproError`
    context when available), and ``attempts`` (runs consumed including
    retries).
    """
    app = config.app if isinstance(config.app, str) else \
        getattr(config.app, "name", repr(config.app))
    return {
        "batch_failed": True,
        "config_index": index,
        "app": app,
        "governor": config.governor,
        "seed": config.seed,
        "duration_s": config.duration_s,
        "error_type": type(error).__name__,
        "error_message": str(error),
        "context": dict(getattr(error, "context", None) or {}),
        "attempts": attempts,
    }


def is_failure_record(entry: Dict) -> bool:
    """True when a :func:`run_batch` entry is a failure record."""
    return bool(entry.get("batch_failed", False))


def batch_metrics(results: Sequence[Dict]) -> MetricsRegistry:
    """Batch-level counters under ``batch.*``, as a metrics registry.

    Counted: ``batch.sessions_total`` / ``_succeeded`` / ``_failed``,
    ``batch.retry_attempts`` (extra attempts consumed by failing
    sessions beyond their first run) and ``batch.timeouts`` (failures
    whose error was the pool's per-session wall-clock budget).
    """
    metrics = MetricsRegistry()
    total = metrics.counter("batch.sessions_total")
    succeeded = metrics.counter("batch.sessions_succeeded")
    failed = metrics.counter("batch.sessions_failed")
    retries = metrics.counter("batch.retry_attempts")
    timeouts = metrics.counter("batch.timeouts")
    for entry in results:
        total.inc()
        if not is_failure_record(entry):
            succeeded.inc()
            continue
        failed.inc()
        retries.inc(max(0, entry.get("attempts", 1) - 1))
        if entry.get("error_type") == "TimeoutError":
            timeouts.inc()
    return metrics


def batch_failure_summary(results: Sequence[Dict]) -> Dict:
    """End-of-batch report: totals plus every failure record.

    Returns ``{"total", "succeeded", "failed", "failures",
    "counters"}`` where ``failures`` preserves input order and
    ``counters`` is the :func:`batch_metrics` registry snapshot
    (flat ``batch.*`` name -> count).
    """
    failures = [r for r in results if is_failure_record(r)]
    counters = dict(batch_metrics(results).as_dict()["counters"])
    return {
        "total": len(results),
        "succeeded": len(results) - len(failures),
        "failed": len(failures),
        "failures": failures,
        "counters": counters,
    }


def format_batch_failures(results: Sequence[Dict]) -> str:
    """Human-readable end-of-batch failure summary (one line each)."""
    summary = batch_failure_summary(results)
    lines = [f"batch: {summary['succeeded']}/{summary['total']} "
             f"sessions succeeded"]
    for record in summary["failures"]:
        where = ""
        context = record["context"]
        if context:
            inside = ", ".join(f"{k}={v}" for k, v in context.items())
            where = f" [{inside}]"
        lines.append(
            f"  #{record['config_index']} {record['app']} "
            f"({record['governor']}, seed {record['seed']}): "
            f"{record['error_type']}: {record['error_message']}"
            f"{where} after {record['attempts']} attempt(s)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Isolated execution
# ----------------------------------------------------------------------

def _run_isolated(index: int, config: SessionConfig,
                  retries: int) -> Dict:
    """Run one config, catching anything it raises.

    Module-level (picklable) pool worker.  Returns either a summary or
    a failure record; never raises.  A deterministic simulation fails
    identically on every attempt, so retries mainly cover sessions made
    flaky by their environment (pool pressure, memory) — but they are
    honoured uniformly so callers get one knob.
    """
    error: Optional[BaseException] = None
    attempts = 0
    for attempts in range(1, retries + 2):
        try:
            return run_session_summary(config)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            error = exc
    assert error is not None
    return make_failure_record(index, config, error, attempts)


def _run_strict(index: int, config: SessionConfig,
                retries: int) -> Dict:
    """Pool worker for ``on_error="raise"``: last failure propagates."""
    error: Optional[BaseException] = None
    for _ in range(retries + 1):
        try:
            return run_session_summary(config)
        except Exception as exc:  # noqa: BLE001
            error = exc
    assert error is not None
    raise error


def run_batch(configs: Sequence[SessionConfig],
              processes: Optional[int] = None,
              *,
              retries: int = 0,
              timeout_s: Optional[float] = None,
              on_error: str = "record",
              progress: Optional[Callable[[int, int, Dict], None]]
              = None) -> List[Dict]:
    """Run many sessions, in parallel when it pays off.

    Parameters
    ----------
    configs:
        The sessions to run; results come back in the same order, one
        entry per config (summary dict or failure record).
    processes:
        Worker count.  ``None`` picks ``min(cpu_count, len(configs))``;
        1 (or a single config) runs in-process, which is also the
        deterministic fallback on platforms without fork.  The serial
        path applies the same isolation semantics as the pool.
    retries:
        Extra attempts per failing session before recording (or
        raising) its failure.
    timeout_s:
        Per-session wall-clock budget, enforced in pooled mode: a
        session still running after its budget yields a timeout failure
        record (its worker is left to finish in the background).  Not
        enforceable in-process, so the serial path ignores it.
    on_error:
        ``"record"`` (default) turns a failing session into a
        structured failure record in its result slot; ``"raise"``
        restores fail-fast propagation of the first error.
    progress:
        Called as ``progress(done, total, entry)`` after each session
        resolves (in input order), where ``entry`` is that session's
        summary or failure record.  Drives batch progress reporting —
        the CLI prints per-session status lines from exactly this
        hook.  A raising callback propagates; keep it cheap.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError("run_batch needs at least one config")
    if processes is None:
        processes = min(multiprocessing.cpu_count(), len(configs))
    if processes < 1:
        raise ConfigurationError(f"processes must be >= 1, got "
                                 f"{processes}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(
            f"timeout_s must be > 0, got {timeout_s}")
    if on_error not in ON_ERROR_CHOICES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_CHOICES}, "
            f"got {on_error!r}")
    worker = _run_isolated if on_error == "record" else _run_strict
    total = len(configs)

    def _note(done: int, entry: Dict) -> None:
        if progress is not None:
            progress(done, total, entry)

    if processes == 1 or total == 1:
        return _run_serial(configs, worker, retries, _note)
    try:
        pool = multiprocessing.Pool(processes)
    except (OSError, ValueError):
        # Pool creation can fail in constrained sandboxes; the batch
        # still completes — serially, with identical isolation.
        return _run_serial(configs, worker, retries, _note)
    with pool:
        pending = [pool.apply_async(worker, (index, config, retries))
                   for index, config in enumerate(configs)]
        results: List[Dict] = []
        for index, (config, handle) in enumerate(zip(configs, pending)):
            try:
                results.append(handle.get(timeout_s))
            except multiprocessing.TimeoutError:
                record = make_failure_record(
                    index, config,
                    TimeoutError(f"session exceeded {timeout_s:g} s"),
                    attempts=1)
                if on_error == "raise":
                    pool.terminate()
                    raise TimeoutError(
                        f"session #{index} ({record['app']}) exceeded "
                        f"{timeout_s:g} s") from None
                results.append(record)
            _note(index + 1, results[-1])
        return results


def _run_serial(configs: Sequence[SessionConfig], worker,
                retries: int,
                note: Callable[[int, Dict], None]) -> List[Dict]:
    """The in-process batch path (also the no-fork fallback)."""
    results: List[Dict] = []
    for index, config in enumerate(configs):
        results.append(worker(index, config, retries))
        note(index + 1, results[-1])
    return results
