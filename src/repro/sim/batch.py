"""Parallel batch execution of sessions.

The 30-app survey is embarrassingly parallel (every session is an
independent simulation), and multi-seed replication multiplies it
further.  This module fans session configurations out over a process
pool and returns *summaries* — full :class:`SessionResult` objects hold
live simulator state (listeners, closures) that does not cross process
boundaries, and batch workflows only need the aggregate numbers anyway.

Summaries are exactly :func:`repro.analysis.export.session_summary_dict`
plus the traces the figures aggregate (binned rates and power), all
plain numpy/python data.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence

from ..analysis.export import session_summary_dict
from ..errors import ConfigurationError
from .session import SessionConfig, run_session


def run_session_summary(config: SessionConfig) -> Dict:
    """Run one session and return its plain-data summary.

    Module-level (picklable) so it can be a multiprocessing worker.
    """
    result = run_session(config)
    summary = session_summary_dict(result)
    centers, power = result.power_trace(bin_width_s=1.0)
    _, content = result.meaningful_compositions.binned_rate(
        0.0, result.duration_s, 1.0)
    summary["trace"] = {
        "time_s": centers.tolist(),
        "power_mw": power.tolist(),
        "content_fps": content.tolist(),
    }
    return summary


def run_batch(configs: Sequence[SessionConfig],
              processes: Optional[int] = None) -> List[Dict]:
    """Run many sessions, in parallel when it pays off.

    Parameters
    ----------
    configs:
        The sessions to run; results come back in the same order.
    processes:
        Worker count.  ``None`` picks ``min(cpu_count, len(configs))``;
        1 (or a single config) runs in-process, which is also the
        deterministic fallback on platforms without fork.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError("run_batch needs at least one config")
    if processes is None:
        processes = min(multiprocessing.cpu_count(), len(configs))
    if processes < 1:
        raise ConfigurationError(f"processes must be >= 1, got "
                                 f"{processes}")
    if processes == 1 or len(configs) == 1:
        return [run_session_summary(config) for config in configs]
    try:
        with multiprocessing.Pool(processes) as pool:
            return pool.map(run_session_summary, configs)
    except (OSError, ValueError):
        # Pool creation can fail in constrained sandboxes; the batch
        # still completes, just serially.
        return [run_session_summary(config) for config in configs]
