"""Hardened parallel batch execution of sessions.

The 30-app survey is embarrassingly parallel (every session is an
independent simulation), and multi-seed replication multiplies it
further.  This module fans session configurations out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and returns
*summaries* — full :class:`SessionResult` objects hold live simulator
state (listeners, closures) that does not cross process boundaries, and
batch workflows only need the aggregate numbers anyway.

Summaries are exactly :func:`repro.analysis.export.session_summary_dict`
plus the traces the figures aggregate (binned rates and power), all
plain numpy/python data.

Parallelism and determinism
---------------------------
``run_batch(configs, workers=N)`` dispatches configs to a process pool
using the **spawn** start method by default (safe on every platform; no
reliance on fork-inherited state), grouped into chunks so pool workers
amortize their startup over many sessions.  Results are merged
deterministically: every summary lands in its config's input slot, the
batch-level metrics registry is folded in input order
(:meth:`~repro.telemetry.metrics.MetricsRegistry.merge_snapshot`), and
captured telemetry streams are interleaved on the simulation clock
(:func:`~repro.telemetry.events.interleave_streams`).  A parallel run
therefore produces output **byte-identical** to the serial path,
regardless of worker count or completion order — the property the
equivalence tests in ``tests/test_parallel_batch.py`` pin down and
``docs/performance.md`` documents.

Sessions cross the process boundary as declarative
:class:`~repro.pipeline.spec.SessionSpec` documents, and every chunk
ships the :mod:`repro.pipeline` registries' extension entries along
(:func:`_registry_plugins`), so a governor/app/panel registered in the
parent process is selectable inside spawned workers too.

Resilience
----------
One misbehaving session must never take down a 30-app × multi-seed
sweep.  Every config therefore runs *error-isolated inside its worker*:
a session that raises produces a structured **failure record** (see
:func:`make_failure_record`) in its slot of the result list instead of
poisoning the whole pool, optionally after ``retries`` re-attempts.  A
worker that *dies outright* (killed, segfault, hard exit) breaks the
shared pool; the runner then re-runs every unresolved config in a fresh
single-worker pool, so only the lethal config is recorded as a
:class:`~repro.errors.WorkerCrashError` failure and its innocent
pool-mates still complete.  Results always come back in input order,
one entry per config; use :func:`is_failure_record` to separate the two
kinds and :func:`batch_failure_summary` for the end-of-batch report.
Callers that prefer the old fail-fast behaviour pass
``on_error="raise"``.
"""

from __future__ import annotations

import dataclasses
import json
import math
import multiprocessing
import pathlib
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from ..analysis.export import session_summary_dict
from ..errors import ConfigurationError, WorkerCrashError
from ..pipeline.apps import APPS
from ..pipeline.governors import GOVERNORS
from ..pipeline.panels import PANELS
from ..pipeline.spec import SessionSpec
from ..telemetry.events import interleave_streams
from ..telemetry.metrics import MetricsRegistry
from .session import SessionConfig, run_session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import ResultCache

#: What one batch item looks like on the wire: ``(input slot, spec
#: document | config object)``.  Specs are the normal form (see
#: :func:`_encode_item`); the config object is the fallback for
#: configs the spec codec cannot express losslessly.
BatchItem = Tuple[int, Union[Dict, SessionConfig]]

#: Registry extension entries shipped alongside every pooled chunk:
#: ``(registry kind, ((key, factory), ...))`` pairs.  Spawned workers
#: hold only the builtin registrations; restoring these is what makes
#: a governor (or app, or panel) registered in the parent process
#: selectable inside the pool.  Factories cross the boundary by
#: pickle-by-reference, hence the module-level-factory rule in
#: :mod:`repro.pipeline.registry`.
PluginEntries = Tuple[Tuple[str, Tuple], ...]

_PLUGIN_REGISTRIES = {
    "governors": GOVERNORS,
    "apps": APPS,
    "panels": PANELS,
}

#: ``on_error`` modes of :func:`run_batch`.
ON_ERROR_CHOICES = ("record", "raise")

#: ``engine`` modes of :func:`run_batch` (and the CLI ``--engine``
#: flag).  ``scalar`` runs every session on the classic per-session
#: object-graph path; ``vector`` and ``auto`` route vector-eligible
#: sessions (see :func:`repro.pipeline.eligibility
#: .probe_vector_eligibility`) through the lockstep vector engine
#: first — ineligible sessions always fall back to the scalar path, so
#: the two non-scalar modes differ only in intent, not behaviour.
#: Results are byte-identical across all three modes.
ENGINE_CHOICES = ("auto", "scalar", "vector")

#: Multiprocessing start methods :func:`run_batch` accepts.  ``spawn``
#: is the default: it works on every platform and never inherits
#: parent state, so the pooled path stays correct wherever the serial
#: path is.
MP_CONTEXT_CHOICES = ("spawn", "fork", "forkserver")

#: Seconds the pool gets to prove it can start a worker at all before
#: the batch falls back to the serial path (constrained sandboxes).
_POOL_PROBE_TIMEOUT_S = 60.0


def summarize_result(result) -> Dict:
    """Plain-data summary of one finished session (summary + traces).

    The batch runner's per-session wire form, shared with the session
    service (``repro.service``) so a job completed by a worker pool and
    a job completed by the service serialize identically.
    """
    summary = session_summary_dict(result)
    centers, power = result.power_trace(bin_width_s=1.0)
    _, content = result.meaningful_compositions.binned_rate(
        0.0, result.duration_s, 1.0)
    summary["trace"] = {
        "time_s": centers.tolist(),
        "power_mw": power.tolist(),
        "content_fps": content.tolist(),
    }
    return summary


#: Backwards-compatible private alias (pre-service name).
_summarize = summarize_result


def run_session_summary(config: SessionConfig) -> Dict:
    """Run one session and return its plain-data summary.

    Module-level (picklable) so it can be a multiprocessing worker.
    """
    return _summarize(run_session(config))


# ----------------------------------------------------------------------
# Failure records
# ----------------------------------------------------------------------

def make_failure_record(index: int,
                        config: Union[Dict, "SessionConfig"],
                        error: BaseException,
                        attempts: int) -> Dict:
    """Structured description of one failed session.

    Keys: ``batch_failed`` (always True — the discriminator), config
    identity (``config_index``, ``app``, ``governor``, ``seed``,
    ``duration_s``), the error (``error_type``, ``error_message``,
    ``context`` — the structured :class:`~repro.errors.ReproError`
    context when available), and ``attempts`` (runs consumed including
    retries).  ``config`` may be a live config or its wire-form spec
    document (a session whose spec fails to decode in a worker never
    becomes a config, but still deserves an identifiable record).
    """
    return {
        "batch_failed": True,
        "config_index": index,
        **_payload_identity(config),
        "error_type": type(error).__name__,
        "error_message": str(error),
        "context": dict(getattr(error, "context", None) or {}),
        "attempts": attempts,
    }


def is_failure_record(entry: Dict) -> bool:
    """True when a :func:`run_batch` entry is a failure record."""
    return bool(entry.get("batch_failed", False))


def batch_metrics(results: Sequence[Dict]) -> MetricsRegistry:
    """Batch-level counters under ``batch.*``, as a metrics registry.

    Counted: ``batch.sessions_total`` / ``_succeeded`` / ``_failed``,
    ``batch.retry_attempts`` (extra attempts consumed by failing
    sessions beyond their first run), ``batch.timeouts`` (failures
    whose error was the pool's per-session wall-clock budget) and
    ``batch.worker_crashes`` (failures where the worker process died).
    """
    metrics = MetricsRegistry()
    total = metrics.counter("batch.sessions_total")
    succeeded = metrics.counter("batch.sessions_succeeded")
    failed = metrics.counter("batch.sessions_failed")
    retries = metrics.counter("batch.retry_attempts")
    timeouts = metrics.counter("batch.timeouts")
    crashes = metrics.counter("batch.worker_crashes")
    for entry in results:
        total.inc()
        if not is_failure_record(entry):
            succeeded.inc()
            continue
        failed.inc()
        retries.inc(max(0, entry.get("attempts", 1) - 1))
        if entry.get("error_type") == "TimeoutError":
            timeouts.inc()
        if entry.get("error_type") == "WorkerCrashError":
            crashes.inc()
    return metrics


def batch_failure_summary(results: Sequence[Dict]) -> Dict:
    """End-of-batch report: totals plus every failure record.

    Returns ``{"total", "succeeded", "failed", "failures",
    "counters"}`` where ``failures`` preserves input order and
    ``counters`` is the :func:`batch_metrics` registry snapshot
    (flat ``batch.*`` name -> count).
    """
    failures = [r for r in results if is_failure_record(r)]
    counters = dict(batch_metrics(results).as_dict()["counters"])
    return {
        "total": len(results),
        "succeeded": len(results) - len(failures),
        "failed": len(failures),
        "failures": failures,
        "counters": counters,
    }


def batch_telemetry_summary(results: Sequence[Dict]) -> Dict:
    """Merged telemetry of every telemetered session in a batch.

    Folds the per-session ``telemetry`` blocks — event counts and
    metrics-registry snapshots — into one batch-level view, always in
    *input* order, so the merge is independent of worker count and
    completion order (counters add, gauges last-write-wins by config
    index, histograms combine; see
    :meth:`~repro.telemetry.metrics.MetricsRegistry.merge_snapshot`).
    Failure records and sessions that ran without telemetry contribute
    nothing.
    """
    blocks = [entry["telemetry"] for entry in results
              if not is_failure_record(entry) and "telemetry" in entry]
    by_kind: Dict[str, int] = {}
    registry = MetricsRegistry()
    for block in blocks:
        for kind, count in block["events"]["by_kind"].items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        registry.merge_snapshot(block["metrics"])
    return {
        "sessions_with_telemetry": len(blocks),
        "events": {
            "total": sum(by_kind.values()),
            "by_kind": {kind: by_kind[kind]
                        for kind in sorted(by_kind)},
        },
        "metrics": registry.as_dict(),
    }


def format_batch_failures(results: Sequence[Dict]) -> str:
    """Human-readable end-of-batch failure summary (one line each)."""
    summary = batch_failure_summary(results)
    lines = [f"batch: {summary['succeeded']}/{summary['total']} "
             f"sessions succeeded"]
    for record in summary["failures"]:
        where = ""
        context = record["context"]
        if context:
            inside = ", ".join(f"{k}={v}" for k, v in context.items())
            where = f" [{inside}]"
        lines.append(
            f"  #{record['config_index']} {record['app']} "
            f"({record['governor']}, seed {record['seed']}): "
            f"{record['error_type']}: {record['error_message']}"
            f"{where} after {record['attempts']} attempt(s)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Spec encoding and registry shipping (the pool wire format)
# ----------------------------------------------------------------------

def _registry_plugins() -> PluginEntries:
    """Every registry's extension entries, ready to ship to workers."""
    return tuple((kind, registry.extras())
                 for kind, registry in _PLUGIN_REGISTRIES.items()
                 if registry.extras())


def _install_plugins(plugins: PluginEntries) -> None:
    """Worker side: restore shipped registry extensions (idempotent)."""
    for kind, entries in plugins:
        _PLUGIN_REGISTRIES[kind].restore(entries)


def _encode_item(index: int, config: SessionConfig) -> BatchItem:
    """One config in wire form: its declarative spec document.

    Sessions cross the process boundary as
    :class:`~repro.pipeline.spec.SessionSpec` JSON dicts — the same
    document a user could write by hand — decoded back to a config
    inside the worker (*after* registry extensions are restored, so
    extension governors validate there).  A config the codec cannot
    round-trip losslessly ships as the pickled object itself, keeping
    the pool correct for exotic configs.
    """
    try:
        document = SessionSpec.from_config(config).to_json_dict()
        if SessionSpec.from_json_dict(document).to_config() == config:
            return index, document
    except Exception:  # noqa: BLE001 - fall back to the object form
        pass
    return index, config


def _decode_item(payload: Union[Dict, SessionConfig]) -> SessionConfig:
    """Worker side: a wire payload back to a runnable config."""
    if isinstance(payload, SessionConfig):
        return payload
    return SessionSpec.from_json_dict(payload).to_config()


def _payload_identity(payload: Union[Dict, SessionConfig]) -> Dict:
    """Config identity fields for a failure record, without assuming
    the payload decodes (a spec with a bad governor never becomes a
    config)."""
    if isinstance(payload, SessionConfig):
        app = payload.app if isinstance(payload.app, str) else \
            getattr(payload.app, "name", repr(payload.app))
        return {"app": app, "governor": payload.governor,
                "seed": payload.seed, "duration_s": payload.duration_s}
    app = payload.get("app", "?")
    if isinstance(app, dict):
        app = app.get("name", "?")
    return {"app": app,
            "governor": payload.get("governor", "section+boost"),
            "seed": payload.get("seed", 0),
            "duration_s": payload.get("duration_s", 60.0)}


# ----------------------------------------------------------------------
# Isolated execution (pool workers — all module-level, picklable)
# ----------------------------------------------------------------------

def _with_capture(config: SessionConfig) -> SessionConfig:
    """The same config with a lossless telemetry capture buffer."""
    if config.telemetry is None:
        return config
    return dataclasses.replace(
        config,
        telemetry=dataclasses.replace(config.telemetry,
                                      capture_buffer=True))


def _session_payload(config: SessionConfig, capture: bool) -> Dict:
    """Run one session; return its summary plus captured events.

    Captured events drop their ``wall_s`` field: emission wall time is
    nondeterministic by nature, and scrubbing it here is what lets the
    batch's combined stream be byte-identical across runs and worker
    counts (the simulation clock, ``sim_s``, carries the ordering).
    """
    run_config = _with_capture(config) if capture else config
    result = run_session(run_config)
    events = []
    if capture:
        for event in result.telemetry_events():
            event = dict(event)
            event.pop("wall_s", None)
            events.append(event)
    return {"entry": _summarize(result), "events": events}


def _attempt(index: int, payload: Union[Dict, SessionConfig],
             retries: int, strict: bool, capture: bool) -> Dict:
    """Run one batch item with retry/isolation semantics, in a worker.

    ``payload`` is a wire-form item (spec document or config object);
    a spec that fails to decode yields a failure record like any other
    session error.  Returns a payload (``entry`` + ``events``); in
    non-strict mode it never raises — a session that fails every
    attempt yields a failure record instead.  A deterministic
    simulation fails identically on every attempt, so retries mainly
    cover sessions made flaky by their environment (pool pressure,
    memory) — but they are honoured uniformly so callers get one knob.
    """
    try:
        config = _decode_item(payload)
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        if strict:
            raise
        return {"entry": make_failure_record(index, payload, exc,
                                             attempts=1),
                "events": []}
    error: Optional[BaseException] = None
    attempts = 0
    for attempts in range(1, retries + 2):
        try:
            return _session_payload(config, capture)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            error = exc
    assert error is not None
    if strict:
        raise error
    return {"entry": make_failure_record(index, config, error, attempts),
            "events": []}


def _run_chunk(items: Sequence[BatchItem],
               retries: int, strict: bool, capture: bool,
               plugins: PluginEntries = ()) -> List[Dict]:
    """Pool worker: restore registry extensions, run one chunk of
    ``(index, spec-or-config)`` items."""
    _install_plugins(plugins)
    return [_attempt(index, payload, retries, strict, capture)
            for index, payload in items]


def _pool_probe() -> bool:
    """Trivial task proving the pool can start a worker at all."""
    return True


# ----------------------------------------------------------------------
# The batch runner
# ----------------------------------------------------------------------

def run_batch(configs: Sequence[SessionConfig],
              processes: Optional[int] = None,
              *,
              workers: Optional[int] = None,
              retries: int = 0,
              timeout_s: Optional[float] = None,
              on_error: str = "record",
              progress: Optional[Callable[[int, int, Dict], None]]
              = None,
              mp_context: str = "spawn",
              chunksize: Optional[int] = None,
              stream_path: Optional[str] = None,
              cache: Optional["ResultCache"] = None,
              engine: str = "scalar") -> List[Dict]:
    """Run many sessions, in parallel when it pays off.

    Parameters
    ----------
    configs:
        The sessions to run; results come back in the same order, one
        entry per config (summary dict or failure record).
    workers:
        Worker-process count.  ``None`` picks
        ``min(cpu_count, len(configs))``; 1 (or a single config) runs
        in-process, which is also the deterministic fallback on
        platforms where no worker process can start.  The serial path
        applies the same isolation semantics as the pool, and a
        parallel run returns summaries byte-identical to a serial one.
    processes:
        Legacy alias of ``workers`` (kept positional for old callers);
        setting both to different values is an error.
    retries:
        Extra attempts per failing session before recording (or
        raising) its failure.  Honoured *inside* the worker, so a retry
        costs no extra dispatch.
    timeout_s:
        Per-session wall-clock budget, enforced in pooled mode: a
        session still running after its budget yields a timeout failure
        record and the pool's worker processes are terminated once the
        batch resolves (a hung session cannot block interpreter exit).
        Forces per-session dispatch (``chunksize=1``).  Not enforceable
        in-process, so the serial path ignores it.
    on_error:
        ``"record"`` (default) turns a failing session into a
        structured failure record in its result slot; ``"raise"``
        restores fail-fast propagation of the first error.
    progress:
        Called as ``progress(done, total, entry)`` after each session
        resolves (in input order), where ``entry`` is that session's
        summary or failure record.  Drives batch progress reporting —
        the CLI prints per-session status lines from exactly this
        hook.  A raising callback propagates; keep it cheap.
    mp_context:
        Multiprocessing start method (:data:`MP_CONTEXT_CHOICES`).
        ``spawn`` (default) is safe everywhere; ``fork`` starts workers
        faster on POSIX when the parent holds no unsafe state.
    chunksize:
        Configs per pool task.  ``None`` picks ``ceil(n / (workers *
        4))`` so each worker sees ~4 chunks (amortizing startup while
        keeping the queue balanced).  Must be 1 (or ``None``) when
        ``timeout_s`` is set.
    stream_path:
        Write one combined telemetry JSONL stream for the whole batch
        to this path.  Sessions configured with telemetry capture their
        full event streams (in workers, shipped back as plain data);
        the batch interleaves them deterministically on the simulation
        clock (:func:`~repro.telemetry.events.interleave_streams`) and
        writes one file — the supported way to stream a batch, since
        per-session ``jsonl_path`` sinks sharing one path would
        overwrite each other across workers.  Sessions without
        telemetry contribute nothing.
    cache:
        A :class:`~repro.cache.ResultCache`.  Cacheable configs are
        looked up *before* dispatch — hits fill their result slots
        without running (or pooling) anything — and every freshly
        computed success is stored back on completion, write-once.
        Because sessions are deterministic, a cached batch is
        byte-identical to an uncached one (results, merged metrics
        and interleaved telemetry streams alike); only wall clock
        changes.  Failure records are never cached, and uncacheable
        configs (trace replays, JSONL-sink telemetry, lossy specs —
        see ``docs/caching.md``) simply run as usual.  ``progress``
        still fires once per config; cache hits resolve first.
    engine:
        Execution engine (:data:`ENGINE_CHOICES`).  With ``"vector"``
        or ``"auto"``, cache-missing vector-eligible configs run
        in-process through one lockstep
        :class:`~repro.sim.vector.VectorEngine` *before* anything is
        pooled; ineligible configs (and any config the vector path
        cannot take) continue through the scalar serial/pooled path
        exactly as with ``"scalar"``.  Vector results are
        byte-identical to scalar ones, so they share the cache and the
        merged telemetry stream unchanged.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError("run_batch needs at least one config")
    if (workers is not None and processes is not None
            and workers != processes):
        raise ConfigurationError(
            f"workers ({workers}) and its legacy alias processes "
            f"({processes}) disagree; set only one")
    count = workers if workers is not None else processes
    if count is None:
        count = min(multiprocessing.cpu_count(), len(configs))
    if count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {count}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(
            f"timeout_s must be > 0, got {timeout_s}")
    if on_error not in ON_ERROR_CHOICES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_CHOICES}, "
            f"got {on_error!r}")
    if mp_context not in MP_CONTEXT_CHOICES:
        raise ConfigurationError(
            f"mp_context must be one of {MP_CONTEXT_CHOICES}, "
            f"got {mp_context!r}")
    if chunksize is not None and chunksize < 1:
        raise ConfigurationError(
            f"chunksize must be >= 1, got {chunksize}")
    if timeout_s is not None and chunksize is not None and chunksize > 1:
        raise ConfigurationError(
            "per-session timeout_s requires per-session dispatch; "
            f"chunksize must be 1 (got {chunksize})")
    if engine not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")

    strict = on_error == "raise"
    capture = stream_path is not None
    total = len(configs)
    indexed = list(enumerate(configs))

    def _note(done: int, entry: Dict) -> None:
        if progress is not None:
            progress(done, total, entry)

    # Cache lookup before dispatch: hits fill their slots now, misses
    # keep their keys for the populate-on-completion pass below.
    slots: List[Optional[Dict]] = [None] * total
    miss_keys: Dict[int, str] = {}
    to_run = indexed
    if cache is not None:
        to_run = []
        for index, config in indexed:
            key = cache.key_for(config, capture=capture)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    slots[index] = hit
                    continue
                miss_keys[index] = key
            to_run.append((index, config))
    done = 0
    for index in range(total):
        if slots[index] is not None:
            done += 1
            _note(done, slots[index]["entry"])

    # Vector routing: before anything is pooled, cache-missing
    # eligible configs advance together through one lockstep vector
    # engine (in-process — the vector path needs no worker pool to be
    # fast).  Slots fill exactly as cache hits do, results are
    # byte-identical to the scalar path, and fresh successes populate
    # the cache just like pooled ones.
    if engine != "scalar" and to_run:
        from ..pipeline.eligibility import vector_eligible
        from .vector import run_vector_batch

        def _is_eligible(config: SessionConfig) -> bool:
            try:
                return vector_eligible(config)
            except Exception:  # noqa: BLE001 - probe says scalar path
                return False

        vectorizable = [(index, config) for index, config in to_run
                        if _is_eligible(config)]
        if vectorizable:
            payloads = run_vector_batch(
                [config for _, config in vectorizable])
            for (index, _), payload in zip(vectorizable, payloads):
                slots[index] = payload
                key = miss_keys.get(index)
                if cache is not None and key is not None and \
                        not is_failure_record(payload["entry"]):
                    cache.put(key, payload)
                done += 1
                _note(done, payload["entry"])
            to_run = [(index, config) for index, config in to_run
                      if slots[index] is None]

    def _note_run(resolved: int, entry: Dict) -> None:
        _note(done + resolved, entry)

    if to_run:
        if count == 1 or len(to_run) == 1:
            run_payloads = _run_serial(to_run, retries, strict,
                                       capture, _note_run)
        else:
            run_payloads = _run_pooled(to_run, count, retries,
                                       timeout_s, strict, capture,
                                       mp_context, chunksize,
                                       _note_run)
        for (index, _), payload in zip(to_run, run_payloads):
            slots[index] = payload
            key = miss_keys.get(index)
            if cache is not None and key is not None and \
                    not is_failure_record(payload["entry"]):
                cache.put(key, payload)
    assert all(slot is not None for slot in slots)
    payloads = slots
    if stream_path is not None:
        _write_stream(stream_path, payloads)
    return [payload["entry"] for payload in payloads]


def _run_serial(indexed: Sequence[Tuple[int, SessionConfig]],
                retries: int, strict: bool, capture: bool,
                note: Callable[[int, Dict], None]) -> List[Dict]:
    """The in-process batch path (also the no-pool fallback)."""
    payloads: List[Dict] = []
    for index, config in indexed:
        payloads.append(_attempt(index, config, retries, strict,
                                 capture))
        note(len(payloads), payloads[-1]["entry"])
    return payloads


def _run_pooled(indexed: List[Tuple[int, SessionConfig]],
                workers: int, retries: int, timeout_s: Optional[float],
                strict: bool, capture: bool, mp_context: str,
                chunksize: Optional[int],
                note: Callable[[int, Dict], None]) -> List[Dict]:
    """Dispatch chunks to a process pool; merge results by input slot."""
    total = len(indexed)
    if timeout_s is not None:
        chunksize = 1
    elif chunksize is None:
        chunksize = max(1, math.ceil(total / (workers * 4)))
    chunks = [indexed[i:i + chunksize]
              for i in range(0, total, chunksize)]
    ctx = multiprocessing.get_context(mp_context)
    try:
        executor = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=ctx)
    except (OSError, ValueError):
        return _run_serial(indexed, retries, strict, capture, note)
    if not _probe_pool(executor):
        # Constrained sandboxes may refuse to start worker processes;
        # the batch still completes — serially, with identical
        # isolation (and identical bytes).
        return _run_serial(indexed, retries, strict, capture, note)

    plugins = _registry_plugins()
    # Keyed by *global* config index (the batch may be a cache-miss
    # subset of the full config list, so indices need not be dense).
    by_index: Dict[int, Dict] = {}
    clean = False
    try:
        # A lethal config can break the pool while later chunks are
        # still being submitted; submit() then raises
        # BrokenProcessPool itself.  Those chunks get no future and go
        # straight to the salvage path below.
        futures: List[Optional["Future[List[Dict]]"]] = []
        submit_broken = False
        for chunk in chunks:
            if submit_broken:
                futures.append(None)
                continue
            try:
                futures.append(executor.submit(
                    _run_chunk,
                    [_encode_item(index, config)
                     for index, config in chunk],
                    retries, strict, capture, plugins))
            except BrokenProcessPool:
                submit_broken = True
                futures.append(None)
        broken = False
        timed_out = False
        done = 0
        for chunk, future in zip(chunks, futures):
            if broken or future is None:
                payloads = _salvage_chunk(chunk, retries, timeout_s,
                                          strict, capture, ctx, plugins)
            else:
                try:
                    payloads = future.result(timeout_s)
                except FuturesTimeoutError:
                    timed_out = True
                    payloads = [_timeout_payload(chunk[0], timeout_s,
                                                 strict)]
                except BrokenProcessPool:
                    broken = True
                    payloads = _salvage_chunk(chunk, retries, timeout_s,
                                              strict, capture, ctx,
                                              plugins)
            for (index, _), payload in zip(chunk, payloads):
                by_index[index] = payload
                done += 1
                note(done, payload["entry"])
        clean = not (timed_out or broken or submit_broken)
    finally:
        _shutdown(executor, force=not clean)
    assert len(by_index) == total
    return [by_index[index] for index, _ in indexed]


def _probe_pool(executor: ProcessPoolExecutor) -> bool:
    """True when the pool can actually start a worker."""
    try:
        return executor.submit(_pool_probe).result(
            _POOL_PROBE_TIMEOUT_S)
    except (BrokenProcessPool, FuturesTimeoutError, OSError):
        _shutdown(executor, force=True)
        return False


def _timeout_payload(item: Tuple[int, SessionConfig],
                     timeout_s: Optional[float],
                     strict: bool) -> Dict:
    """Failure payload (or fail-fast raise) for a timed-out session."""
    index, config = item
    record = make_failure_record(
        index, config,
        TimeoutError(f"session exceeded {timeout_s:g} s"),
        attempts=1)
    if strict:
        raise TimeoutError(
            f"session #{index} ({record['app']}) exceeded "
            f"{timeout_s:g} s")
    return {"entry": record, "events": []}


def _salvage_chunk(chunk: Sequence[Tuple[int, SessionConfig]],
                   retries: int, timeout_s: Optional[float],
                   strict: bool, capture: bool, ctx,
                   plugins: PluginEntries = ()) -> List[Dict]:
    """Re-run a chunk after the shared pool broke.

    Each config gets its own fresh single-worker pool: innocent
    sessions that merely shared the pool with a lethal one complete
    normally, while a config that kills its worker *again* is recorded
    as a :class:`~repro.errors.WorkerCrashError` failure (or raised,
    in fail-fast mode) without taking anything else down.
    """
    payloads = []
    for index, config in chunk:
        rescue = ProcessPoolExecutor(max_workers=1, mp_context=ctx)
        crashed = False
        try:
            future = rescue.submit(_run_chunk,
                                   [_encode_item(index, config)],
                                   retries, strict, capture, plugins)
            try:
                payloads.append(future.result(timeout_s)[0])
            except FuturesTimeoutError:
                crashed = True
                payloads.append(_timeout_payload((index, config),
                                                 timeout_s, strict))
            except BrokenProcessPool:
                crashed = True
                error = WorkerCrashError(
                    f"worker process died running session #{index}",
                    context={"subsystem": "batch",
                             "config_index": index})
                if strict:
                    raise error from None
                payloads.append({
                    "entry": make_failure_record(index, config, error,
                                                 attempts=1),
                    "events": [],
                })
        finally:
            _shutdown(rescue, force=crashed)
    return payloads


def _shutdown(executor: ProcessPoolExecutor, force: bool) -> None:
    """Release a pool; ``force`` also terminates its worker processes.

    Forcing mirrors ``multiprocessing.Pool.terminate``: after a
    timeout or crash the pool may still hold a running (possibly hung)
    session, and a plain shutdown — or interpreter exit — would block
    on it.  Terminating the workers is safe here because every
    unresolved config already has its failure record.
    """
    executor.shutdown(wait=not force, cancel_futures=force)
    if force:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()


def _write_stream(stream_path, payloads: Sequence[Dict]) -> pathlib.Path:
    """Write the batch's interleaved telemetry stream as JSONL.

    Atomic (temp file + rename): an interrupt mid-write never leaves a
    truncated stream at the destination path.
    """
    from ..ioutil import atomic_write_text

    events = interleave_streams([payload["events"]
                                 for payload in payloads])
    lines = [json.dumps(event, sort_keys=True) for event in events]
    text = "".join(line + "\n" for line in lines)
    return atomic_write_text(pathlib.Path(stream_path), text)
