"""Multi-application usage scenarios: app switching in one session.

Real phone use is not one app for three minutes — it is a messenger,
then a game, then a feed.  A scenario runs a sequence of applications
inside a *single* simulation: at each segment boundary the previous
app's surface is torn down, the next app launches (with a full-screen
launch transition frame), and its own Monkey script begins.  The
display manager persists across segments, so the benchmark question —
does the governor adapt when the workload changes under it? — is
exercised directly.

Pricing honours per-app costs: each segment is evaluated over its own
window with its own profile via
:meth:`repro.power.model.PowerModel.evaluate_window`, and the scenario
total is the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..apps.base import Application
from ..apps.catalog import app_profile
from ..apps.profile import AppProfile
from ..core.content_rate import ContentRateMeter, MeterConfig
from ..core.quality import quality_vs_baseline
from ..display.panel import DisplayPanel
from ..display.presets import GALAXY_S3_PANEL
from ..display.spec import PanelSpec
from ..errors import ConfigurationError
from ..graphics.compositor import SurfaceManager
from ..graphics.framebuffer import Framebuffer
from ..graphics.surface import Surface
from ..inputs.monkey import MonkeyConfig, MonkeyScriptGenerator
from ..inputs.touch import TouchEvent, TouchScript, merge_scripts
from ..power.model import PowerModel, PowerReport
from ..sim.engine import Simulator
from ..pipeline.governors import GOVERNOR_ORACLE, GOVERNORS
from ..sim.session import build_policy
from ..sim.tracing import EventLog
from ..core.governor import GovernorDriver
from ..units import ensure_positive, ensure_positive_int


@dataclass(frozen=True)
class ScenarioSegment:
    """One stretch of the scenario: which app, for how long."""

    app: Union[str, AppProfile]
    duration_s: float

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")

    def resolve_profile(self) -> AppProfile:
        """The profile this segment runs."""
        if isinstance(self.app, str):
            return app_profile(self.app)
        return self.app


@dataclass(frozen=True)
class ScenarioConfig:
    """A full usage scenario."""

    segments: Tuple[ScenarioSegment, ...]
    governor: str = "section+boost"
    seed: int = 0
    panel: PanelSpec = GALAXY_S3_PANEL
    resolution_divisor: int = 8
    meter: MeterConfig = field(default_factory=MeterConfig)
    decision_period_s: float = 0.2
    boost_hold_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("scenario needs at least one "
                                     "segment")
        ensure_positive_int(self.resolution_divisor,
                            "resolution_divisor")
        if self.governor not in GOVERNORS:
            raise ConfigurationError(
                f"unknown governor {self.governor!r}; "
                f"choices: {GOVERNORS.names()}")
        if self.governor == GOVERNOR_ORACLE:
            raise ConfigurationError(
                "the oracle governor is bound to a single application; "
                "use per-app sessions for oracle comparisons")

    @property
    def total_duration_s(self) -> float:
        """Scenario length: the sum of segment durations."""
        return sum(s.duration_s for s in self.segments)

    def boundaries(self) -> List[Tuple[float, float]]:
        """``(start, end)`` of each segment."""
        out = []
        t = 0.0
        for segment in self.segments:
            out.append((t, t + segment.duration_s))
            t += segment.duration_s
        return out


@dataclass
class SegmentResult:
    """Traces and pricing inputs for one completed segment."""

    profile: AppProfile
    start_s: float
    end_s: float
    application: Application

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    config: ScenarioConfig
    governor_name: str
    metering_active: bool
    panel: DisplayPanel
    meter: ContentRateMeter
    segments: List[SegmentResult]
    touch_script: TouchScript
    compositions: EventLog
    meaningful_compositions: EventLog

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def power_report(self,
                     model: Optional[PowerModel] = None) -> PowerReport:
        """Whole-scenario energy: per-segment windows summed."""
        model = model or PowerModel()
        from ..power.model import PowerBreakdown
        totals = dict(base_mj=0.0, panel_mj=0.0, compose_mj=0.0,
                      render_mj=0.0, meter_mj=0.0, emission_mj=0.0)
        for segment in self.segments:
            report = self.segment_power(segment, model)
            b = report.breakdown
            totals["base_mj"] += b.base_mj
            totals["panel_mj"] += b.panel_mj
            totals["compose_mj"] += b.compose_mj
            totals["render_mj"] += b.render_mj
            totals["meter_mj"] += b.meter_mj
            totals["emission_mj"] += b.emission_mj
        return PowerReport(duration_s=self.config.total_duration_s,
                           breakdown=PowerBreakdown(**totals))

    def segment_power(self, segment: SegmentResult,
                      model: Optional[PowerModel] = None) -> PowerReport:
        """Energy of one segment under its own app profile."""
        model = model or PowerModel()
        return model.evaluate_window(
            profile=segment.profile,
            rate_history=self.panel.rate_history,
            compositions=self.compositions,
            renders=segment.application.renders,
            start_s=segment.start_s,
            end_s=segment.end_s,
            metering_active=self.metering_active,
        )

    def segment_content_fps(self, segment: SegmentResult) -> float:
        """Displayed content rate within one segment."""
        return self.meaningful_compositions.count_in(
            segment.start_s, segment.end_s) / segment.duration_s

    def segment_quality(self, segment_index: int,
                        baseline: "ScenarioResult") -> float:
        """Quality of one segment against a fixed-baseline scenario."""
        mine = self.segment_content_fps(self.segments[segment_index])
        theirs = baseline.segment_content_fps(
            baseline.segments[segment_index])
        return quality_vs_baseline(mine, theirs)

    @property
    def mean_refresh_rate_hz(self) -> float:
        """Time-weighted mean refresh rate over the scenario."""
        return self.panel.rate_history.mean(
            0.0, self.config.total_duration_s)


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Run a multi-app scenario and return its traces."""
    sim = Simulator()
    spec = config.panel
    fb_width = max(8, spec.width // config.resolution_divisor)
    fb_height = max(8, spec.height // config.resolution_divisor)
    framebuffer = Framebuffer(fb_width, fb_height)
    compositor = SurfaceManager(framebuffer)
    panel = DisplayPanel(sim, spec)
    meter = ContentRateMeter(framebuffer, config.meter)

    compositions = EventLog("compositions")
    meaningful = EventLog("meaningful_compositions")

    def _log_composition(time: float, redundant: bool) -> None:
        compositions.append(time)
        if not redundant:
            meaningful.append(time)

    compositor.add_composition_listener(_log_composition)

    # --- Build every segment's app and touch script up front so the
    # workload is governor-independent (same controlled-comparison
    # property as single-app sessions). ---
    boundaries = config.boundaries()
    segments: List[SegmentResult] = []
    scripts = []
    for index, (segment, (start, end)) in enumerate(
            zip(config.segments, boundaries)):
        profile = segment.resolve_profile()
        surface = Surface(fb_width, fb_height,
                          name=f"{profile.name}#{index}")
        app_seed = config.seed * 1_000_003 + 7 * index + 1
        application = Application(profile, sim, compositor, surface,
                                  seed=app_seed)
        segments.append(SegmentResult(
            profile=profile, start_s=start, end_s=end,
            application=application))
        monkey = MonkeyScriptGenerator(MonkeyConfig(
            duration_s=segment.duration_s,
            events_per_s=profile.touch_events_per_s,
            scroll_fraction=profile.scroll_fraction,
        ))
        script = monkey.generate(config.seed * 7_777_777 + 131 * index)
        scripts.append(TouchScript([
            TouchEvent(time=e.time + start, kind=e.kind,
                       duration_s=e.duration_s)
            for e in script
        ]))
    merged_script = merge_scripts(scripts)

    # --- Policy and driver (a dummy first-segment app satisfies the
    # oracle interface, which ScenarioConfig already forbids). ---
    from ..sim.session import SessionConfig
    policy_config = SessionConfig(
        app=segments[0].profile, governor=config.governor,
        duration_s=config.total_duration_s, seed=config.seed,
        panel=spec, resolution_divisor=config.resolution_divisor,
        meter=config.meter, decision_period_s=config.decision_period_s,
        boost_hold_s=config.boost_hold_s)
    policy = build_policy(policy_config, panel, meter,
                          segments[0].application,
                          framebuffer=framebuffer)
    driver = GovernorDriver(sim, panel, policy,
                            config.decision_period_s)

    # --- Segment switching on the simulation clock ---
    active = {"index": None}

    def activate(index: int):
        def do_activate(s: Simulator) -> None:
            if active["index"] is not None:
                previous = segments[active["index"]]
                compositor.unregister_surface(
                    previous.application.surface)
            segment = segments[index]
            surface = segment.application.surface
            compositor.register_surface(surface)
            # Launch transition: the new app's first frame repaints
            # the screen.
            surface.fill((18 + 23 * index % 200, 24, 32))
            compositor.post(surface)
            segment.application.start()
            active["index"] = index
        return do_activate

    for index, (start, _) in enumerate(boundaries):
        sim.call_at(start, activate(index), name=f"segment-{index}")

    # --- V-Sync wiring: route to the active segment's app ---
    def on_vsync(time: float) -> None:
        if active["index"] is not None:
            segments[active["index"]].application.on_vsync(time)

    panel.add_vsync_listener(on_vsync)
    panel.add_vsync_listener(compositor.on_vsync)

    # --- Touch wiring: route to the active app + the governor ---
    from ..pipeline.builder import make_governor_touch_adapter
    governor_touch = make_governor_touch_adapter(sim, driver, policy)

    def deliver_touch(event: TouchEvent) -> None:
        if active["index"] is not None:
            segments[active["index"]].application.on_touch(event)
        governor_touch(event)

    from ..inputs.touch import TouchSource
    touch_source = TouchSource(sim, merged_script)
    touch_source.add_listener(deliver_touch)

    # --- Run ---
    panel.start()
    driver.start()
    touch_source.start()
    sim.run_until(config.total_duration_s)
    driver.stop()
    panel.stop()

    return ScenarioResult(
        config=config,
        governor_name=policy.name,
        metering_active=config.governor != "fixed",
        panel=panel,
        meter=meter,
        segments=segments,
        touch_script=merged_script,
        compositions=compositions,
        meaningful_compositions=meaningful,
    )
