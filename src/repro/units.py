"""Unit conventions and validation helpers used across the package.

The simulation uses a small, fixed set of units; every public API sticks
to them so values can be passed between subsystems without conversion:

========================  =======================================
Quantity                  Unit
========================  =======================================
time                      seconds (``float``)
refresh / frame rates     hertz == frames per second (``float``)
power                     milliwatts (``float``)
energy                    millijoules (``float``; mW x s)
pixel coordinates         ``(row, col)`` integers, origin top-left
========================  =======================================

The helpers here raise :class:`~repro.errors.ConfigurationError` with a
message naming the offending parameter, which keeps constructor
validation in the rest of the package to one line per field.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

#: Number of milliseconds in one second (readability constant).
MS_PER_S = 1000.0

#: The V-Sync deadline at 60 Hz, in seconds (the paper's 16.67 ms budget).
VSYNC_DEADLINE_60HZ_S = 1.0 / 60.0


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0, else raise."""
    _ensure_finite_number(value, name)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise."""
    _ensure_finite_number(value, name)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def ensure_fraction(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    _ensure_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def ensure_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer > 0, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 0, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def hz_to_period(rate_hz: float) -> float:
    """Convert a rate in hertz to its period in seconds."""
    ensure_positive(rate_hz, "rate_hz")
    return 1.0 / rate_hz


def _ensure_finite_number(value: float, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
