"""Figure 8 — power saved over time, Facebook and Jelly Splash.

The paper subtracts the proposed system's power trace from the fixed
baseline's, bin by bin, over the same Monkey script, and reports the
mean ± std of the saved power.  Reconstructed targets (OCR dropped
trailing zeros): Facebook ~150 mW section-only / ~135 mW with boosting;
Jelly Splash ~500 mW / ~330 mW.  The *shape* to reproduce: Jelly Splash
saves several times more than Facebook (its 60 fps loop collapses), and
touch boosting gives back a modest slice on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..pipeline.baseline import run_fixed_baseline
from ..power.meter import MonsoonMeter
from ..sim.session import SessionConfig, run_session

#: The two trace applications.
TRACE_APPS = ("Facebook", "Jelly Splash")

#: The two governed configurations.
METHODS = ("section", "section+boost")


@dataclass(frozen=True)
class SavedPowerTrace:
    """Saved power over time for one (app, method)."""

    app_name: str
    method: str
    bin_centers_s: np.ndarray
    saved_power_mw: np.ndarray
    baseline_mean_mw: float
    governed_mean_mw: float

    @property
    def mean_saved_mw(self) -> float:
        """Session-mean saved power."""
        return self.baseline_mean_mw - self.governed_mean_mw

    @property
    def std_saved_mw(self) -> float:
        """Std of the per-bin saved power (the paper's ± figure)."""
        return float(np.std(self.saved_power_mw))

    @property
    def saved_percent(self) -> float:
        """Saved power as a percentage of the baseline."""
        return 100.0 * self.mean_saved_mw / self.baseline_mean_mw


@dataclass(frozen=True)
class Fig8Result:
    """All traces, indexed ``traces[(app, method)]``."""

    duration_s: float
    traces: Dict[Tuple[str, str], SavedPowerTrace]

    def format(self) -> str:
        rows = []
        for (app, method), t in sorted(self.traces.items()):
            rows.append([
                app, method,
                f"{t.baseline_mean_mw:.0f}",
                f"{t.governed_mean_mw:.0f}",
                f"{t.mean_saved_mw:.0f} (±{t.std_saved_mw:.0f})",
                f"{t.saved_percent:.1f}%",
            ])
        return format_table(
            ["app", "method", "baseline mW", "governed mW",
             "saved mW", "saved %"],
            rows,
            title="Figure 8: power saved vs fixed 60 Hz",
        )


def run(duration_s: float = 60.0, seed: int = 1,
        meter_noise_mw: float = 5.0) -> Fig8Result:
    """Run the Figure 8 sessions and difference their power traces."""
    traces: Dict[Tuple[str, str], SavedPowerTrace] = {}
    for app in TRACE_APPS:
        baseline = run_fixed_baseline(app, duration_s=duration_s,
                                      seed=seed)
        centers, base_trace = baseline.power_trace(bin_width_s=1.0)
        monsoon = MonsoonMeter(noise_mw=meter_noise_mw, seed=seed)
        _, base_trace = monsoon.measure_trace(centers, base_trace)
        for method in METHODS:
            governed = run_session(SessionConfig(
                app=app, governor=method, duration_s=duration_s,
                seed=seed))
            _, gov_trace = governed.power_trace(bin_width_s=1.0)
            _, gov_trace = monsoon.measure_trace(centers, gov_trace)
            traces[(app, method)] = SavedPowerTrace(
                app_name=app,
                method=method,
                bin_centers_s=centers,
                saved_power_mw=base_trace - gov_trace,
                baseline_mean_mw=baseline.power_report().mean_power_mw,
                governed_mean_mw=governed.power_report().mean_power_mw,
            )
    return Fig8Result(duration_s=duration_s, traces=traces)
