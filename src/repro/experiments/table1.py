"""Table 1 — category summary of saved power and display quality.

The paper's bottom line, per category and method (mean ± std across the
15 apps):

=================  ==============  ===============  ================
Category           Method          Saved power (%)  Display quality
=================  ==============  ===============  ================
General            section         18.6 (±8.93)     74.1 (±15.6) %
General            +touch boost    (slightly less)  95.7 (±2.7) %
Games              section         ~27 (±12.36)     88.5 (±6.0) %
Games              +touch boost    (slightly less)  96.0 (±1.4) %
=================  ==============  ===============  ================

Shapes to reproduce: games save a larger share than general apps;
touch boosting costs a few percent of the saving and lifts quality to
the mid-90s with a much smaller spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.aggregate import (
    CategorySummary,
    MethodSummary,
    summarize_categories,
)
from ..analysis.tables import format_table
from ..apps.profile import AppCategory
from .survey import PROPOSED, SurveyConfig, SurveyResult, run_survey


@dataclass(frozen=True)
class Table1Result:
    """The category/method grid."""

    summaries: List[CategorySummary]

    def cell(self, category: AppCategory, method: str) -> MethodSummary:
        """One (category, method) summary."""
        for summary in self.summaries:
            if summary.category is category:
                return summary.methods[method]
        raise KeyError(category)

    def format(self) -> str:
        rows = []
        for summary in self.summaries:
            for method in PROPOSED:
                cell = summary.methods[method]
                rows.append([
                    summary.category.value,
                    method,
                    str(cell.saved_power_percent),
                    str(cell.saved_power_mw),
                    str(cell.display_quality_percent),
                ])
        return format_table(
            ["category", "method", "saved power %", "saved power mW",
             "display quality %"],
            rows,
            title="Table 1: power-saving effect and display quality",
        )


def run(survey: SurveyResult = None,
        config: SurveyConfig = None) -> Table1Result:
    """Build Table 1 from the shared survey."""
    survey = survey or run_survey(config)
    per_method = {m: survey.measurements(m) for m in PROPOSED}
    return Table1Result(summaries=summarize_categories(per_method))
