"""Figure 11 — display quality per application.

Display quality = governed content rate / actual (fixed-60) content
rate, per app.  The paper's claims, asserted by the benchmark:

* with section-based control alone, quality stays above ~55 %
  (general) and ~85 % (games) for 80 % of apps — visible degradation;
* with touch boosting, quality stays above ~95 % for 80 % of apps in
  both categories, and above ~90 % for every app.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.stats import percentile_of_apps
from ..analysis.tables import format_table
from ..apps.profile import AppCategory
from ..core.quality import quality_vs_baseline
from .survey import PROPOSED, SurveyConfig, SurveyResult, run_survey


@dataclass(frozen=True)
class AppQuality:
    """One app's Figure 11 bars (fractions in [0, 1])."""

    app_name: str
    category: AppCategory
    quality: Dict[str, float]  # method -> quality fraction


@dataclass(frozen=True)
class Fig11Result:
    """Per-app display quality for both methods."""

    rows: List[AppQuality]

    def category_rows(self, category: AppCategory) -> List[AppQuality]:
        return [r for r in self.rows if r.category is category]

    def quality_80th(self, category: AppCategory, method: str) -> float:
        """Quality that 80 % of the category's apps stay above."""
        values = [r.quality[method]
                  for r in self.category_rows(category)]
        return percentile_of_apps(values, 0.8, tail="upper")

    def worst_quality(self, method: str) -> float:
        """The lowest quality across all 30 apps."""
        return min(r.quality[method] for r in self.rows)

    def format(self) -> str:
        rows = []
        for r in self.rows:
            rows.append([
                r.app_name,
                r.category.value,
                f"{100.0 * r.quality['section']:.1f}%",
                f"{100.0 * r.quality['section+boost']:.1f}%",
            ])
        return format_table(
            ["app", "category", "quality (section)", "quality (+boost)"],
            rows,
            title="Figure 11: display quality vs fixed 60 Hz",
        )


def run(survey: SurveyResult = None,
        config: SurveyConfig = None) -> Fig11Result:
    """Build Figure 11 from the shared survey."""
    survey = survey or run_survey(config)
    rows = []
    for app in survey.config.apps:
        baseline = survey.baseline(app)
        quality = {
            m: quality_vs_baseline(
                survey.governed(app, m).mean_content_rate_fps,
                baseline.mean_content_rate_fps)
            for m in PROPOSED
        }
        rows.append(AppQuality(
            app_name=app,
            category=baseline.profile.category,
            quality=quality,
        ))
    return Fig11Result(rows=rows)
