"""The shared 30-application survey runner.

Figures 3, 9, 10, 11 and Table 1 are all views over the same underlying
measurement: run every catalog app under the fixed-60 Hz baseline and
under the governed configurations, with the same seed (hence the same
content stream and Monkey script) per app.  This module runs that sweep
once per configuration and caches it in-process, so the benchmark suite
does not repeat ~90 sessions per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..analysis.aggregate import AppMeasurement
from ..apps.catalog import all_app_names, app_profile
from ..core.quality import quality_vs_baseline
from ..errors import ConfigurationError
from ..power.model import PowerModel
from ..sim.batch import run_batch
from ..sim.session import SessionConfig, SessionResult, run_session
from ..units import ensure_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import ResultCache

#: Baseline governor name every comparison is made against.
BASELINE = "fixed"

#: The two configurations of the proposed system.
PROPOSED = ("section", "section+boost")


@dataclass(frozen=True)
class SurveyConfig:
    """Sweep parameters.

    ``duration_s`` trades fidelity for wall-clock: the paper runs ~3
    minutes per app; 45-60 s gives stable means in simulation.
    """

    apps: Tuple[str, ...] = field(default_factory=all_app_names)
    governors: Tuple[str, ...] = (BASELINE,) + PROPOSED
    duration_s: float = 45.0
    seed: int = 1
    resolution_divisor: int = 8

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        if BASELINE not in self.governors:
            raise ConfigurationError(
                f"survey needs the {BASELINE!r} baseline governor")
        if not self.apps:
            raise ConfigurationError("survey needs at least one app")


@dataclass
class SurveyResult:
    """All sessions of one sweep, indexed ``sessions[app][governor]``."""

    config: SurveyConfig
    sessions: Dict[str, Dict[str, SessionResult]]

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    def baseline(self, app: str) -> SessionResult:
        """The fixed-60 Hz session of one app."""
        return self.sessions[app][BASELINE]

    def governed(self, app: str, governor: str) -> SessionResult:
        """A governed session of one app."""
        return self.sessions[app][governor]

    def measurements(self, governor: str,
                     model: PowerModel = None) -> List[AppMeasurement]:
        """Per-app power/quality measurements for one governor,
        relative to the fixed baseline (the Table 1 inputs)."""
        model = model or PowerModel()
        rows = []
        for app in self.config.apps:
            base = self.baseline(app)
            gov = self.governed(app, governor)
            quality = quality_vs_baseline(gov.mean_content_rate_fps,
                                          base.mean_content_rate_fps)
            rows.append(AppMeasurement(
                app_name=app,
                category=app_profile(app).category,
                baseline_power_mw=base.power_report(model).mean_power_mw,
                governed_power_mw=gov.power_report(model).mean_power_mw,
                display_quality=quality,
            ))
        return rows


@dataclass
class SurveySummaries:
    """Summary-level view of one sweep, ``summaries[app][governor]``.

    The parallel counterpart of :class:`SurveyResult`: per-session
    *summary dicts* (the :func:`repro.sim.batch.run_batch` payload)
    instead of live :class:`SessionResult` objects, which is what lets
    the sweep cross process boundaries.  Covers every consumer that
    needs aggregate numbers — per-app power/quality measurements —
    but not the trace-level views (``baseline()`` / ``governed()``
    series plots), which still require :func:`run_survey`.
    """

    config: SurveyConfig
    summaries: Dict[str, Dict[str, Dict]]

    def summary(self, app: str, governor: str) -> Dict:
        """The summary dict of one session."""
        return self.summaries[app][governor]

    def measurements(self, governor: str) -> List[AppMeasurement]:
        """Per-app power/quality measurements for one governor,
        relative to the fixed baseline (the Table 1 inputs), computed
        with the default :class:`~repro.power.model.PowerModel` —
        identical numbers to
        :meth:`SurveyResult.measurements`'s default."""
        rows = []
        for app in self.config.apps:
            base = self.summary(app, BASELINE)
            gov = self.summary(app, governor)
            quality = quality_vs_baseline(gov["content_rate_fps"],
                                          base["content_rate_fps"])
            rows.append(AppMeasurement(
                app_name=app,
                category=app_profile(app).category,
                baseline_power_mw=base["mean_power_mw"],
                governed_power_mw=gov["mean_power_mw"],
                display_quality=quality,
            ))
        return rows


_CACHE: Dict[SurveyConfig, SurveyResult] = {}
_SUMMARY_CACHE: Dict[SurveyConfig, SurveySummaries] = {}


def _sweep_configs(config: SurveyConfig) -> List[SessionConfig]:
    """The sweep's session configs, app-major then governor order."""
    return [SessionConfig(app=app,
                          governor=governor,
                          duration_s=config.duration_s,
                          seed=config.seed,
                          resolution_divisor=config.resolution_divisor)
            for app in config.apps
            for governor in config.governors]


def run_survey(config: SurveyConfig = None) -> SurveyResult:
    """Run (or fetch from cache) the sweep for ``config``."""
    config = config or SurveyConfig()
    if config in _CACHE:
        return _CACHE[config]
    sessions: Dict[str, Dict[str, SessionResult]] = {}
    for app in config.apps:
        sessions[app] = {}
        for governor in config.governors:
            sessions[app][governor] = run_session(SessionConfig(
                app=app,
                governor=governor,
                duration_s=config.duration_s,
                seed=config.seed,
                resolution_divisor=config.resolution_divisor,
            ))
    result = SurveyResult(config=config, sessions=sessions)
    _CACHE[config] = result
    return result


def run_survey_summaries(config: SurveyConfig = None,
                         workers: int = None,
                         cache: "ResultCache" = None) -> SurveySummaries:
    """Run (or fetch from cache) the summary-level sweep in parallel.

    The sweep's ~90 sessions are independent, making it the repo's
    flagship parallel workload: configs fan out over
    :func:`repro.sim.batch.run_batch` with ``workers`` processes
    (``None``: one per CPU) and fail fast on any session error.  The
    batch runner's deterministic merge means the result — and
    therefore every figure built on it — is identical for any worker
    count.  The in-process memo is keyed by sweep config only; a
    cached result satisfies any later ``workers`` value.  ``cache``
    additionally threads a durable
    :class:`~repro.cache.ResultCache` through the batch runner, so a
    sweep repeated across *processes* is served from disk instead of
    recomputed (byte-identical either way).
    """
    config = config or SurveyConfig()
    if config in _SUMMARY_CACHE:
        return _SUMMARY_CACHE[config]
    entries = run_batch(_sweep_configs(config), workers=workers,
                        on_error="raise", cache=cache)
    summaries: Dict[str, Dict[str, Dict]] = {}
    flat = iter(entries)
    for app in config.apps:
        summaries[app] = {governor: next(flat)
                          for governor in config.governors}
    result = SurveySummaries(config=config, summaries=summaries)
    _SUMMARY_CACHE[config] = result
    return result


def clear_survey_cache() -> None:
    """Drop all cached sweeps (tests use this for isolation)."""
    _CACHE.clear()
    _SUMMARY_CACHE.clear()
