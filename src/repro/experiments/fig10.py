"""Figure 10 — estimated vs actual content rate per application.

For each app the paper plots the content rate measured under the
proposed system against the actual content rate (measured at fixed
60 Hz with the same script).  Without touch boosting the estimate falls
short around interactions (V-Sync clips the measurable rate while the
governor lags); with boosting the two nearly coincide.  The paper's
"80 % of applications" claims, asserted by the benchmark:

* dropped frames with section-only control: < ~2.9 fps (general) and
  < ~3.8 fps (games) for 80 % of apps — "not satisfactory";
* with touch boosting: < ~0.7 fps and < ~1.3 fps for 80 % of apps —
  virtually no degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.stats import percentile_of_apps
from ..analysis.tables import format_table
from ..apps.profile import AppCategory
from .survey import PROPOSED, SurveyConfig, SurveyResult, run_survey


@dataclass(frozen=True)
class ContentRateComparison:
    """One app's Figure 10 bars."""

    app_name: str
    category: AppCategory
    actual_fps: float                  # fixed-60 displayed content rate
    estimated_fps: Dict[str, float]    # method -> governed content rate

    def dropped_fps(self, method: str) -> float:
        """Content fps lost under one method."""
        return max(0.0, self.actual_fps - self.estimated_fps[method])


@dataclass(frozen=True)
class Fig10Result:
    """Per-app content-rate comparison."""

    rows: List[ContentRateComparison]

    def category_rows(self, category: AppCategory
                      ) -> List[ContentRateComparison]:
        return [r for r in self.rows if r.category is category]

    def dropped_fps_80th(self, category: AppCategory,
                         method: str) -> float:
        """Dropped fps that 80 % of the category's apps stay under."""
        values = [r.dropped_fps(method)
                  for r in self.category_rows(category)]
        return percentile_of_apps(values, 0.8, tail="lower")

    def format(self) -> str:
        rows = []
        for r in self.rows:
            rows.append([
                r.app_name,
                r.category.value,
                f"{r.actual_fps:.1f}",
                f"{r.estimated_fps['section']:.1f}",
                f"{r.estimated_fps['section+boost']:.1f}",
                f"{r.dropped_fps('section'):.2f}",
                f"{r.dropped_fps('section+boost'):.2f}",
            ])
        return format_table(
            ["app", "category", "actual fps", "est (section)",
             "est (+boost)", "dropped (section)", "dropped (+boost)"],
            rows,
            title="Figure 10: estimated vs actual content rate",
        )


def run(survey: SurveyResult = None,
        config: SurveyConfig = None) -> Fig10Result:
    """Build Figure 10 from the shared survey."""
    survey = survey or run_survey(config)
    rows = []
    for app in survey.config.apps:
        baseline = survey.baseline(app)
        estimated = {
            m: survey.governed(app, m).mean_content_rate_fps
            for m in PROPOSED
        }
        rows.append(ContentRateComparison(
            app_name=app,
            category=baseline.profile.category,
            actual_fps=baseline.mean_content_rate_fps,
            estimated_fps=estimated,
        ))
    return Fig10Result(rows=rows)
