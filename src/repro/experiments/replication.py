"""Multi-seed replication: the paper's "repeated the same experiment".

A single seed is one Monkey run; the paper's ± figures come from
repetition.  This module reruns a (app, governor) comparison across
several seeds and reports the saving and quality as mean ± std *across
replications*, plus a simple bootstrap confidence interval on the mean
saving — enough to state whether a saving is statistically real rather
than one lucky script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..analysis.stats import MeanStd, mean_std
from ..core.quality import quality_vs_baseline
from ..errors import ConfigurationError
from ..pipeline.baseline import run_fixed_baseline
from ..sim.session import SessionConfig, run_session


@dataclass(frozen=True)
class ReplicatedComparison:
    """One (app, governor) comparison replicated across seeds."""

    app: str
    governor: str
    seeds: Tuple[int, ...]
    saved_mw: Tuple[float, ...]
    quality: Tuple[float, ...]

    @property
    def saved_stats(self) -> MeanStd:
        """Mean ± std of the saving across replications."""
        return mean_std(list(self.saved_mw))

    @property
    def quality_stats(self) -> MeanStd:
        """Mean ± std of the quality across replications."""
        return mean_std([100.0 * q for q in self.quality])

    def saving_confidence_interval(
            self, confidence: float = 0.95,
            resamples: int = 2000,
            rng_seed: int = 0) -> Tuple[float, float]:
        """Bootstrap CI on the mean saving (percentile method)."""
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {confidence}")
        values = np.asarray(self.saved_mw, dtype=float)
        rng = np.random.default_rng(rng_seed)
        means = np.array([
            rng.choice(values, size=len(values), replace=True).mean()
            for _ in range(resamples)
        ])
        alpha = (1.0 - confidence) / 2.0
        return (float(np.percentile(means, 100.0 * alpha)),
                float(np.percentile(means, 100.0 * (1.0 - alpha))))

    def saving_is_significant(self, confidence: float = 0.95) -> bool:
        """True if the CI on the mean saving excludes zero."""
        low, _ = self.saving_confidence_interval(confidence)
        return low > 0.0


def replicate_comparison(app: str, governor: str = "section+boost",
                         seeds: Sequence[int] = (1, 2, 3, 4, 5),
                         duration_s: float = 45.0,
                         ) -> ReplicatedComparison:
    """Run the fixed-vs-governed comparison across several seeds."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    saved = []
    quality = []
    for seed in seeds:
        base = run_fixed_baseline(app, duration_s=duration_s,
                                  seed=seed)
        governed = run_session(SessionConfig(
            app=app, governor=governor, duration_s=duration_s,
            seed=seed))
        saved.append(base.power_report().mean_power_mw -
                     governed.power_report().mean_power_mw)
        quality.append(quality_vs_baseline(
            governed.mean_content_rate_fps,
            base.mean_content_rate_fps))
    return ReplicatedComparison(
        app=app, governor=governor, seeds=tuple(seeds),
        saved_mw=tuple(saved), quality=tuple(quality))
