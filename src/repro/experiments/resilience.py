"""Resilience experiment — quality/power vs injected fault rate.

The deployment question the paper cannot answer on perfect hardware:
*does content-centric control degrade gracefully when its metering
breaks?*  This experiment sweeps the ``meter_fail`` probability from 0
to a heavy fault load and, at each point, runs the same session (same
app, same seed, same Monkey script) under the watchdog-supervised
governor, reporting

* mean power (and the fixed-60 Hz baseline it saves against),
* display quality relative to the fixed baseline,
* watchdog activity: metering failures absorbed, fail-safe entries,
  recoveries.

The shape a fail-safe design must show: quality stays pinned near 100 %
at *every* fault rate (the watchdog trades power, never quality), power
climbs toward the fixed baseline as faults push the panel into the
fail-safe maximum rate more often, and the session never crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.tables import format_table
from ..core.quality import quality_vs_baseline
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..sim.batch import run_batch
from ..sim.session import SessionConfig
from ..units import ensure_positive


@dataclass(frozen=True)
class ResilienceConfig:
    """Sweep parameters.

    ``fault_rates`` are ``meter_fail`` probabilities per governor
    decision; ``touch_drop`` optionally stresses the input path at the
    same time (0 keeps the sweep single-variable).  ``workers`` fans
    the sweep's sessions (baseline + one per fault rate, all
    independent) out over the parallel batch runner; the deterministic
    merge guarantees the result is identical to a serial run.
    """

    app: str = "Facebook"
    governor: str = "section+boost"
    duration_s: float = 30.0
    seed: int = 1
    fault_seed: int = 0
    fault_rates: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5)
    touch_drop: float = 0.0
    workers: int = 1

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        if not self.fault_rates:
            raise ConfigurationError("fault_rates must not be empty")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class ResilienceRow:
    """One operating point of the sweep."""

    fault_rate: float
    mean_power_mw: float
    mean_refresh_hz: float
    display_quality: float
    injected_faults: int
    meter_failures: int
    failsafe_entries: int
    recoveries: int


@dataclass(frozen=True)
class ResilienceResult:
    """The sweep plus its fixed-60 Hz power reference."""

    config: ResilienceConfig
    baseline_power_mw: float
    baseline_content_fps: float
    rows: List[ResilienceRow]

    def row_at(self, fault_rate: float) -> ResilienceRow:
        """The row for one fault rate."""
        for row in self.rows:
            if row.fault_rate == fault_rate:
                return row
        raise KeyError(f"no row for fault rate {fault_rate}")

    @property
    def min_quality(self) -> float:
        """Worst display quality across the sweep."""
        return min(row.display_quality for row in self.rows)

    def format(self) -> str:
        rows = []
        for r in self.rows:
            rows.append([
                f"{r.fault_rate:g}",
                f"{r.mean_power_mw:.0f}",
                f"{self.baseline_power_mw - r.mean_power_mw:.0f}",
                f"{100 * r.display_quality:.1f}",
                f"{r.mean_refresh_hz:.1f}",
                f"{r.meter_failures}",
                f"{r.failsafe_entries}",
                f"{r.recoveries}",
            ])
        return format_table(
            ["meter_fail", "power mW", "saved mW", "quality %",
             "refresh Hz", "failures", "failsafes", "recoveries"],
            rows,
            title=f"Resilience: {self.config.app} under "
                  f"{self.config.governor}, {self.config.duration_s:g} s"
                  f" (baseline {self.baseline_power_mw:.0f} mW)")


def run(config: Optional[ResilienceConfig] = None) -> ResilienceResult:
    """Run the fault-rate sweep.

    The baseline session and every operating point are independent, so
    the whole sweep goes through :func:`repro.sim.batch.run_batch` as
    one batch (``config.workers`` processes; 1 keeps it in-process).
    Rows are built from the summaries in input order, and the batch
    runner's deterministic merge makes the result independent of the
    worker count.
    """
    config = config or ResilienceConfig()

    def session(governor: str,
                plan: Optional[FaultPlan]) -> "SessionConfig":
        return SessionConfig(
            app=config.app, governor=governor,
            duration_s=config.duration_s, seed=config.seed,
            faults=plan)

    configs = [session("fixed", None)]
    for rate in config.fault_rates:
        plan = None
        if rate > 0.0 or config.touch_drop > 0.0:
            plan = FaultPlan(meter_fail=rate,
                             touch_drop=config.touch_drop,
                             seed=config.fault_seed)
        configs.append(session(config.governor, plan))

    summaries = run_batch(configs, workers=config.workers,
                          on_error="raise")
    base = summaries[0]
    baseline_power = base["mean_power_mw"]
    baseline_content = base["content_rate_fps"]

    rows = []
    for rate, summary in zip(config.fault_rates, summaries[1:]):
        faults = summary["faults"]
        rows.append(ResilienceRow(
            fault_rate=rate,
            mean_power_mw=summary["mean_power_mw"],
            mean_refresh_hz=summary["mean_refresh_hz"],
            display_quality=quality_vs_baseline(
                summary["content_rate_fps"], baseline_content),
            injected_faults=faults["injected_total"],
            meter_failures=faults["meter_failures"],
            failsafe_entries=faults["failsafe_entries"],
            recoveries=faults["recoveries"],
        ))
    return ResilienceResult(config=config,
                            baseline_power_mw=baseline_power,
                            baseline_content_fps=baseline_content,
                            rows=rows)
