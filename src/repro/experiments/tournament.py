"""The governor tournament: every policy, every workload, one board.

The survey (:mod:`repro.experiments.survey`) answers the paper's
question — how much does the proposed system save over fixed-60? —
for three governors.  The tournament generalizes it to the whole
registry: every registered governor (the paper's builtins, the
related-work zoo, and any third-party extension registered at call
time) runs the full 30-app catalog plus a set of recorded/synthetic
frame traces, and the result is a single power-vs-quality leaderboard.

Like the sweep, the output is split into two documents:

* the **tournament document** (``repro-tournament/1``) holds only
  deterministic content — governors, workload labels, per-cell
  metrics, the leaderboard — so a cold run, a cache-served warm run,
  and runs under either batch engine are byte-identical and CI can
  literally ``diff`` them;
* the **run-stats document** (``repro-tournament-stats/1``) holds the
  nondeterministic rest (wall clock, cache hit/miss counts, engine).

Workloads come in two flavours.  Catalog cells are plain
:class:`~repro.sim.session.SessionConfig` runs and participate fully
in the PR 8 result cache.  Trace cells replay generated synthetic
traces (``synth:<kind>`` labels) through ``trace:<path>`` workloads;
their summaries are path-independent (the embedded profile names the
workload), so the document stays byte-stable no matter where the
trace files land — but the cells themselves are uncacheable (the
cache cannot fingerprint an external file's future).

The tournament also runs the SmartNight-style luminance probe: a
dark/light pair of synthetic traces, identical except for background
emission, run under the ``luminance`` governor with OLED emission
tracking.  The probe block in the document demonstrates the paper
lineage claim end to end — dark content draws less *total* power
(emission and drive jointly) than light content.
"""

from __future__ import annotations

import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

from ..analysis.sweep import METRIC_FIELDS, _finite
from ..analysis.tables import format_table
from ..apps.catalog import all_app_names
from ..apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from ..errors import ConfigurationError
from ..pipeline.governors import governor_names
from ..sim.batch import run_batch
from ..sim.session import GOVERNOR_CHOICES, SessionConfig
from ..traces.format import TraceBuilder, save_trace
from ..traces.source import AUX_CONTENT_CHANGES, AUX_RENDERS
from ..traces.synth import SYNTH_KINDS, synthetic_geometry, \
    synthetic_trace
from ..units import ensure_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import ResultCache

#: Deterministic tournament document schema.
TOURNAMENT_SCHEMA = "repro-tournament/1"

#: Nondeterministic run-stats document schema.
TOURNAMENT_STATS_SCHEMA = "repro-tournament-stats/1"

#: The leaderboard's savings reference.
BASELINE = "fixed"

#: Label prefix of generated-trace workloads in the document.
SYNTH_LABEL_PREFIX = "synth:"


@dataclass(frozen=True)
class TournamentConfig:
    """Tournament parameters.

    ``governors=()`` means *every governor registered at run time* —
    builtins first, then extensions in registration order — which is
    how third-party policies enter the tournament without a config
    change.
    """

    governors: Tuple[str, ...] = ()
    apps: Tuple[str, ...] = field(default_factory=all_app_names)
    trace_kinds: Tuple[str, ...] = ("video", "scroll")
    duration_s: float = 20.0
    trace_duration_s: float = 10.0
    seed: int = 1
    resolution_divisor: int = 8
    track_oled: bool = True
    luminance_probe: bool = True

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        ensure_positive(self.trace_duration_s, "trace_duration_s")
        if not self.apps and not self.trace_kinds:
            raise ConfigurationError(
                "tournament needs at least one workload "
                "(apps or trace kinds)")
        for kind in self.trace_kinds:
            if kind not in SYNTH_KINDS:
                raise ConfigurationError(
                    f"unknown synthetic trace kind {kind!r}; "
                    f"choices: {SYNTH_KINDS}")

    def resolve_governors(self) -> Tuple[str, ...]:
        """The competitor list (explicit, or the live registry)."""
        if self.governors:
            known = governor_names()
            for governor in self.governors:
                if governor not in known:
                    raise ConfigurationError(
                        f"unknown governor {governor!r}; "
                        f"choices: {known}")
            return tuple(dict.fromkeys(self.governors))
        return governor_names()


# ----------------------------------------------------------------------
# The luminance probe pair
# ----------------------------------------------------------------------
def _probe_profile(name: str) -> AppProfile:
    """The embedded profile of one probe trace.

    ``touch_events_per_s=0`` keeps the replay Monkey-free, so probe
    sessions are deterministic across platforms and numpy versions.
    """
    return AppProfile(
        name=name,
        category=AppCategory.GENERAL,
        idle_content_fps=1.0,
        active_content_fps=1.0,
        content_process=ContentProcess.PERIODIC,
        idle_submit_fps=0.0,
        render_style=RenderStyle.SMALL_REGION,
        render_cost_mj=0.5,
        cpu_base_mw=50.0,
        touch_events_per_s=0.0,
        scroll_fraction=0.0,
        notes="luminance probe trace")


def probe_trace(dark: bool, *, duration_s: float = 10.0,
                seed: int = 0):
    """One of the dark/light probe pair.

    Both traces show the same scene — a static background with a
    small clock region redrawing once per second — and differ *only*
    in background emission: near-black (dark) vs near-white (light).
    Rate-relevant content is therefore identical; any power gap is
    content-dependent emission plus whatever rate head-room the
    luminance governor claims on the dark frame.
    """
    from ..pipeline.spec import encode_dataclass

    width, height = synthetic_geometry()
    level = 8 if dark else 230
    name = "probe-dark" if dark else "probe-light"
    rng = np.random.default_rng([seed, int(dark)])
    builder = TraceBuilder(width, height)
    background = np.full((height, width, 3), level, dtype=np.uint8)
    clock_h = max(2, height // 24)
    clock_w = max(4, width // 6)
    frame = background.copy()
    times = []
    for index in range(1, int(duration_s) + 1):
        time = float(index)
        frame[1:1 + clock_h, width - clock_w - 1: width - 1] = (
            rng.integers(0, 256, (clock_h, clock_w, 3),
                         dtype=np.uint8))
        builder.add_frame(time, frame)
        times.append(time)
    stamps = np.asarray(times, dtype=np.float64)
    profile = _probe_profile(name)
    return builder.build(
        duration_s,
        aux={AUX_CONTENT_CHANGES: stamps, AUX_RENDERS: stamps.copy()},
        meta={"origin": f"probe:{name}",
              "profile": encode_dataclass(profile)})


# ----------------------------------------------------------------------
# The tournament
# ----------------------------------------------------------------------
def _trace_workloads(config: TournamentConfig,
                     workdir: pathlib.Path) -> List[Tuple[str, str]]:
    """Generate the synthetic traces; ``(label, app-string)`` pairs."""
    workloads = []
    for kind in config.trace_kinds:
        trace = synthetic_trace(kind,
                                duration_s=config.trace_duration_s,
                                seed=config.seed)
        path = save_trace(trace, workdir / f"synth_{kind}.trace")
        workloads.append((f"{SYNTH_LABEL_PREFIX}{kind}",
                          f"trace:{path}"))
    return workloads


def _session(config: TournamentConfig, app: str,
             governor: str) -> SessionConfig:
    return SessionConfig(app=app, governor=governor,
                         duration_s=config.duration_s,
                         seed=config.seed,
                         resolution_divisor=config.resolution_divisor,
                         track_oled=config.track_oled)


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _luminance_probe(config: TournamentConfig,
                     workdir: pathlib.Path,
                     workers: Optional[int],
                     engine: str) -> Dict[str, Any]:
    """Run the dark/light pair under the luminance governor.

    Probe cells never touch the cache (trace workloads are
    uncacheable anyway) and always carry OLED tracking — the probe
    *is* the joint emission+drive demonstration.
    """
    paths = {}
    for label, dark in (("dark", True), ("light", False)):
        trace = probe_trace(dark, duration_s=config.trace_duration_s,
                            seed=config.seed)
        paths[label] = save_trace(trace, workdir / f"probe_{label}.trace")
    configs = [SessionConfig(app=f"trace:{paths[label]}",
                             governor="luminance",
                             duration_s=config.duration_s,
                             seed=config.seed,
                             resolution_divisor=(
                                 config.resolution_divisor),
                             track_oled=True)
               for label in ("dark", "light")]
    dark_summary, light_summary = run_batch(
        configs, workers=workers, on_error="raise", engine=engine)
    dark_power = dark_summary["mean_power_mw"]
    light_power = light_summary["mean_power_mw"]
    return {
        "governor": "luminance",
        "dark": {name: _finite(dark_summary.get(name))
                 for name in METRIC_FIELDS},
        "light": {name: _finite(light_summary.get(name))
                  for name in METRIC_FIELDS},
        "dark_below_light": bool(dark_power < light_power),
    }


def run_tournament(config: Optional[TournamentConfig] = None, *,
                   workers: Optional[int] = None,
                   cache: Optional["ResultCache"] = None,
                   engine: str = "auto",
                   workdir: Optional[str] = None) -> Dict[str, Any]:
    """Run the tournament; returns the deterministic document.

    All catalog cells fan out as one :func:`~repro.sim.batch.run_batch`
    call (cache-served where warm), all trace cells as a second
    (uncacheable by construction); ``engine`` routes each cell through
    the vector fast path when it is eligible and falls back to scalar
    otherwise, with byte-identical summaries either way.  ``workdir``
    receives the generated trace files (a temporary directory when
    ``None``); the document never mentions the paths, so it is
    byte-stable across workdirs.
    """
    config = config or TournamentConfig()
    governors = config.resolve_governors()
    if BASELINE not in governors:
        raise ConfigurationError(
            f"tournament needs the {BASELINE!r} baseline governor "
            f"for the savings column")

    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="tournament-")
        trace_dir = pathlib.Path(cleanup.name)
    else:
        trace_dir = pathlib.Path(workdir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    try:
        traces = _trace_workloads(config, trace_dir)
        catalog_configs = [_session(config, app, governor)
                           for governor in governors
                           for app in config.apps]
        trace_configs = [_session(config, app, governor)
                         for governor in governors
                         for _, app in traces]
        catalog_entries = run_batch(catalog_configs, workers=workers,
                                    on_error="raise", cache=cache,
                                    engine=engine)
        trace_entries = run_batch(trace_configs, workers=workers,
                                  on_error="raise", engine=engine)

        labels = ([f"app:{app}" for app in config.apps]
                  + [label for label, _ in traces])
        cells: List[Dict[str, Any]] = []
        per_governor: Dict[str, List[Dict[str, Any]]] = {
            governor: [] for governor in governors}
        catalog_flat = iter(catalog_entries)
        trace_flat = iter(trace_entries)
        for governor in governors:
            rows = [next(catalog_flat) for _ in config.apps]
            rows += [next(trace_flat) for _ in traces]
            for label, summary in zip(labels, rows):
                metrics = {name: _finite(summary.get(name))
                           for name in METRIC_FIELDS}
                cell = {"governor": governor, "workload": label,
                        "metrics": metrics}
                cells.append(cell)
                per_governor[governor].append(cell)

        leaderboard = _leaderboard(governors, per_governor)
        probe = None
        if config.luminance_probe and \
                "luminance" in GOVERNOR_CHOICES:
            probe = _luminance_probe(config, trace_dir, workers,
                                     engine)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    return {
        "schema": TOURNAMENT_SCHEMA,
        "config": {
            "duration_s": config.duration_s,
            "trace_duration_s": config.trace_duration_s,
            "seed": config.seed,
            "resolution_divisor": config.resolution_divisor,
            "track_oled": config.track_oled,
        },
        "governors": list(governors),
        "workloads": labels,
        "cells": cells,
        "leaderboard": leaderboard,
        "luminance_probe": probe,
    }


def _leaderboard(governors: Sequence[str],
                 per_governor: Mapping[str, List[Dict[str, Any]]]
                 ) -> List[Dict[str, Any]]:
    """Per-governor aggregates, ranked by mean power (ascending)."""
    def collect(governor: str, name: str) -> List[float]:
        return [cell["metrics"][name]
                for cell in per_governor[governor]
                if cell["metrics"][name] is not None]

    baseline_power = _mean(collect(BASELINE, "mean_power_mw"))
    rows = []
    for governor in governors:
        mean_power = _mean(collect(governor, "mean_power_mw"))
        savings = None
        if mean_power is not None and baseline_power:
            savings = 100.0 * (baseline_power - mean_power) \
                / baseline_power
        rows.append({
            "governor": governor,
            "mean_power_mw": mean_power,
            "savings_vs_fixed_pct": savings,
            "mean_display_quality": _mean(
                collect(governor, "display_quality")),
            "mean_refresh_hz": _mean(
                collect(governor, "mean_refresh_hz")),
            "rate_switches": sum(
                int(v) for v in collect(governor, "rate_switches")),
            "cells": len(per_governor[governor]),
        })
    rows.sort(key=lambda row: (
        row["mean_power_mw"] if row["mean_power_mw"] is not None
        else float("inf"),
        row["governor"]))
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_tournament(document: Mapping[str, Any]) -> str:
    """The leaderboard as a console table."""
    rows = []
    for row in document.get("leaderboard", []):
        savings = row.get("savings_vs_fixed_pct")
        quality = row.get("mean_display_quality")
        rows.append([
            str(row.get("rank", "")),
            row["governor"],
            f"{row['mean_power_mw']:.1f}"
            if row.get("mean_power_mw") is not None else "-",
            f"{savings:+.1f}" if savings is not None else "-",
            f"{100.0 * quality:.1f}" if quality is not None else "-",
            f"{row['mean_refresh_hz']:.1f}"
            if row.get("mean_refresh_hz") is not None else "-",
            str(row.get("rate_switches", "-")),
        ])
    workloads = document.get("workloads", [])
    lines = [format_table(
        ["rank", "governor", "power mW", "saved %", "quality %",
         "refresh Hz", "switches"],
        rows,
        title=f"tournament: {len(rows)} governors x "
              f"{len(workloads)} workloads")]
    probe = document.get("luminance_probe")
    if probe:
        dark = probe["dark"]["mean_power_mw"]
        light = probe["light"]["mean_power_mw"]
        verdict = "dark < light" if probe["dark_below_light"] \
            else "PROBE FAILED (dark >= light)"
        lines.append(
            f"luminance probe: dark {dark:.1f} mW vs light "
            f"{light:.1f} mW ({verdict})")
    return "\n".join(lines)


@dataclass
class TournamentResult:
    """Registry-facing wrapper (``repro experiment tournament``)."""

    document: Dict[str, Any]

    def format(self) -> str:
        return format_tournament(self.document)


def run(config: Optional[TournamentConfig] = None, *,
        workers: Optional[int] = None) -> TournamentResult:
    """Experiment-registry entry point."""
    return TournamentResult(run_tournament(config, workers=workers))


__all__ = [
    "BASELINE",
    "TOURNAMENT_SCHEMA",
    "TOURNAMENT_STATS_SCHEMA",
    "TournamentConfig",
    "TournamentResult",
    "format_tournament",
    "probe_trace",
    "run",
    "run_tournament",
]
