"""Figure 9 — per-application power saving across the 30-app catalog.

Reconstructed targets: general apps save ~120 mW on average and games
~290 mW, with maxima around 440/530 mW; CGV and Daum Maps stand out
among general apps; touch boosting costs a small give-back (~16 mW
general, ~30 mW games).  The shape to reproduce: games save roughly
2-3x more than general apps, and the redundant-frame generators (high
``idle_submit_fps``) top both categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.stats import MeanStd, mean_std
from ..analysis.tables import format_table
from ..apps.profile import AppCategory
from .survey import PROPOSED, SurveyConfig, SurveyResult, run_survey


@dataclass(frozen=True)
class AppSaving:
    """One bar of Figure 9."""

    app_name: str
    category: AppCategory
    baseline_mw: float
    saved_mw: Dict[str, float]  # method -> saved power


@dataclass(frozen=True)
class Fig9Result:
    """Per-app savings for both methods."""

    rows: List[AppSaving]

    def category_rows(self, category: AppCategory) -> List[AppSaving]:
        return [r for r in self.rows if r.category is category]

    def category_mean(self, category: AppCategory,
                      method: str) -> MeanStd:
        """Mean ± std saved power of one category under one method."""
        return mean_std([r.saved_mw[method]
                         for r in self.category_rows(category)])

    def category_max(self, category: AppCategory, method: str) -> float:
        """Largest per-app saving in a category."""
        return max(r.saved_mw[method]
                   for r in self.category_rows(category))

    def boost_giveback(self, category: AppCategory) -> float:
        """Mean power given back by touch boosting in a category."""
        section = self.category_mean(category, "section").mean
        boost = self.category_mean(category, "section+boost").mean
        return section - boost

    def format(self) -> str:
        rows = []
        for r in self.rows:
            rows.append([
                r.app_name,
                r.category.value,
                f"{r.baseline_mw:.0f}",
                f"{r.saved_mw['section']:.0f}",
                f"{r.saved_mw['section+boost']:.0f}",
            ])
        return format_table(
            ["app", "category", "baseline mW", "saved (section)",
             "saved (+boost)"],
            rows,
            title="Figure 9: per-app power saving vs fixed 60 Hz",
        )


def run(survey: SurveyResult = None,
        config: SurveyConfig = None) -> Fig9Result:
    """Build Figure 9 from the shared survey."""
    survey = survey or run_survey(config)
    per_method = {m: {r.app_name: r for r in survey.measurements(m)}
                  for m in PROPOSED}
    rows = []
    for app in survey.config.apps:
        base = per_method[PROPOSED[0]][app]
        rows.append(AppSaving(
            app_name=app,
            category=base.category,
            baseline_mw=base.baseline_power_mw,
            saved_mw={m: per_method[m][app].saved_power_mw
                      for m in PROPOSED},
        ))
    return Fig9Result(rows=rows)
