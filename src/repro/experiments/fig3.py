"""Figure 3 — redundancy survey over the 30-application catalog.

For every app, run the fixed-60 Hz baseline and split its frame rate
into the meaningful content rate and the redundant remainder, exactly
as the paper's instrumented framework does.  The paper's headline
claims, which the benchmark asserts:

* general applications mostly need < 30 fps of meaningful content;
* ~40 % of general apps show around 20 redundant fps;
* every game's total frame rate exceeds 30 fps;
* 80 % of games produce more than 20 redundant fps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.tables import format_table
from ..apps.catalog import GAME_APP_NAMES, GENERAL_APP_NAMES
from ..apps.profile import AppCategory
from .survey import SurveyConfig, SurveyResult, run_survey


@dataclass(frozen=True)
class AppRedundancy:
    """One app's Figure 3 bar."""

    app_name: str
    category: AppCategory
    frame_rate_fps: float
    meaningful_fps: float

    @property
    def redundant_fps(self) -> float:
        """Redundant frames per second."""
        return max(0.0, self.frame_rate_fps - self.meaningful_fps)


@dataclass(frozen=True)
class Fig3Result:
    """Per-app redundancy breakdown for both categories."""

    rows: List[AppRedundancy]

    def category_rows(self, category: AppCategory) -> List[AppRedundancy]:
        """Rows of one category, catalog order."""
        return [r for r in self.rows if r.category is category]

    def fraction_with_redundancy_above(self, category: AppCategory,
                                       threshold_fps: float) -> float:
        """Fraction of a category's apps whose redundant rate exceeds
        ``threshold_fps`` (the paper's 40 % / 80 % statements)."""
        rows = self.category_rows(category)
        hits = sum(1 for r in rows if r.redundant_fps > threshold_fps)
        return hits / len(rows)

    def format(self) -> str:
        """The figure's bars as a table."""
        table_rows = []
        for r in self.rows:
            table_rows.append([
                r.app_name,
                r.category.value,
                f"{r.frame_rate_fps:.1f}",
                f"{r.meaningful_fps:.1f}",
                f"{r.redundant_fps:.1f}",
            ])
        return format_table(
            ["app", "category", "frame fps", "meaningful fps",
             "redundant fps"],
            table_rows,
            title="Figure 3: meaningful vs redundant frame rate "
                  "(fixed 60 Hz)",
        )


def run(survey: SurveyResult = None,
        config: SurveyConfig = None) -> Fig3Result:
    """Build Figure 3 from the shared survey (run it if needed)."""
    survey = survey or run_survey(config)
    rows = []
    for names, category in ((GENERAL_APP_NAMES, AppCategory.GENERAL),
                            (GAME_APP_NAMES, AppCategory.GAME)):
        for app in names:
            if app not in survey.sessions:
                continue
            session = survey.baseline(app)
            # The meter's view is what the paper's framework measures;
            # at fixed 60 Hz it matches the compositor ground truth.
            rows.append(AppRedundancy(
                app_name=app,
                category=category,
                frame_rate_fps=session.mean_frame_rate_fps,
                meaningful_fps=session.meter.total_meaningful /
                session.duration_s,
            ))
    return Fig3Result(rows=rows)
