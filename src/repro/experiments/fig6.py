"""Figure 6 — metering accuracy and cost vs number of compared pixels.

Two sweeps over the paper's five pixel budgets (2K, 4K, 9K, 36K and the
full 921K):

* **accuracy** — run the Nexus Revamped stressor wallpaper (small dots
  moving across the screen) at native 720x1280 resolution under each
  budget and compare the meter's meaningful-frame count against the
  compositor's full-buffer ground truth;
* **cost** — wall-clock the grid comparison itself on real framebuffer
  pairs.  The paper's finding to reproduce: the full comparison blows
  the 16.67 ms V-Sync budget, while everything at or below 36K is
  cheap, so 9K (the smallest budget with zero error) is the operating
  point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.tables import format_table
from ..apps.wallpaper import nexus_revamped
from ..core.content_rate import MeterConfig
from ..core.grid import PAPER_PIXEL_BUDGETS, GridComparator, GridSpec
from ..display.presets import GALAXY_S3_PANEL
from ..pipeline.baseline import run_fixed_baseline
from ..units import VSYNC_DEADLINE_60HZ_S


@dataclass(frozen=True)
class BudgetAccuracy:
    """Accuracy of one pixel budget on the stressor wallpaper."""

    label: str
    sample_count: int
    grid_width: int
    grid_height: int
    measured_meaningful: int
    actual_meaningful: int

    @property
    def error_rate(self) -> float:
        """|measured - actual| / actual (fraction)."""
        if self.actual_meaningful == 0:
            return 0.0 if self.measured_meaningful == 0 else float("inf")
        return abs(self.measured_meaningful -
                   self.actual_meaningful) / self.actual_meaningful


@dataclass(frozen=True)
class BudgetCost:
    """Comparison cost of one pixel budget."""

    label: str
    sample_count: int
    mean_compare_s: float
    median_compare_s: float

    @property
    def within_vsync_budget(self) -> bool:
        """True if one comparison fits inside the 60 Hz V-Sync slot."""
        return self.median_compare_s < VSYNC_DEADLINE_60HZ_S


@dataclass(frozen=True)
class Fig6Result:
    """Accuracy and cost per budget."""

    accuracy: List[BudgetAccuracy]
    cost: List[BudgetCost]

    def format(self) -> str:
        cost_by_label = {c.label: c for c in self.cost}
        rows = []
        for a in self.accuracy:
            c = cost_by_label.get(a.label)
            rows.append([
                a.label,
                f"{a.sample_count}",
                f"{a.grid_width}x{a.grid_height}",
                f"{100.0 * a.error_rate:.1f}%",
                f"{1e3 * c.median_compare_s:.3f} ms" if c else "-",
                ("yes" if c and c.within_vsync_budget else
                 ("NO" if c else "-")),
            ])
        return format_table(
            ["budget", "pixels", "grid", "error rate", "compare time",
             "fits 16.67 ms"],
            rows,
            title="Figure 6: content-rate accuracy and cost vs "
                  "compared pixels",
        )


def run_accuracy(duration_s: float = 15.0, seed: int = 3,
                 budgets: Dict[str, int] = None) -> List[BudgetAccuracy]:
    """The accuracy sweep: one native-resolution session per budget."""
    budgets = budgets or dict(PAPER_PIXEL_BUDGETS)
    wallpaper = nexus_revamped()
    results = []
    for label, samples in budgets.items():
        session = run_fixed_baseline(
            wallpaper,
            duration_s=duration_s,
            seed=seed,
            resolution_divisor=1,  # native 720x1280
            meter=MeterConfig(sample_count=samples),
        )
        grid = session.meter.grid
        results.append(BudgetAccuracy(
            label=label,
            sample_count=grid.sample_count,
            grid_width=grid.grid_width,
            grid_height=grid.grid_height,
            measured_meaningful=session.meter.total_meaningful,
            actual_meaningful=len(session.meaningful_compositions),
        ))
    return results


def run_catalog_accuracy(duration_s: float = 20.0, seed: int = 5,
                         sample_count: int = 9216,
                         apps: "list[str]" = None
                         ) -> "dict[str, float]":
    """Metering error per catalog app at one budget (Section 4.1).

    The paper first validated the meter against its 30 commercial
    applications and found it "initially 100 %" accurate — ordinary
    app content (scrolls, scene changes, video) is far larger than a
    grid cell, so only the dot-wallpaper stressor exposes budget
    limits.  Returns ``{app: error fraction}`` against the
    compositor's full-buffer ground truth.
    """
    from ..apps.catalog import all_app_names
    from ..core.content_rate import measure_accuracy

    errors = {}
    for app in (apps or all_app_names()):
        session = run_fixed_baseline(
            app, duration_s=duration_s, seed=seed,
            meter=MeterConfig(sample_count=sample_count))
        errors[app] = measure_accuracy(
            session.meter.total_meaningful,
            len(session.meaningful_compositions))
    return errors


def make_frame_pair(seed: int = 0):
    """Two consecutive native-resolution wallpaper frames (for timing)."""
    from ..graphics.surface import Surface

    spec = GALAXY_S3_PANEL
    surface = Surface(spec.width, spec.height, name="timing")
    renderer = nexus_revamped().make_renderer()
    rng = np.random.default_rng(seed)
    renderer.render(surface, rng)
    first = surface.pixels.copy()
    renderer.render(surface, rng)
    second = surface.pixels.copy()
    return first, second


def run_cost(repeats: int = 50,
             budgets: Dict[str, int] = None) -> List[BudgetCost]:
    """Wall-clock the comparison at each budget.

    Times the *equal-frames* case: declaring a frame redundant requires
    examining every sample (no early-out on a mismatch), and redundant
    frames are both the common case in the surveyed workloads and the
    worst case for the comparison — the cost the V-Sync budget must
    absorb every frame.
    """
    budgets = budgets or dict(PAPER_PIXEL_BUDGETS)
    first, _ = make_frame_pair()
    duplicate = first.copy()
    shape = first.shape[:2]
    results = []
    for label, samples in budgets.items():
        grid = GridSpec.from_sample_count(shape, samples)
        comparator = GridComparator(grid)
        timings = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            comparator.frames_equal(duplicate, first)
            timings.append(time.perf_counter() - t0)
        results.append(BudgetCost(
            label=label,
            sample_count=grid.sample_count,
            mean_compare_s=float(np.mean(timings)),
            median_compare_s=float(np.median(timings)),
        ))
    return results


def run(duration_s: float = 15.0, seed: int = 3,
        repeats: int = 50) -> Fig6Result:
    """Both sweeps."""
    return Fig6Result(accuracy=run_accuracy(duration_s, seed),
                      cost=run_cost(repeats))
