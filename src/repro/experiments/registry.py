"""Experiment registry: the per-experiment index of DESIGN.md as code.

Maps each paper table/figure to its driver module and the benchmark
that regenerates it, so tooling (and readers) can enumerate the
reproduction surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentInfo:
    """One row of the reproduction index."""

    experiment_id: str
    paper_content: str
    workload: str
    modules: Tuple[str, ...]
    benchmark: str
    runner: Callable


def _lazy(module_name: str) -> Callable:
    def call(*args, **kwargs):
        import importlib
        module = importlib.import_module(
            f"repro.experiments.{module_name}")
        return module.run(*args, **kwargs)
    return call


EXPERIMENTS: Tuple[ExperimentInfo, ...] = (
    ExperimentInfo(
        "fig2", "Frame-rate traces, Facebook vs Jelly Splash (fixed "
        "60 Hz)", "60 s sessions, Monkey touches",
        ("repro.apps.catalog", "repro.sim.session"),
        "benchmarks/bench_fig2_frame_rate_traces.py", _lazy("fig2")),
    ExperimentInfo(
        "fig3", "Meaningful vs redundant frame rate, 30 apps",
        "45 s per app, fixed 60 Hz",
        ("repro.apps.catalog", "repro.core.content_rate"),
        "benchmarks/bench_fig3_redundancy_survey.py", _lazy("fig3")),
    ExperimentInfo(
        "fig5", "Section table and worked control example",
        "static (Equation 1 on the Galaxy S3 level set)",
        ("repro.core.section_table",),
        "benchmarks/bench_fig5_section_table.py", _lazy("fig5")),
    ExperimentInfo(
        "fig6", "Metering error and runtime vs compared pixels",
        "Nexus Revamped stressor at native 720x1280",
        ("repro.core.grid", "repro.apps.wallpaper"),
        "benchmarks/bench_fig6_metering_cost.py", _lazy("fig6")),
    ExperimentInfo(
        "fig7", "Content/refresh-rate traces under control",
        "Facebook & Jelly Splash, 60 s, +/- touch boost",
        ("repro.core.governor", "repro.core.manager"),
        "benchmarks/bench_fig7_control_traces.py", _lazy("fig7")),
    ExperimentInfo(
        "fig8", "Power saved over time, Facebook & Jelly Splash",
        "same sessions vs fixed-60 baseline",
        ("repro.power.model", "repro.experiments.fig8"),
        "benchmarks/bench_fig8_power_save_traces.py", _lazy("fig8")),
    ExperimentInfo(
        "fig9", "Per-app mean power saving, 30 apps",
        "45 s per app, both methods",
        ("repro.experiments.survey", "repro.power.model"),
        "benchmarks/bench_fig9_power_survey.py", _lazy("fig9")),
    ExperimentInfo(
        "fig10", "Estimated vs actual content rate per app",
        "45 s per app",
        ("repro.core.quality", "repro.experiments.survey"),
        "benchmarks/bench_fig10_content_rate_effect.py", _lazy("fig10")),
    ExperimentInfo(
        "fig11", "Display quality per app",
        "derived from the Figure 10 runs",
        ("repro.core.quality", "repro.experiments.survey"),
        "benchmarks/bench_fig11_display_quality.py", _lazy("fig11")),
    ExperimentInfo(
        "table1", "Category summary: saved power % and quality %",
        "all 30 apps, both methods",
        ("repro.analysis.aggregate", "repro.experiments.survey"),
        "benchmarks/bench_table1_summary.py", _lazy("table1")),
    ExperimentInfo(
        "tournament", "Power-vs-quality leaderboard over every "
        "registered governor (governor-zoo extension)",
        "30-app catalog + synthetic traces + luminance probe, "
        "20 s per cell",
        ("repro.experiments.tournament", "repro.pipeline.governors",
         "repro.governors"),
        "benchmarks/bench_tournament.py", _lazy("tournament")),
    ExperimentInfo(
        "resilience", "Quality/power vs injected fault rate "
        "(robustness extension: fail-safe governor watchdog)",
        "Facebook, 30 s, meter_fail sweep with watchdog supervision",
        ("repro.faults.injector", "repro.core.watchdog",
         "repro.experiments.resilience"),
        "benchmarks/bench_resilience_faults.py", _lazy("resilience")),
)


def experiment(experiment_id: str) -> ExperimentInfo:
    """Look up one experiment by id (e.g. ``"fig9"``)."""
    for info in EXPERIMENTS:
        if info.experiment_id == experiment_id:
            return info
    raise ConfigurationError(
        f"unknown experiment {experiment_id!r}; known: "
        f"{[e.experiment_id for e in EXPERIMENTS]}")
