"""Experiment drivers — one module per paper table/figure.

Each driver runs the sessions it needs (sharing the cached 30-app
survey where possible), returns a typed result object, and knows how to
format itself as the rows/series the paper reports.  The modules are
consumed by ``benchmarks/`` (assertions + printed output) and
``examples/`` (narrative walk-throughs).

=========  =====================================================
Module     Paper content
=========  =====================================================
fig2       Frame-rate traces: Facebook vs Jelly Splash (fixed 60)
fig3       Meaningful vs redundant frame rate, 30-app survey
fig6       Metering accuracy and cost vs compared pixels
fig7       Content/refresh-rate traces under control (+/- boost)
fig8       Power saved over time, Facebook & Jelly Splash
fig9       Per-app power saving, 30 apps
fig10      Estimated vs actual content rate per app
fig11      Display quality per app
table1     Category summary (saved power %, quality %)
=========  =====================================================
"""

from .survey import (
    SurveyConfig,
    SurveyResult,
    SurveySummaries,
    run_survey,
    run_survey_summaries,
)
from . import (fig2, fig3, fig5, fig6, fig7, fig8, fig9, fig10,
               fig11, table1)
from .registry import EXPERIMENTS, ExperimentInfo
from .replication import ReplicatedComparison, replicate_comparison
from .report import generate_report

__all__ = [
    "EXPERIMENTS",
    "ExperimentInfo",
    "ReplicatedComparison",
    "SurveyConfig",
    "SurveyResult",
    "SurveySummaries",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "generate_report",
    "replicate_comparison",
    "run_survey",
    "run_survey_summaries",
    "table1",
]
