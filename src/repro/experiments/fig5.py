"""Figure 5 — the section table and its worked control example.

Figure 5 is a design illustration rather than a measurement, but it
pins two concrete artefacts the reproduction must match exactly:

* the predefined section table for the Galaxy S3's five levels
  (0–10 fps → 20 Hz, 10–22 → 24, 22–27 → 30, 27–35 → 40, 35+ → 60);
* the worked example: content at 8 fps selects 20 Hz; when the content
  rate rises to 33 fps the refresh rate becomes 40 Hz.

This driver regenerates the table from Equation (1), replays the
worked example, and verifies both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.tables import format_table
from ..core.section_table import SectionTable
from ..display.presets import GALAXY_S3_PANEL

#: The exact table printed in Figure 5: (low, high, refresh).
PAPER_TABLE: Tuple[Tuple[float, float, float], ...] = (
    (0.0, 10.0, 20.0),
    (10.0, 22.0, 24.0),
    (22.0, 27.0, 30.0),
    (27.0, 35.0, 40.0),
    (35.0, float("inf"), 60.0),
)

#: Figure 5's worked control example: (content fps, expected Hz).
WORKED_EXAMPLE: Tuple[Tuple[float, float], ...] = (
    (8.0, 20.0),
    (33.0, 40.0),
)


@dataclass(frozen=True)
class Fig5Result:
    """The regenerated table and the example outcomes."""

    table: SectionTable
    matches_paper: bool
    example_outcomes: Tuple[Tuple[float, float, float], ...]

    def format(self) -> str:
        rows: List[List[str]] = []
        for section in self.table.sections:
            high = ("inf" if section.high == float("inf")
                    else f"{section.high:g}")
            rows.append([f"[{section.low:g}, {high}) fps",
                         f"{section.refresh_rate_hz:g} Hz"])
        table_text = format_table(
            ["content rate", "refresh rate"], rows,
            title="Figure 5: predefined section table (Galaxy S3)")
        examples = "\n".join(
            f"  content {content:g} fps -> {selected:g} Hz "
            f"(paper: {expected:g} Hz)"
            for content, expected, selected in self.example_outcomes)
        verdict = ("table matches the paper exactly"
                   if self.matches_paper else
                   "TABLE DIVERGES FROM THE PAPER")
        return f"{table_text}\n{examples}\n{verdict}"


def run() -> Fig5Result:
    """Regenerate the Figure 5 table and worked example."""
    table = SectionTable.for_panel(GALAXY_S3_PANEL)
    matches = True
    for section, (low, high, rate) in zip(table.sections, PAPER_TABLE):
        if (section.low, section.high, section.refresh_rate_hz) != \
                (low, high, rate):
            matches = False
    if len(table.sections) != len(PAPER_TABLE):
        matches = False
    outcomes = tuple(
        (content, expected, table.lookup(content))
        for content, expected in WORKED_EXAMPLE)
    matches = matches and all(expected == selected
                              for _, expected, selected in outcomes)
    return Fig5Result(table=table, matches_paper=matches,
                      example_outcomes=outcomes)
