"""One-command reproduction report: every paper artifact in one page.

``generate_report()`` runs all the experiment drivers (sharing the
30-app survey) and concatenates their formatted tables into a single
markdown-ish document — the thing to attach when someone asks "show me
the reproduction".  The CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

from typing import Optional

from .. import __version__
from ..units import ensure_positive
from . import fig2, fig3, fig5, fig6, fig7, fig8, fig9, fig10, fig11
from . import table1
from .survey import SurveyConfig, SurveyResult, run_survey

HEADER = """\
# Reproduction report — Content-centric Display Energy Management
# (Kim, Jung, Cha; DAC 2014) — repro {version}
#
# Regenerate with:  python -m repro report
# Paper-vs-measured commentary: EXPERIMENTS.md
"""


def generate_report(survey: Optional[SurveyResult] = None,
                    survey_config: Optional[SurveyConfig] = None,
                    trace_duration_s: float = 60.0,
                    fig6_duration_s: float = 12.0,
                    seed: int = 1) -> str:
    """Run every experiment and return the combined report text.

    Parameters
    ----------
    survey:
        A pre-run 30-app survey to reuse; None runs one (this is the
        slow part, ~45 s of sessions per app).
    survey_config:
        Config for the survey when it must be run here.
    trace_duration_s:
        Length of the Figure 2/7/8 trace sessions.
    fig6_duration_s:
        Length of each Figure 6 accuracy session.
    seed:
        Seed for the trace sessions.
    """
    ensure_positive(trace_duration_s, "trace_duration_s")
    ensure_positive(fig6_duration_s, "fig6_duration_s")
    survey = survey or run_survey(survey_config)

    sections = [HEADER.format(version=__version__)]
    sections.append(fig2.run(duration_s=trace_duration_s,
                             seed=seed).format())
    sections.append(fig3.run(survey).format())
    sections.append(fig5.run().format())
    sections.append(fig6.run(duration_s=fig6_duration_s,
                             seed=seed + 2, repeats=30).format())
    sections.append(fig7.run(duration_s=trace_duration_s,
                             seed=seed).format())
    sections.append(fig8.run(duration_s=trace_duration_s,
                             seed=seed).format())
    sections.append(fig9.run(survey).format())
    sections.append(fig10.run(survey).format())
    sections.append(fig11.run(survey).format())
    sections.append(table1.run(survey).format())
    return "\n\n".join(sections) + "\n"
