"""Figure 2 — frame-rate traces of Facebook and Jelly Splash.

The paper's motivating observation: under the stock fixed-60 Hz
configuration, Facebook's frame rate sits near zero except around user
requests, while Jelly Splash holds ~60 fps even when the content does
not change.  This driver runs both apps under the fixed baseline and
returns their 1-second-binned frame-rate and content-rate traces plus
the touch instants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..pipeline.baseline import run_fixed_baseline

#: The two trace applications of Figure 2.
TRACE_APPS = ("Facebook", "Jelly Splash")


@dataclass(frozen=True)
class AppTrace:
    """One app's fixed-60 Hz trace."""

    app_name: str
    bin_centers_s: np.ndarray
    frame_rate_fps: np.ndarray
    content_rate_fps: np.ndarray
    touch_times_s: Tuple[float, ...]

    @property
    def median_frame_rate(self) -> float:
        """Median of the binned frame rate."""
        return float(np.median(self.frame_rate_fps))

    @property
    def mean_redundant_rate(self) -> float:
        """Mean redundant frame rate across the trace."""
        return float(np.mean(self.frame_rate_fps - self.content_rate_fps))


@dataclass(frozen=True)
class Fig2Result:
    """Both traces, plus the session length."""

    duration_s: float
    traces: Dict[str, AppTrace]

    def format(self) -> str:
        """Summary rows in the shape of the figure's narrative."""
        rows = []
        for name in TRACE_APPS:
            t = self.traces[name]
            rows.append([
                name,
                f"{t.median_frame_rate:.1f}",
                f"{float(np.mean(t.frame_rate_fps)):.1f}",
                f"{float(np.mean(t.content_rate_fps)):.1f}",
                f"{t.mean_redundant_rate:.1f}",
                f"{len(t.touch_times_s)}",
            ])
        return format_table(
            ["app", "median fps", "mean fps", "mean content fps",
             "mean redundant fps", "touches"],
            rows,
            title="Figure 2: frame rate under fixed 60 Hz",
        )


def run(duration_s: float = 60.0, seed: int = 1) -> Fig2Result:
    """Run the Figure 2 sessions."""
    traces: Dict[str, AppTrace] = {}
    for app in TRACE_APPS:
        session = run_fixed_baseline(app, duration_s=duration_s,
                                     seed=seed)
        centers, frame_rate = session.compositions.binned_rate(
            0.0, duration_s, 1.0)
        _, content_rate = session.meaningful_compositions.binned_rate(
            0.0, duration_s, 1.0)
        traces[app] = AppTrace(
            app_name=app,
            bin_centers_s=centers,
            frame_rate_fps=frame_rate,
            content_rate_fps=content_rate,
            touch_times_s=session.touch_script.times,
        )
    return Fig2Result(duration_s=duration_s, traces=traces)
