"""Figure 7 — content-rate and refresh-rate traces under control.

Runs Facebook and Jelly Splash under section-based control alone and
with touch boosting, and extracts the two signals the figure plots: the
measured content rate (1 s bins) and the refresh rate.  The paper's
observation to reproduce: without boosting the refresh rate lags the
content rate around touches and frames drop; with boosting the rate
spikes to maximum at every touch and the drops largely disappear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..core.quality import quality_vs_baseline
from ..pipeline.baseline import run_fixed_baseline
from ..sim.session import SessionConfig, SessionResult, run_session

#: The two trace applications (same as Figure 2).
TRACE_APPS = ("Facebook", "Jelly Splash")

#: The two governed configurations of the figure's four panels.
METHODS = ("section", "section+boost")


@dataclass(frozen=True)
class ControlTrace:
    """One (app, method) panel of the figure."""

    app_name: str
    method: str
    bin_centers_s: np.ndarray
    content_rate_fps: np.ndarray       # measured by the meter
    refresh_rate_hz: np.ndarray        # sampled at bin centers
    baseline_content_fps: float        # fixed-60 displayed content rate
    governed_content_fps: float        # governed displayed content rate
    rate_switches: int
    boosts: int

    @property
    def dropped_fps(self) -> float:
        """Content fps lost relative to the fixed baseline."""
        return max(0.0, self.baseline_content_fps -
                   self.governed_content_fps)

    @property
    def quality(self) -> float:
        """Quality vs the fixed baseline (fraction)."""
        return quality_vs_baseline(self.governed_content_fps,
                                   self.baseline_content_fps)

    @property
    def mean_refresh_hz(self) -> float:
        """Mean of the sampled refresh rate."""
        return float(np.mean(self.refresh_rate_hz))


@dataclass(frozen=True)
class Fig7Result:
    """All four panels, indexed ``traces[(app, method)]``."""

    duration_s: float
    traces: Dict[Tuple[str, str], ControlTrace]

    def format(self) -> str:
        rows = []
        for (app, method), t in sorted(self.traces.items()):
            rows.append([
                app, method,
                f"{t.mean_refresh_hz:.1f}",
                f"{t.governed_content_fps:.1f}",
                f"{t.dropped_fps:.2f}",
                f"{100.0 * t.quality:.1f}%",
                f"{t.boosts}",
            ])
        return format_table(
            ["app", "method", "mean refresh Hz", "content fps",
             "dropped fps", "quality", "boosts"],
            rows,
            title="Figure 7: refresh-rate control traces",
        )


def _trace_from_session(session: SessionResult,
                        baseline: SessionResult,
                        method: str) -> ControlTrace:
    duration = session.duration_s
    centers, content = session.meter.meaningful_frames.binned_rate(
        0.0, duration, 1.0)
    refresh = session.panel.rate_history.sample(centers)
    policy = session.driver.policy
    boosts = getattr(policy, "boosts", 0)
    return ControlTrace(
        app_name=session.profile.name,
        method=method,
        bin_centers_s=centers,
        content_rate_fps=content,
        refresh_rate_hz=refresh,
        baseline_content_fps=baseline.mean_content_rate_fps,
        governed_content_fps=session.mean_content_rate_fps,
        rate_switches=session.panel.rate_switches,
        boosts=boosts,
    )


def run(duration_s: float = 60.0, seed: int = 1) -> Fig7Result:
    """Run the Figure 7 sessions (plus fixed baselines for reference)."""
    traces: Dict[Tuple[str, str], ControlTrace] = {}
    for app in TRACE_APPS:
        baseline = run_fixed_baseline(app, duration_s=duration_s,
                                      seed=seed)
        for method in METHODS:
            session = run_session(SessionConfig(
                app=app, governor=method, duration_s=duration_s,
                seed=seed))
            traces[(app, method)] = _trace_from_session(
                session, baseline, method)
    return Fig7Result(duration_s=duration_s, traces=traces)
