"""Device panel presets.

``GALAXY_S3_PANEL`` is the paper's evaluation device (Galaxy S3 LTE,
SHV-E210S): a 720x1280 panel whose kernel patch exposes five refresh
levels — 60, 40, 30, 24 and 20 Hz.  The other presets exercise the
paper's note that the section table must be rebuilt for different level
sets: a fixed-60 panel (no control possible — the stock baseline), a
coarse three-level panel, and a modern LTPO-style panel with levels
down to 1 Hz.
"""

from __future__ import annotations

from typing import Tuple

from .spec import PanelSpec

#: The paper's device: Galaxy S3 LTE with the refresh-rate kernel patch.
GALAXY_S3_PANEL = PanelSpec(
    name="Samsung Galaxy S3 LTE (SHV-E210S)",
    width=720,
    height=1280,
    refresh_rates_hz=(20.0, 24.0, 30.0, 40.0, 60.0),
)

#: A stock phone panel: 60 Hz only (the paper's baseline configuration).
FIXED_60_PANEL = PanelSpec(
    name="Stock 60 Hz panel",
    width=720,
    height=1280,
    refresh_rates_hz=(60.0,),
)

#: A hypothetical coarse panel for section-table generalisation tests.
THREE_LEVEL_PANEL = PanelSpec(
    name="Coarse three-level panel",
    width=720,
    height=1280,
    refresh_rates_hz=(15.0, 30.0, 60.0),
)

#: A modern LTPO-style panel (extension experiment): levels to 1 Hz and
#: above 60 Hz, showing the scheme scales to richer hardware.
LTPO_120_PANEL = PanelSpec(
    name="LTPO 120 Hz panel",
    width=1080,
    height=2400,
    refresh_rates_hz=(1.0, 10.0, 24.0, 30.0, 40.0, 60.0, 90.0, 120.0),
)

def panel_preset(name: str) -> PanelSpec:
    """Look up a panel preset by its short name.

    Valid names are returned by :func:`panel_preset_names`.  Since the
    pipeline refactor this delegates to the
    :data:`repro.pipeline.panels.PANELS` registry (imported lazily —
    the registry seeds itself from this module's constants), so panels
    registered by extension modules resolve here too.
    """
    from ..pipeline.panels import PANELS
    return PANELS.get(name)()


def panel_preset_names() -> Tuple[str, ...]:
    """All registered preset names, sorted."""
    from ..pipeline.panels import PANELS
    return tuple(sorted(PANELS.names()))
