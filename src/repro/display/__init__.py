"""Display hardware model.

Models the part of the stack the paper's kernel patch touches: a panel
that generates V-Sync at one of a discrete set of refresh rates and can
be switched between them at frame boundaries.  Device presets include
the paper's Galaxy S3 LTE (five levels: 60/40/30/24/20 Hz) plus other
level sets used for the section-table generalisation experiments.
"""

from .panel import DisplayPanel
from .presets import (
    FIXED_60_PANEL,
    GALAXY_S3_PANEL,
    LTPO_120_PANEL,
    THREE_LEVEL_PANEL,
    panel_preset,
    panel_preset_names,
)
from .spec import PanelSpec

__all__ = [
    "DisplayPanel",
    "FIXED_60_PANEL",
    "GALAXY_S3_PANEL",
    "LTPO_120_PANEL",
    "PanelSpec",
    "THREE_LEVEL_PANEL",
    "panel_preset",
    "panel_preset_names",
]
