"""Panel specifications.

A :class:`PanelSpec` captures what the refresh-rate controller needs to
know about a device: the native resolution and the discrete set of
refresh rates the hardware supports.  The paper stresses that the
section table "should be redefined when the available refresh rates are
changed" — the spec is the single source of that level set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ConfigurationError
from ..units import ensure_positive_int


@dataclass(frozen=True)
class PanelSpec:
    """Immutable description of a display panel.

    Parameters
    ----------
    name:
        Human-readable device/panel name.
    width, height:
        Native resolution in pixels.
    refresh_rates_hz:
        The discrete refresh rates the panel supports, in hertz.  Stored
        sorted ascending; duplicates are rejected.
    """

    name: str
    width: int
    height: int
    refresh_rates_hz: Tuple[float, ...] = field(default=(60.0,))

    def __post_init__(self) -> None:
        ensure_positive_int(self.width, "width")
        ensure_positive_int(self.height, "height")
        if not self.refresh_rates_hz:
            raise ConfigurationError(
                f"panel {self.name!r} must support at least one "
                f"refresh rate")
        rates = tuple(float(r) for r in self.refresh_rates_hz)
        if any(r <= 0 for r in rates):
            raise ConfigurationError(
                f"panel {self.name!r}: refresh rates must be > 0, "
                f"got {rates}")
        if len(set(rates)) != len(rates):
            raise ConfigurationError(
                f"panel {self.name!r}: duplicate refresh rates in {rates}")
        object.__setattr__(self, "refresh_rates_hz", tuple(sorted(rates)))

    @property
    def min_refresh_hz(self) -> float:
        """Lowest supported refresh rate."""
        return self.refresh_rates_hz[0]

    @property
    def max_refresh_hz(self) -> float:
        """Highest supported refresh rate."""
        return self.refresh_rates_hz[-1]

    @property
    def num_levels(self) -> int:
        """Number of discrete refresh-rate levels."""
        return len(self.refresh_rates_hz)

    @property
    def pixel_count(self) -> int:
        """Total native pixels (``width * height``)."""
        return self.width * self.height

    def supports(self, rate_hz: float) -> bool:
        """True if ``rate_hz`` is one of the panel's discrete levels."""
        return any(abs(rate_hz - r) < 1e-9 for r in self.refresh_rates_hz)

    def validate_rate(self, rate_hz: float) -> float:
        """Return the canonical level equal to ``rate_hz`` or raise."""
        for r in self.refresh_rates_hz:
            if abs(rate_hz - r) < 1e-9:
                return r
        raise ConfigurationError(
            f"panel {self.name!r} does not support {rate_hz} Hz; "
            f"levels are {self.refresh_rates_hz}")

    def scaled(self, factor: int) -> "PanelSpec":
        """A spec with resolution divided by ``factor`` (same levels).

        Simulations run at reduced resolution for speed; the metering
        grid is specified in absolute sample counts so results transfer.
        """
        ensure_positive_int(factor, "factor")
        return PanelSpec(
            name=f"{self.name} (1/{factor} resolution)",
            width=max(1, self.width // factor),
            height=max(1, self.height // factor),
            refresh_rates_hz=self.refresh_rates_hz,
        )
