"""The display panel: V-Sync generation and refresh-rate switching.

The panel owns the V-Sync clock.  Everything downstream — the
compositor's latch, the application render loops, the V-Sync throttle
that caps the measurable content rate — hangs off the callbacks this
class fires.

Rate switches take effect at the *next frame boundary* (the next
V-Sync), which is how real panel mode switches behave and avoids the
drift that immediate rescheduling would introduce under rapid governor
decisions.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import DisplayError
from ..faults.injector import FaultInjector
from ..faults.plan import SITE_PANEL_LATENCY, SITE_PANEL_REFUSE
from ..sim.engine import EventHandle, Simulator
from ..sim.tracing import StepSeries
from ..telemetry.events import EVENT_RATE_SWITCH, EVENT_VSYNC_CLIP
from ..telemetry.hub import TelemetryHub
from .spec import PanelSpec

#: Callback fired at each V-Sync: ``(time)``.
VsyncListener = Callable[[float], None]

#: Callback fired when a rate switch takes effect: ``(time, new_rate_hz)``.
RateChangeListener = Callable[[float, float], None]


class DisplayPanel:
    """A panel scanning out at one of a discrete set of refresh rates.

    Parameters
    ----------
    sim:
        Simulator to schedule V-Syncs on.
    spec:
        The panel description (resolution + supported rates).
    initial_rate_hz:
        Refresh rate at session start; defaults to the maximum level
        (Android's fixed 60 Hz on the paper's device).
    injector:
        Optional fault injector.  When present, rate-switch requests
        may be refused (``panel_refuse`` site — the request is dropped,
        like a busy mode-switch ioctl) and accepted switches may land
        late (``panel_latency`` site — extra delay beyond the frame
        boundary).  None leaves the panel exactly as before.
    telemetry:
        Optional telemetry hub.  When present the panel emits
        ``rate_switch`` events for every effective rate change,
        ``vsync_clip`` events when a request waited for the frame
        boundary, and maintains ``panel.*`` counters.  None (the
        default) adds no instrumentation at all.
    """

    def __init__(self, sim: Simulator, spec: PanelSpec,
                 initial_rate_hz: Optional[float] = None,
                 injector: Optional[FaultInjector] = None,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self._sim = sim
        self.spec = spec
        self._injector = injector
        self._telemetry = telemetry
        self._refused_switches = 0
        self._delayed_switches = 0
        rate = (spec.max_refresh_hz if initial_rate_hz is None
                else spec.validate_rate(initial_rate_hz))
        self._rate = rate
        self._pending_rate: Optional[float] = None
        self._pending_since = 0.0
        self._vsync_listeners: List[VsyncListener] = []
        self._rate_listeners: List[RateChangeListener] = []
        self._vsync_count = 0
        self._rate_switches = 0
        self._running = False
        self._next_vsync: Optional[EventHandle] = None
        self._rate_history = StepSeries("refresh_rate_hz", rate, sim.now)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin generating V-Syncs (first one is a full period away)."""
        if self._running:
            raise DisplayError("panel already started")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating V-Syncs."""
        if not self._running:
            return
        self._running = False
        if self._next_vsync is not None:
            self._sim.cancel(self._next_vsync)
            self._next_vsync = None

    @property
    def running(self) -> bool:
        """True while the panel is scanning."""
        return self._running

    # ------------------------------------------------------------------
    # Refresh rate
    # ------------------------------------------------------------------
    @property
    def refresh_rate_hz(self) -> float:
        """The rate currently in effect."""
        return self._rate

    @property
    def target_rate_hz(self) -> float:
        """The rate that will be in effect after any pending switch."""
        return self._pending_rate if self._pending_rate is not None \
            else self._rate

    @property
    def pending_rate_hz(self) -> Optional[float]:
        """The rate waiting for the next frame boundary, or ``None``.

        Distinct from :attr:`target_rate_hz`: a pending switch may
        target the *current* rate (request X then request back to the
        current rate before the boundary), and the vector fast path
        must treat any pending switch as a blocker, so it needs the
        raw latch state, not the inferred target.
        """
        return self._pending_rate

    @property
    def next_vsync_handle(self) -> Optional[EventHandle]:
        """The scheduled next-V-Sync event (``None`` while stopped)."""
        return self._next_vsync

    @property
    def rate_history(self) -> StepSeries:
        """Piecewise-constant trace of the effective refresh rate."""
        return self._rate_history

    @property
    def vsync_count(self) -> int:
        """V-Syncs generated so far."""
        return self._vsync_count

    @property
    def rate_switches(self) -> int:
        """Number of effective rate changes (requests to the current
        rate do not count)."""
        return self._rate_switches

    @property
    def refused_switches(self) -> int:
        """Switch requests dropped by an injected ``panel_refuse``."""
        return self._refused_switches

    @property
    def delayed_switches(self) -> int:
        """Accepted switches that landed late (``panel_latency``)."""
        return self._delayed_switches

    def set_refresh_rate(self, rate_hz: float) -> None:
        """Request a switch to ``rate_hz`` at the next frame boundary.

        ``rate_hz`` must be one of the panel's discrete levels — this is
        the kernel interface the paper's patch adds, and real hardware
        rejects arbitrary rates.  Under fault injection the request may
        be silently refused (the panel keeps its current target), as a
        loaded mode-switch path does on the device.
        """
        rate = self.spec.validate_rate(rate_hz)
        if rate == self.target_rate_hz:
            return
        if self._injector is not None and self._injector.fires(
                SITE_PANEL_REFUSE, self._sim.now,
                detail=f"requested {rate:g} Hz"):
            self._refused_switches += 1
            if self._telemetry is not None:
                self._telemetry.metrics.counter(
                    "panel.refused_switches").inc()
            return
        if not self._running:
            # Before scan-out starts the switch is immediate.
            self._apply_rate(rate)
            return
        self._pending_rate = rate
        self._pending_since = self._sim.now

    def fast_forward_vsyncs(self, count: int,
                            last_tick_time: float) -> None:
        """Account for ``count`` V-Syncs resolved analytically.

        The vector fast path proves a run of V-Syncs would each fire
        with no observable effect it does not replicate itself (no
        composition, no pending rate switch); this commits the
        panel-side bookkeeping: the V-Sync counter and a fresh
        next-V-Sync handle at ``last_tick_time + 1/rate`` — the exact
        float the skipped final tick's ``_schedule_next`` would have
        computed.  Refuses to cross a pending rate switch: applying it
        belongs to a real tick.
        """
        if not self._running or self._next_vsync is None:
            raise DisplayError("cannot fast-forward a stopped panel")
        if self._pending_rate is not None:
            raise DisplayError(
                "cannot fast-forward across a pending rate switch")
        if count <= 0:
            raise DisplayError(
                f"fast_forward_vsyncs needs a positive count, "
                f"got {count}")
        self._vsync_count += count
        self._sim.cancel(self._next_vsync)
        period = 1.0 / self._rate
        self._next_vsync = self._sim.call_at(
            last_tick_time + period, self._fire_vsync, name="vsync")

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def add_vsync_listener(self, listener: VsyncListener) -> None:
        """Register a V-Sync callback (compositor, app render loops)."""
        self._vsync_listeners.append(listener)

    def add_rate_change_listener(self, listener: RateChangeListener) -> None:
        """Register a callback fired when a switch takes effect."""
        self._rate_listeners.append(listener)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_rate(self, rate: float) -> None:
        if rate == self._rate:
            return
        previous = self._rate
        self._rate = rate
        self._rate_switches += 1
        self._rate_history.set(self._sim.now, rate)
        if self._telemetry is not None:
            self._telemetry.metrics.counter("panel.rate_switches").inc()
            self._telemetry.emit(EVENT_RATE_SWITCH, self._sim.now,
                                 from_hz=previous, to_hz=rate)
        for listener in self._rate_listeners:
            listener(self._sim.now, rate)

    def _schedule_next(self) -> None:
        period = 1.0 / self._rate
        self._next_vsync = self._sim.call_after(
            period, self._fire_vsync, name="vsync")

    def _fire_vsync(self, sim: Simulator) -> None:
        if not self._running:
            return
        self._vsync_count += 1
        if self._telemetry is not None:
            self._telemetry.metrics.counter("panel.vsyncs").inc()
        for listener in self._vsync_listeners:
            listener(sim.now)
        # A pending switch takes effect at this frame boundary: the
        # *next* V-Sync interval runs at the new rate.
        if self._pending_rate is not None:
            pending = self._pending_rate
            self._pending_rate = None
            if self._telemetry is not None:
                self._telemetry.metrics.counter("panel.vsync_clips").inc()
                self._telemetry.emit(
                    EVENT_VSYNC_CLIP, sim.now, rate_hz=pending,
                    waited_s=sim.now - self._pending_since)
            delay = 0.0
            if self._injector is not None and self._injector.fires(
                    SITE_PANEL_LATENCY, sim.now,
                    detail=f"switch to {pending:g} Hz",
                    magnitude_max_s=self.plan_latency_max_s()):
                delay = self._injector.last_magnitude()
            if delay > 0.0:
                self._delayed_switches += 1
                if self._telemetry is not None:
                    self._telemetry.metrics.counter(
                        "panel.delayed_switches").inc()
                self._sim.call_after(
                    delay, self._make_late_apply(pending),
                    name="rate-switch-late")
            else:
                self._apply_rate(pending)
        self._schedule_next()

    def plan_latency_max_s(self) -> float:
        """Upper bound of injected switch latency (0 when no faults)."""
        if self._injector is None:
            return 0.0
        return self._injector.plan.panel_latency_max_s

    def _make_late_apply(self, rate: float):
        def apply(sim: Simulator) -> None:
            del sim
            # The governor may have retargeted meanwhile; a stale late
            # switch to the current rate is a harmless no-op.
            self._apply_rate(rate)
        return apply
