"""Crash-safe file primitives shared by every artifact writer.

The durability rules implemented here (and documented in
``docs/service.md``) are:

* **Atomic whole-file writes** — content lands under a temporary name
  in the destination directory, is flushed and fsynced, then renamed
  over the final path with :func:`os.replace`.  A crash at any point
  leaves either the previous file or the new one, never a torn hybrid.
* **Tolerant JSONL reads** — append-only journals can legitimately end
  in a torn line (the writer died mid-append).  :func:`read_jsonl`
  reports torn tails and undecodable lines instead of raising, so
  recovery code can count the damage and move on.

Every writer in the repo that produces an artifact another process may
read (traces, bench documents, session exports, telemetry JSONL,
service checkpoints/results/health) routes through this module.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, List, Tuple, Union

PathLike = Union[str, pathlib.Path]


def _fsync_directory(directory: pathlib.Path) -> None:
    """Best-effort fsync of a directory so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> pathlib.Path:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The temporary file is created in the destination directory so the
    final :func:`os.replace` never crosses a filesystem boundary.  On
    any failure the temporary file is removed and the original ``path``
    (if it existed) is untouched.
    """
    path = pathlib.Path(path)
    directory = path.parent
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=directory)
    tmp_path = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            tmp_path.unlink()
        except OSError:
            pass
        raise
    _fsync_directory(directory)
    return path


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> pathlib.Path:
    """Text flavour of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, document: Any, *,
                      indent: int = 2, sort_keys: bool = True,
                      ) -> pathlib.Path:
    """Serialize ``document`` and write it atomically.

    ``allow_nan=False`` so a NaN sneaking into an artifact fails loudly
    at write time instead of producing JSON no strict parser reads.
    """
    text = json.dumps(document, indent=indent, sort_keys=sort_keys,
                      allow_nan=False)
    return atomic_write_text(path, text + "\n")


def replace_into_place(tmp_path: PathLike,
                       final_path: PathLike) -> pathlib.Path:
    """Fsync ``tmp_path`` then atomically rename it over ``final_path``.

    For streaming writers (telemetry JSONL) that keep a handle open on
    a temporary file and promote it once complete.
    """
    tmp_path = pathlib.Path(tmp_path)
    final_path = pathlib.Path(final_path)
    fd = os.open(tmp_path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp_path, final_path)
    _fsync_directory(final_path.parent)
    return final_path


def fsync_handle(handle: Any) -> None:
    """Flush and fsync an open file handle (no-op if unsupported)."""
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except (OSError, ValueError):
        pass


@dataclass
class JsonlReadResult:
    """What :func:`read_jsonl` salvaged from an append-only log."""

    #: Successfully decoded records, in file order.
    records: List[Any] = field(default_factory=list)
    #: True when the final line was torn (no newline / undecodable) —
    #: the signature of a writer killed mid-append.
    torn_tail: bool = False
    #: Undecodable non-tail lines (corruption beyond a torn append).
    bad_lines: int = 0
    #: 1-based line numbers of the bad lines (tail included).
    bad_line_numbers: List[int] = field(default_factory=list)

    @property
    def damaged(self) -> bool:
        """True when anything at all failed to decode."""
        return self.torn_tail or self.bad_lines > 0


def read_jsonl(path: PathLike) -> JsonlReadResult:
    """Read an append-only JSONL file, tolerating crash damage.

    A missing file reads as empty — an append-only journal that was
    never written to is indistinguishable from one with no entries.
    The last line missing its newline, or failing to decode, is
    recorded as a *torn tail* (expected after a crash mid-append).
    Undecodable lines elsewhere count as ``bad_lines``.  Decoded
    records are returned in order either way; the caller decides
    whether damage is fatal.
    """
    path = pathlib.Path(path)
    result = JsonlReadResult()
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return result
    if not raw:
        return result
    complete = raw.endswith(b"\n")
    lines = raw.decode("utf-8", errors="replace").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    last_index = len(lines) - 1
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        is_tail = number - 1 == last_index
        try:
            result.records.append(json.loads(stripped))
        except ValueError:
            result.bad_line_numbers.append(number)
            if is_tail:
                result.torn_tail = True
            else:
                result.bad_lines += 1
            continue
        if is_tail and not complete:
            # Decoded, but the newline never hit disk: the record is
            # valid JSON yet the append was not durably completed.
            # Keep the record — content beats ceremony — but flag it.
            result.torn_tail = True
    return result


def append_jsonl_line(handle: Any, record: Any, *,
                      fsync: bool = True) -> str:
    """Append one JSON record to an open text handle, optionally fsynced.

    Returns the serialized line (without trailing newline).  The
    single-write + flush + fsync sequence is the strongest durability
    an append-only log gets without O_APPEND gymnastics; a crash can
    tear at most the final line, which :func:`read_jsonl` tolerates.
    """
    line = json.dumps(record, sort_keys=True, allow_nan=False)
    handle.write(line + "\n")
    if fsync:
        fsync_handle(handle)
    else:
        handle.flush()
    return line


def ensure_directory(path: PathLike) -> pathlib.Path:
    """Create ``path`` (and parents) if missing; return it."""
    path = pathlib.Path(path)
    path.mkdir(parents=True, exist_ok=True)
    return path


def file_digest_sha256(path: PathLike) -> Tuple[str, int]:
    """(hex sha256, size) of a file's bytes."""
    import hashlib

    data = pathlib.Path(path).read_bytes()
    return hashlib.sha256(data).hexdigest(), len(data)
