"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
grouped by subsystem to keep error handling in application code precise.

Errors optionally carry a structured ``context`` dict (subsystem, sim
time, component, ...) so supervisors — the governor watchdog, the batch
runner's failure records — can report *where* a failure hit without
parsing message strings.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    Parameters
    ----------
    args:
        Positional message arguments, exactly like :class:`Exception`.
    context:
        Optional structured failure metadata.  Conventional keys:
        ``subsystem`` (e.g. ``"meter"``), ``sim_time_s`` (when the
        failure hit on the simulation clock), ``component`` (the
        operation that failed).  Always a dict — empty when the raiser
        supplied nothing.
    """

    def __init__(self, *args: object,
                 context: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(*args)
        self.context: Dict[str, Any] = dict(context or {})


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SpecError(ConfigurationError):
    """A serialized :class:`~repro.pipeline.spec.SessionSpec` document
    is malformed (unknown keys, wrong schema tag, undecodable field).
    Subclasses :class:`ConfigurationError` so handlers written for
    invalid configs catch spec problems too."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly (e.g. scheduling in the
    past, or running a simulator that was already finished)."""


class DisplayError(ReproError):
    """Display-hardware model misuse (e.g. requesting an unsupported
    refresh rate on a panel with a discrete level set)."""


class GraphicsError(ReproError):
    """Graphics-stack misuse (e.g. compositing surfaces whose geometry
    does not match the framebuffer)."""


class MeteringError(ReproError):
    """Content-rate metering failure (e.g. comparing framebuffers of
    different shapes, or sampling an empty grid)."""


class WorkloadError(ReproError):
    """Application-workload misuse (e.g. an unknown app name requested
    from the catalog)."""


class TelemetryError(ReproError):
    """Telemetry subsystem misuse (e.g. emitting an event kind outside
    the taxonomy, re-registering a metric under a different type, or
    summarizing an unparseable JSONL stream)."""


class TraceError(ReproError):
    """A frame-trace file is unreadable or malformed (bad magic,
    unsupported version, truncated record, inconsistent payload), or
    the trace subsystem was misused (non-monotonic frame times,
    geometry mismatch against the recording framebuffer)."""


class WorkerCrashError(ReproError):
    """A batch worker process died without returning a result (killed,
    segfaulted, or exited hard).  Raised — or recorded as a failure
    record — by the parallel batch runner; the crashed session's error
    cannot be recovered, only the fact of the crash."""


class ServiceError(ReproError):
    """Session-service misuse or internal failure (bad state directory,
    malformed job document, submitting to a stopped service)."""


class JournalError(ServiceError):
    """The service journal is unusable beyond the tolerated crash damage
    (unwritable path, schema mismatch on a decoded record).  Torn tails
    and isolated bad lines do *not* raise — they are counted and
    reported by the tolerant reader (:func:`repro.ioutil.read_jsonl`)."""


class CheckpointError(ServiceError):
    """A checkpoint document cannot be used to resume: unreadable file,
    wrong schema, spec that fails to decode, or a state digest that does
    not match the deterministically replayed state.  Recovery code
    treats this as "restart the job from scratch", never as a reason to
    trust the checkpoint anyway."""


class ServiceUnavailableError(ServiceError):
    """The service refused a job instead of hanging: the circuit breaker
    is open (workers keep dying) or the bounded queue is full.  Carries
    structured context (breaker state, queue depth) so callers can back
    off intelligently."""


class FaultInjectionError(ReproError):
    """Fault-injection subsystem misuse (e.g. an unknown fault site in
    a plan spec, or a rate outside [0, 1]).  Note: *injected* faults do
    not raise this — they raise the error type of the faulted subsystem
    (a refused panel switch is silent, a metering fault raises
    :class:`MeteringError`)."""
