"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
grouped by subsystem to keep error handling in application code precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly (e.g. scheduling in the
    past, or running a simulator that was already finished)."""


class DisplayError(ReproError):
    """Display-hardware model misuse (e.g. requesting an unsupported
    refresh rate on a panel with a discrete level set)."""


class GraphicsError(ReproError):
    """Graphics-stack misuse (e.g. compositing surfaces whose geometry
    does not match the framebuffer)."""


class MeteringError(ReproError):
    """Content-rate metering failure (e.g. comparing framebuffers of
    different shapes, or sampling an empty grid)."""


class WorkloadError(ReproError):
    """Application-workload misuse (e.g. an unknown app name requested
    from the catalog)."""
