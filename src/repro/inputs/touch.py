"""Touch events, scripts, and their replay on the simulation clock.

A :class:`TouchScript` is an immutable, time-ordered sequence of
:class:`TouchEvent` objects.  Because scripts are generated *before* a
session starts and replayed on absolute timestamps, the exact same user
behaviour hits every governor configuration — the controlled comparison
the paper's methodology relies on.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..faults.plan import SITE_TOUCH_DELAY, SITE_TOUCH_DROP
from ..sim.engine import Simulator


class TouchKind(enum.Enum):
    """The two interaction shapes the workload models distinguish.

    A *tap* is an instantaneous event (button press, game move); a
    *scroll* is a drag gesture that keeps generating content for its
    whole duration (list flinging).
    """

    TAP = "tap"
    SCROLL = "scroll"


@dataclass(frozen=True)
class TouchEvent:
    """One touch: when it lands, what kind, and how long the gesture is.

    ``duration_s`` is zero for taps and the drag length for scrolls.
    """

    time: float
    kind: TouchKind = TouchKind.TAP
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(
                f"touch time must be >= 0, got {self.time}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"touch duration must be >= 0, got {self.duration_s}")
        if self.kind is TouchKind.TAP and self.duration_s != 0.0:
            raise ConfigurationError("a tap has zero duration")


class TouchScript:
    """An ordered, immutable sequence of touch events."""

    def __init__(self, events: Iterable[TouchEvent]) -> None:
        ordered = sorted(events, key=lambda e: e.time)
        self._events: Tuple[TouchEvent, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index: int) -> TouchEvent:
        return self._events[index]

    @property
    def events(self) -> Tuple[TouchEvent, ...]:
        """All events in time order."""
        return self._events

    @property
    def times(self) -> Tuple[float, ...]:
        """Event timestamps in order."""
        return tuple(e.time for e in self._events)

    def within(self, start: float, end: float) -> "TouchScript":
        """Events with ``start <= time < end``."""
        return TouchScript(e for e in self._events
                           if start <= e.time < end)

    def taps(self) -> "TouchScript":
        """Only the tap events."""
        return TouchScript(e for e in self._events
                           if e.kind is TouchKind.TAP)

    def scrolls(self) -> "TouchScript":
        """Only the scroll events."""
        return TouchScript(e for e in self._events
                           if e.kind is TouchKind.SCROLL)


#: Callback receiving each replayed event.
TouchListener = Callable[[TouchEvent], None]


class TouchSource:
    """Replays a :class:`TouchScript` on the simulation clock.

    Each event is scheduled at its absolute timestamp; every registered
    listener receives it.  Listeners added after :meth:`start` miss
    nothing as long as they are added before the first event fires.

    With a fault injector attached, events can be dropped
    (``touch_drop`` site: never delivered, like an overloaded input
    stack) or delayed (``touch_delay`` site: delivered late with a
    shifted timestamp, so downstream consumers see the arrival time the
    governor would see on the device).
    """

    def __init__(self, sim: Simulator, script: TouchScript,
                 injector: Optional[FaultInjector] = None) -> None:
        self._sim = sim
        self.script = script
        self._injector = injector
        self._listeners: List[TouchListener] = []
        self._delivered = 0
        self._dropped = 0
        self._delayed = 0
        self._started = False

    def add_listener(self, listener: TouchListener) -> None:
        """Register a recipient for every touch event."""
        self._listeners.append(listener)

    @property
    def delivered(self) -> int:
        """Events delivered so far."""
        return self._delivered

    @property
    def dropped(self) -> int:
        """Scripted events dropped by injected ``touch_drop`` faults."""
        return self._dropped

    @property
    def delayed(self) -> int:
        """Scripted events delivered late (``touch_delay`` faults)."""
        return self._delayed

    def start(self) -> None:
        """Schedule every scripted event on the simulator.

        Fault decisions are drawn here, in script order, which keeps
        the injected timeline a deterministic function of
        ``(script, plan)`` regardless of what the session does.
        """
        if self._started:
            raise ConfigurationError("touch source already started")
        self._started = True
        for event in self.script:
            if self._injector is not None:
                if self._injector.fires(SITE_TOUCH_DROP, event.time,
                                        detail=event.kind.value):
                    self._dropped += 1
                    continue
                if self._injector.fires(
                        SITE_TOUCH_DELAY, event.time,
                        detail=event.kind.value,
                        magnitude_max_s=self._injector.plan
                        .touch_delay_max_s):
                    delay = self._injector.last_magnitude()
                    if delay > 0.0:
                        self._delayed += 1
                        event = dataclasses.replace(
                            event, time=event.time + delay)
            self._sim.call_at(event.time, self._make_firer(event),
                              name="touch")

    def _make_firer(self, event: TouchEvent):
        def fire(sim: Simulator) -> None:
            del sim
            self._delivered += 1
            for listener in self._listeners:
                listener(event)
        return fire


def merge_scripts(scripts: Sequence[TouchScript]) -> TouchScript:
    """Combine several scripts into one time-ordered script."""
    events: List[TouchEvent] = []
    for script in scripts:
        events.extend(script.events)
    return TouchScript(events)
