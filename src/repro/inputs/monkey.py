"""Monkey-style touch-script generation.

Android's Monkey tool fires pseudo-random UI events at an application;
the paper replays one Monkey script per app for every measurement.  The
generator here produces the same thing in simulation: a seeded random
sequence of taps and scroll gestures with configurable density, fully
determined by ``(config, seed)`` so the identical script can drive a
fixed-60 Hz baseline run and a governed run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_non_negative, ensure_positive
from .touch import TouchEvent, TouchKind, TouchScript


@dataclass(frozen=True)
class MonkeyConfig:
    """Shape of a Monkey run.

    Parameters
    ----------
    duration_s:
        Length of the script.
    events_per_s:
        Mean touch-event rate (exponential inter-arrival times).  Real
        interactive use is on the order of 0.1-0.5 events/s; Monkey can
        be cranked far higher.
    scroll_fraction:
        Probability that an event is a scroll gesture rather than a tap.
    scroll_duration_s:
        Mean scroll-gesture length (exponentially distributed, floored
        at 0.1 s).
    min_gap_s:
        Minimum spacing between consecutive events (debounce — two
        events closer than a human finger can move are collapsed).
    warmup_s:
        Quiet period at the start of the script before the first event,
        letting the app settle to its idle behaviour first.
    """

    duration_s: float = 180.0
    events_per_s: float = 0.25
    scroll_fraction: float = 0.3
    scroll_duration_s: float = 0.6
    min_gap_s: float = 0.5
    warmup_s: float = 2.0

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        ensure_non_negative(self.events_per_s, "events_per_s")
        if not 0.0 <= self.scroll_fraction <= 1.0:
            raise ConfigurationError(
                f"scroll_fraction must be in [0, 1], got "
                f"{self.scroll_fraction}")
        ensure_positive(self.scroll_duration_s, "scroll_duration_s")
        ensure_non_negative(self.min_gap_s, "min_gap_s")
        ensure_non_negative(self.warmup_s, "warmup_s")


class MonkeyScriptGenerator:
    """Deterministic Monkey-script generator.

    The same ``(config, seed)`` pair always yields the same script;
    different seeds are the paper's "repeated the same experiment"
    replications.
    """

    def __init__(self, config: MonkeyConfig) -> None:
        self.config = config

    def generate(self, seed: int) -> TouchScript:
        """Produce the script for one session."""
        cfg = self.config
        if cfg.events_per_s == 0.0:
            return TouchScript([])
        rng = np.random.default_rng(seed)
        events: List[TouchEvent] = []
        t = cfg.warmup_s
        while True:
            gap = float(rng.exponential(1.0 / cfg.events_per_s))
            t += max(gap, cfg.min_gap_s)
            if t >= cfg.duration_s:
                break
            if rng.random() < cfg.scroll_fraction:
                duration = max(0.1, float(
                    rng.exponential(cfg.scroll_duration_s)))
                # A scroll must end inside the session.
                duration = min(duration, cfg.duration_s - t)
                if duration <= 0:
                    break
                events.append(TouchEvent(time=t, kind=TouchKind.SCROLL,
                                         duration_s=duration))
                t += duration
            else:
                events.append(TouchEvent(time=t, kind=TouchKind.TAP))
        return TouchScript(events)

    def generate_many(self, seeds: "list[int]") -> "list[TouchScript]":
        """One script per seed (experiment replications)."""
        return [self.generate(seed) for seed in seeds]
