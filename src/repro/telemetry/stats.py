"""Summarize a telemetry JSONL stream (the ``repro stats`` command).

A JSONL file written by :class:`~repro.telemetry.sinks.JsonlSink` is a
flat record of everything that happened; this module turns it back
into the numbers a person asks first: how many events of each kind,
how often the governor actually switched rates, and what the metering
hot path cost (span percentiles).  The summarizer is pure data-in /
dict-out so tests and the CLI share one implementation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from ..errors import TelemetryError
from .events import (
    EVENT_FAULT_INJECTED,
    EVENT_RATE_SWITCH,
    EVENT_SPAN,
    EVENT_TOUCH_BOOST,
)
from .profiling import span_summary

PathLike = Union[str, pathlib.Path]


def parse_jsonl(path: PathLike) -> List[dict]:
    """Read one event dict per non-blank line of a JSONL file.

    Raises :class:`~repro.errors.TelemetryError` with the offending
    line number when a line is not a JSON object.
    """
    path = pathlib.Path(path)
    events: List[dict] = []
    try:
        handle = path.open()
    except OSError as exc:
        raise TelemetryError(
            f"cannot read telemetry stream {path}: {exc}",
            context={"subsystem": "telemetry", "component": "stats",
                     "path": str(path)}) from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {exc}",
                    context={"subsystem": "telemetry",
                             "component": "stats",
                             "path": str(path), "line": lineno}) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise TelemetryError(
                    f"{path}:{lineno}: not a telemetry event "
                    f"(missing 'kind')",
                    context={"subsystem": "telemetry",
                             "component": "stats",
                             "path": str(path), "line": lineno})
            events.append(record)
    return events


def summarize_events(events: Iterable[dict]) -> dict:
    """Aggregate parsed event dicts into the stats schema.

    Returns ``events`` (total + by-kind), ``sessions`` (sorted ids),
    ``sim_span_s`` (first/last sim timestamp), ``rate_switches``
    (count + mean switch interval), ``touch_boosts``,
    ``faults_by_site``, and ``spans`` (percentile summary per name).
    """
    events = list(events)
    by_kind: Dict[str, int] = {}
    sessions = set()
    sim_times: List[float] = []
    switch_times: List[float] = []
    boosts = 0
    faults_by_site: Dict[str, int] = {}
    span_durations: Dict[str, List[float]] = {}
    for event in events:
        kind = event.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if "session" in event:
            sessions.add(event["session"])
        if "sim_s" in event:
            sim_times.append(float(event["sim_s"]))
        data = event.get("data", {})
        if kind == EVENT_RATE_SWITCH and "sim_s" in event:
            switch_times.append(float(event["sim_s"]))
        elif kind == EVENT_TOUCH_BOOST:
            boosts += 1
        elif kind == EVENT_FAULT_INJECTED:
            site = data.get("site", "?")
            faults_by_site[site] = faults_by_site.get(site, 0) + 1
        elif kind == EVENT_SPAN:
            name = data.get("name", "?")
            span_durations.setdefault(name, []).append(
                float(data.get("duration_s", 0.0)))

    intervals = [b - a for a, b in zip(switch_times, switch_times[1:])]
    mean_interval = (sum(intervals) / len(intervals)
                     if intervals else None)
    return {
        "events": {
            "total": len(events),
            "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
        },
        "sessions": sorted(sessions),
        "sim_span_s": ([min(sim_times), max(sim_times)]
                       if sim_times else None),
        "rate_switches": {
            "count": len(switch_times),
            "mean_interval_s": mean_interval,
        },
        "touch_boosts": boosts,
        "faults_by_site": {k: faults_by_site[k]
                           for k in sorted(faults_by_site)},
        "spans": {name: span_summary(span_durations[name])
                  for name in sorted(span_durations)},
    }


def summarize_jsonl(path: PathLike) -> dict:
    """Parse and summarize a JSONL stream in one call."""
    summary = summarize_events(parse_jsonl(path))
    summary["path"] = str(path)
    return summary


def format_stats(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_jsonl` output."""
    lines: List[str] = []
    if "path" in summary:
        lines.append(f"telemetry stream: {summary['path']}")
    sessions = summary["sessions"]
    lines.append(f"sessions:       {len(sessions)}"
                 + (f" ({', '.join(sessions)})" if sessions else ""))
    span = summary["sim_span_s"]
    if span is not None:
        lines.append(f"sim time span:  {span[0]:.3f} .. {span[1]:.3f} s")
    lines.append(f"events:         {summary['events']['total']} total")
    for kind, count in summary["events"]["by_kind"].items():
        lines.append(f"  {kind:<20} {count}")
    switches = summary["rate_switches"]
    cadence = (f" (mean interval {switches['mean_interval_s']:.2f} s)"
               if switches["mean_interval_s"] is not None else "")
    lines.append(f"rate switches:  {switches['count']}{cadence}")
    lines.append(f"touch boosts:   {summary['touch_boosts']}")
    if summary["faults_by_site"]:
        inside = ", ".join(f"{site} {count}" for site, count
                           in summary["faults_by_site"].items())
        lines.append(f"faults:         {inside}")
    if summary["spans"]:
        lines.append("spans (wall time):")
        lines.append(f"  {'name':<24} {'count':>7} {'p50 us':>9} "
                     f"{'p90 us':>9} {'p99 us':>9} {'total ms':>9}")
        for name, stats in summary["spans"].items():
            lines.append(
                f"  {name:<24} {stats['count']:>7} "
                f"{1e6 * stats['p50_s']:>9.1f} "
                f"{1e6 * stats['p90_s']:>9.1f} "
                f"{1e6 * stats['p99_s']:>9.1f} "
                f"{1e3 * stats['total_s']:>9.2f}")
    return "\n".join(lines)
