"""Hot-path profiling: ``perf_counter`` spans and the ``@timed`` hook.

The paper's Figure 6 claims the metering overhead is small; spans make
that claim a measured artifact instead of an assumption.  A span wraps
one occurrence of a named operation (one grid comparison, one
double-buffer copy), measures it with :func:`time.perf_counter`, and
reports the duration to the hub — which emits a ``span`` event, feeds
a fixed-bucket histogram, and accumulates the raw durations for
percentile summaries.

Two usage forms:

* ``with hub.span("meter.grid_compare", sim_time):`` — explicit, for
  instrumenting a few statements inside a hot loop;
* ``@timed("meter.content_rate", time_arg=0)`` — declarative, for
  whole methods on objects that carry a hub in ``self._telemetry``.
  When the object has no hub (telemetry off), the decorated method
  runs with only an attribute check of overhead.

Span durations are wall time and therefore **not deterministic**; they
live only inside the telemetry output, never in simulation results.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Optional, Sequence, TypeVar

import numpy as np

#: Fixed bucket edges (seconds) of every span-duration histogram —
#: 1 µs to 100 ms in a 1-5 ladder.  Fixed edges keep the histogram
#: schema deterministic even though the counts are wall-clock noise.
SPAN_BUCKET_EDGES_S = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1,
)

F = TypeVar("F", bound=Callable)


class Span:
    """One timed occurrence; created by ``TelemetryHub.span``.

    Re-entrant use of a single instance is not supported — the hub
    hands out a fresh instance per ``span()`` call.
    """

    __slots__ = ("_hub", "name", "sim_time_s", "_t0")

    def __init__(self, hub, name: str,
                 sim_time_s: Optional[float]) -> None:
        self._hub = hub
        self.name = name
        self.sim_time_s = sim_time_s
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = self._hub.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        del exc_type, exc, tb
        duration = self._hub.clock() - self._t0
        self._hub.record_span(self.name, self.sim_time_s, duration)


def timed(name: str, time_arg: Optional[int] = None,
          telemetry_attr: str = "_telemetry") -> Callable[[F], F]:
    """Decorate a method so each call becomes a telemetry span.

    Parameters
    ----------
    name:
        Span name (``<subsystem>.<operation>``).
    time_arg:
        Positional index (after ``self``) of the simulation-time
        argument, so the span event carries the right sim timestamp;
        None stamps the hub's last-seen sim time.
    telemetry_attr:
        Attribute on the instance holding the
        :class:`~repro.telemetry.hub.TelemetryHub` (or None when
        telemetry is off).
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            hub = getattr(self, telemetry_attr, None)
            if hub is None:
                return fn(self, *args, **kwargs)
            sim_time = args[time_arg] if (
                time_arg is not None and time_arg < len(args)) else None
            with hub.span(name, sim_time):
                return fn(self, *args, **kwargs)
        return wrapper  # type: ignore[return-value]

    return decorate


def span_summary(durations: Sequence[float]) -> Dict[str, float]:
    """Percentile summary of one span's durations.

    Returns ``count``, ``total_s``, ``mean_s``, ``min_s``, ``max_s``,
    ``p50_s``, ``p90_s``, ``p99_s`` (the schema the ``repro stats``
    command prints).  Empty input yields an all-zero summary.
    """
    if not len(durations):
        return {"count": 0, "total_s": 0.0, "mean_s": 0.0,
                "min_s": 0.0, "max_s": 0.0,
                "p50_s": 0.0, "p90_s": 0.0, "p99_s": 0.0}
    values = np.asarray(durations, dtype=float)
    p50, p90, p99 = np.percentile(values, [50.0, 90.0, 99.0])
    return {
        "count": int(values.size),
        "total_s": float(values.sum()),
        "mean_s": float(values.mean()),
        "min_s": float(values.min()),
        "max_s": float(values.max()),
        "p50_s": float(p50),
        "p90_s": float(p90),
        "p99_s": float(p99),
    }
