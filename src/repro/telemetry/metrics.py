"""The metrics registry: deterministic counters, gauges, histograms.

Metrics answer "how much / how many" where events answer "what
happened when".  Three instrument types cover everything the
simulation stack counts:

* :class:`Counter` — monotonically increasing totals (rate switches,
  frames metered, faults injected).
* :class:`Gauge` — a last-write-wins level (final refresh rate,
  simulator events processed).
* :class:`Histogram` — a distribution over **fixed bucket edges**
  supplied at registration.  Fixed edges make the output schema
  deterministic: two runs of the same workload produce histograms with
  identical shape (and identical counts, for sim-derived values).

Names follow ``<subsystem>.<noun>[_<unit>]`` — ``panel.rate_switches``,
``governor.selected_rate_hz``, ``span.meter.grid_compare_seconds`` —
validated at registration; the full convention is documented in
``docs/observability.md``.  :meth:`MetricsRegistry.as_dict` emits
everything sorted by name so serialized output is reproducible.
"""

from __future__ import annotations

import bisect
import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Registered metric names: dotted lowercase words, digits, underscores.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}: use dotted lowercase "
            f"segments like 'panel.rate_switches'",
            context={"subsystem": "telemetry", "component": "metrics",
                     "name": name})
    return name


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current total."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the total."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease "
                f"(inc by {amount})",
                context={"subsystem": "telemetry", "component": "counter",
                         "name": self.name})
        self._value += amount


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Most recently set value (0.0 before any set)."""
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the level."""
        self._value = float(value)


class Histogram:
    """A distribution over fixed, strictly increasing bucket edges.

    ``edges`` of length N define N+1 buckets: ``(-inf, e0], (e0, e1],
    ..., (eN-1, inf)``.  Alongside the bucket counts the histogram
    tracks count, sum, min and max of the observed values, so means
    and extremes survive the bucketing.
    """

    __slots__ = ("name", "edges", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        self.name = name
        edge_list = [float(e) for e in edges]
        if not edge_list:
            raise TelemetryError(
                f"histogram {self.name!r} needs at least one bucket "
                f"edge",
                context={"subsystem": "telemetry",
                         "component": "histogram", "name": name})
        if any(b <= a for a, b in zip(edge_list, edge_list[1:])):
            raise TelemetryError(
                f"histogram {self.name!r} edges must be strictly "
                f"increasing, got {edge_list}",
                context={"subsystem": "telemetry",
                         "component": "histogram", "name": name})
        self.edges: Tuple[float, ...] = tuple(edge_list)
        self._counts: List[int] = [0] * (len(edge_list) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one value."""
        value = float(value)
        self._counts[bisect.bisect_left(self.edges, value)] += 1
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Values observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Counts per bucket (``len(edges) + 1`` entries)."""
        return tuple(self._counts)

    def as_dict(self) -> dict:
        """JSON-ready snapshot of the distribution."""
        return {
            "edges": list(self.edges),
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def merge_dict(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`as_dict` snapshot in.

        The snapshot's edges must match this histogram's exactly —
        merging distributions bucketed differently is meaningless and
        raises :class:`~repro.errors.TelemetryError`.
        """
        edges = tuple(float(e) for e in snapshot["edges"])
        if edges != self.edges:
            raise TelemetryError(
                f"cannot merge histogram {self.name!r}: edges "
                f"{list(edges)} != {list(self.edges)}",
                context={"subsystem": "telemetry",
                         "component": "histogram", "name": self.name})
        for i, count in enumerate(snapshot["counts"]):
            self._counts[i] += int(count)
        self._count += int(snapshot["count"])
        self._sum += float(snapshot["sum"])
        for bound, pick in ((snapshot["min"], min),
                            (snapshot["max"], max)):
            if bound is None:
                continue
            if pick is min:
                self._min = (float(bound) if self._min is None
                             else pick(self._min, float(bound)))
            else:
                self._max = (float(bound) if self._max is None
                             else pick(self._max, float(bound)))


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    A name belongs to exactly one instrument type for the registry's
    lifetime; re-requesting it with a different type (or a histogram
    with different edges) is a :class:`~repro.errors.TelemetryError`
    rather than a silent aliasing bug.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        found = self._counters.get(name)
        if found is not None:
            return found
        self._check_free(name, "counter")
        counter = Counter(_validate_name(name))
        self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        found = self._gauges.get(name)
        if found is not None:
            return found
        self._check_free(name, "gauge")
        gauge = Gauge(_validate_name(name))
        self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str,
                  edges: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram called ``name``.

        ``edges`` is required on first registration and must match (or
        be omitted) on later lookups.
        """
        found = self._histograms.get(name)
        if found is not None:
            if edges is not None and tuple(
                    float(e) for e in edges) != found.edges:
                raise TelemetryError(
                    f"histogram {name!r} already registered with edges "
                    f"{list(found.edges)}",
                    context={"subsystem": "telemetry",
                             "component": "metrics", "name": name})
            return found
        if edges is None:
            raise TelemetryError(
                f"histogram {name!r} needs bucket edges on first "
                f"registration",
                context={"subsystem": "telemetry",
                         "component": "metrics", "name": name})
        self._check_free(name, "histogram")
        histogram = Histogram(_validate_name(name), edges)
        self._histograms[name] = histogram
        return histogram

    def _check_free(self, name: str, wanted: str) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if kind != wanted and name in table:
                raise TelemetryError(
                    f"metric {name!r} is already a {kind}; cannot "
                    f"re-register as a {wanted}",
                    context={"subsystem": "telemetry",
                             "component": "metrics", "name": name})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Every registered metric name, sorted."""
        return tuple(sorted(set(self._counters) | set(self._gauges)
                            | set(self._histograms)))

    def as_dict(self) -> dict:
        """JSON-ready snapshot, every section sorted by name."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one :meth:`as_dict` snapshot into this registry.

        The merge rules per instrument type:

        * counters **add** — totals across sessions sum;
        * gauges **overwrite** (last-write-wins, like :meth:`Gauge.set`)
          — so folding snapshots in a fixed order yields a fixed value;
        * histograms **combine**: per-bucket counts and sums add,
          min/max widen; edges must match
          (:meth:`Histogram.merge_dict`).

        This is how the batch runner builds one batch-level registry
        from per-worker session registries: snapshots are always folded
        in *input* (config) order, which makes the merged registry
        independent of worker count and completion order.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist in snapshot.get("histograms", {}).items():
            self.histogram(name, hist["edges"]).merge_dict(hist)


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge registry snapshots into one, deterministically.

    Pure-function form of :meth:`MetricsRegistry.merge_snapshot`:
    builds a fresh registry, folds every snapshot in the order given,
    and returns the merged :meth:`MetricsRegistry.as_dict`.  Callers
    that need order-independence (the parallel batch runner) pass
    snapshots in input order, never completion order.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.as_dict()
