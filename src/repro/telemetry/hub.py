"""The telemetry hub: one event bus + metrics + spans per session.

The hub is what components talk to.  A component holding a hub calls
``hub.emit(kind, sim_time, ...)`` for discrete happenings,
``hub.metrics.counter(name).inc()`` for totals, and
``with hub.span(name, sim_time):`` around hot operations.  A component
holding ``None`` — the default everywhere — takes a single attribute
check and no other cost, which is how a telemetry-disabled session
stays bit-identical to the uninstrumented pipeline.

The hub is **not** a global: :func:`repro.sim.session.run_session`
builds one per session from a :class:`TelemetryConfig`, threads it
through the stack, and closes it when the session ends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError
from ..units import ensure_positive_int
from .events import EVENT_KINDS, EVENT_SPAN, TelemetryEvent
from .metrics import MetricsRegistry
from .profiling import (
    SPAN_BUCKET_EDGES_S,
    Span,
    span_summary,
)
from .sinks import BufferSink, JsonlSink, RingBufferSink, TelemetrySink


@dataclass(frozen=True)
class TelemetryConfig:
    """What a session's telemetry should capture and where it goes.

    Parameters
    ----------
    jsonl_path:
        Write every event to this JSONL file (None: no file sink).
    ring_capacity:
        Keep the most recent N events in memory for post-run
        inspection (0 disables the ring sink).
    profile_spans:
        Instrument the metering hot path with ``perf_counter`` spans.
        Off, the stream still carries control events (rate switches,
        boosts, watchdog moves) but no ``span`` events.  Span timings
        are wall clock — leave this off when byte-identical summaries
        across runs matter (the parallel batch equivalence guarantee;
        see ``docs/performance.md``).
    session_id:
        Override the deterministic default id
        (``app:governor:seed``).
    capture_buffer:
        Attach a lossless :class:`~repro.telemetry.sinks.BufferSink`
        holding every event in memory.  The batch runner sets this on
        worker sessions to ship complete streams back across the
        process boundary for deterministic interleaving.
    """

    jsonl_path: Optional[str] = None
    ring_capacity: int = 4096
    profile_spans: bool = True
    session_id: Optional[str] = None
    capture_buffer: bool = False

    def __post_init__(self) -> None:
        if self.ring_capacity != 0:
            ensure_positive_int(self.ring_capacity, "ring_capacity")


class TelemetryHub:
    """Structured event bus + metrics registry + span collector.

    Parameters
    ----------
    session_id:
        Stamped on every event this hub emits.
    sinks:
        Event receivers, written in order per event.
    profile_spans:
        When False, :meth:`span` returns a no-op span (hot paths run
        untimed) — control events and metrics still flow.
    clock:
        Monotonic wall clock; injectable for deterministic tests.
    """

    def __init__(self, session_id: str,
                 sinks: Sequence[TelemetrySink] = (),
                 profile_spans: bool = True,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.session_id = session_id
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.profile_spans = profile_spans
        self._sinks: List[TelemetrySink] = list(sinks)
        self._epoch = clock()
        self._event_counts: Dict[str, int] = {}
        self._span_durations: Dict[str, List[float]] = {}
        self._last_sim_time = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: TelemetrySink) -> None:
        """Attach another event receiver."""
        self._sinks.append(sink)

    @property
    def sinks(self) -> Tuple[TelemetrySink, ...]:
        """The attached sinks, in write order."""
        return tuple(self._sinks)

    @property
    def ring(self) -> Optional[RingBufferSink]:
        """The first ring-buffer sink, if one is attached."""
        for sink in self._sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    @property
    def buffer(self) -> Optional[BufferSink]:
        """The first lossless buffer sink, if one is attached."""
        for sink in self._sinks:
            if isinstance(sink, BufferSink):
                return sink
        return None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, sim_time_s: float,
             **data: Any) -> TelemetryEvent:
        """Emit one event to every sink; returns the event.

        ``kind`` must come from the closed taxonomy
        (:data:`~repro.telemetry.events.EVENT_KINDS`).
        """
        if kind not in EVENT_KINDS:
            raise TelemetryError(
                f"unknown telemetry event kind {kind!r}; "
                f"taxonomy: {EVENT_KINDS}",
                context={"subsystem": "telemetry", "component": "emit",
                         "kind": kind})
        if self._closed:
            raise TelemetryError(
                f"telemetry hub for {self.session_id!r} is closed",
                context={"subsystem": "telemetry", "component": "emit",
                         "kind": kind})
        self._last_sim_time = sim_time_s
        event = TelemetryEvent(
            kind=kind, session_id=self.session_id,
            sim_time_s=sim_time_s,
            wall_time_s=self.clock() - self._epoch, data=data)
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        for sink in self._sinks:
            sink.write(event)
        return event

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str,
             sim_time_s: Optional[float] = None) -> Span:
        """A context manager timing one occurrence of ``name``.

        With ``profile_spans`` off this returns a span whose exit is
        recorded nowhere (the timing calls still cost two clock reads;
        callers on the hottest paths should branch on
        :attr:`profile_spans` themselves).
        """
        return Span(self, name, sim_time_s)

    def record_span(self, name: str, sim_time_s: Optional[float],
                    duration_s: float) -> None:
        """Record one finished span (spans call this on exit)."""
        if not self.profile_spans:
            return
        self._span_durations.setdefault(name, []).append(duration_s)
        self.metrics.histogram(f"span.{name}_seconds",
                               SPAN_BUCKET_EDGES_S).observe(duration_s)
        self.emit(EVENT_SPAN,
                  self._last_sim_time if sim_time_s is None
                  else sim_time_s,
                  name=name, duration_s=duration_s)

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Percentile summary per span name (sorted by name)."""
        return {name: span_summary(self._span_durations[name])
                for name in sorted(self._span_durations)}

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def events_total(self) -> int:
        """Events emitted so far."""
        return sum(self._event_counts.values())

    @property
    def event_counts(self) -> Dict[str, int]:
        """Events emitted per kind (sorted copy)."""
        return {kind: self._event_counts[kind]
                for kind in sorted(self._event_counts)}

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def summary_dict(self) -> dict:
        """The stable ``telemetry`` schema of a session summary.

        Keys: ``session_id``, ``events`` (total + by-kind counts),
        ``metrics`` (the registry snapshot), ``spans`` (percentile
        summaries).  Span values are wall time and therefore vary
        between runs; everything else is deterministic for a given
        workload.
        """
        return {
            "session_id": self.session_id,
            "events": {
                "total": self.events_total,
                "by_kind": self.event_counts,
            },
            "metrics": self.metrics.as_dict(),
            "spans": self.span_stats(),
        }

    def close(self) -> None:
        """Close every sink; the hub accepts no further events."""
        if self._closed:
            return
        self._closed = True
        for sink in self._sinks:
            sink.close()


def build_hub(config: Optional[TelemetryConfig],
              default_session_id: str) -> Optional[TelemetryHub]:
    """Construct the hub a :class:`TelemetryConfig` describes.

    ``None`` in, ``None`` out — callers thread the result straight into
    component constructors, where None means uninstrumented.
    """
    if config is None:
        return None
    sinks: List[TelemetrySink] = []
    if config.ring_capacity > 0:
        sinks.append(RingBufferSink(config.ring_capacity))
    if config.jsonl_path is not None:
        sinks.append(JsonlSink(config.jsonl_path))
    if config.capture_buffer:
        sinks.append(BufferSink())
    return TelemetryHub(
        session_id=config.session_id or default_session_id,
        sinks=sinks, profile_spans=config.profile_spans)
