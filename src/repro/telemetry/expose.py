"""Prometheus text exposition (format v0.0.4) for registry snapshots.

The :class:`~repro.telemetry.metrics.MetricsRegistry` built in PR 2 is
post-hoc: its snapshots surface in session summaries after a run ends.
This module turns any snapshot — live service registry, merged batch
registry, offline stats — into the Prometheus *text exposition format*
version 0.0.4, the line protocol every Prometheus-compatible scraper
speaks::

    # HELP repro_panel_rate_switches_total repro metric panel.rate_switches
    # TYPE repro_panel_rate_switches_total counter
    repro_panel_rate_switches_total 17

Three rules connect the internal naming convention
(``<subsystem>.<noun>[_<unit>]``, dotted lowercase — see
``docs/observability.md``) to exposition names:

* every name is prefixed ``repro_`` and dots become underscores
  (``panel.rate_switches`` → ``repro_panel_rate_switches``);
* counters gain the conventional ``_total`` suffix;
* histograms expand to ``_bucket`` (cumulative, with an ``le`` label
  per edge plus ``+Inf``), ``_sum`` and ``_count`` series.

Rendering is **pure**: snapshot in, text out, no clocks, no I/O —
which is what lets the live ``/metrics`` endpoint
(:mod:`repro.service.http`) serve scrapes without perturbing the
deterministic simulation underneath, and lets ``repro stats --format
prom`` reuse the identical code path offline.

:func:`parse_exposition` is the inverse used by tests and the chaos
harness: it parses exposition text back into typed families and
*validates* it (histogram buckets must be cumulative, ``+Inf`` must
equal ``_count``, names must be legal), so "the endpoint emits
well-formed output" is an executable assertion, not a hope.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Content-Type a v0.0.4 exposition response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default prefix joining the repo's dotted names to the Prometheus
#: namespace.
DEFAULT_PREFIX = "repro_"

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")
_NAME_FIRST_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_LABEL_FIRST_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")

#: A label set rendered into one sample line: sorted (name, value).
LabelItems = Tuple[Tuple[str, str], ...]


def sanitize_metric_name(name: str,
                         prefix: str = DEFAULT_PREFIX) -> str:
    """Map one internal metric name onto a legal Prometheus name.

    Every character outside ``[a-zA-Z0-9_:]`` becomes ``_`` (the dots
    of the internal convention included), and ``prefix`` is prepended.
    The mapping is deterministic but not injective — ``a.b`` and
    ``a_b`` collide; the internal convention separates subsystems with
    dots precisely so this never happens in practice.
    """
    if not name:
        raise TelemetryError(
            "cannot sanitize an empty metric name",
            context={"subsystem": "telemetry", "component": "expose"})
    body = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    candidate = prefix + body
    if candidate[0] not in _NAME_FIRST_OK:
        candidate = "_" + candidate
    return candidate


def sanitize_label_name(name: str) -> str:
    """Map a string onto a legal Prometheus label name."""
    if not name:
        raise TelemetryError(
            "cannot sanitize an empty label name",
            context={"subsystem": "telemetry", "component": "expose"})
    body = "".join(ch if ch in _NAME_OK and ch != ":" else "_"
                   for ch in name)
    if body[0] not in _LABEL_FIRST_OK:
        body = "_" + body
    return body


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition grammar."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def escape_help(text: str) -> str:
    """Escape a HELP line (backslash and newline only)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Render one sample value: ``+Inf``/``-Inf``/``NaN``, integers
    without a decimal point, everything else via ``repr``."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((sanitize_label_name(str(k)), str(v))
                        for k, v in labels.items()))


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{name}="{escape_label_value(value)}"'
                     for name, value in items)
    return "{" + inner + "}"


class _Family:
    """One metric family being assembled: a type plus its samples."""

    __slots__ = ("internal_name", "kind", "samples")

    def __init__(self, internal_name: str, kind: str) -> None:
        self.internal_name = internal_name
        self.kind = kind
        # list of (suffix, extra label items, label items, value)
        self.samples: List[Tuple[str, LabelItems, float]] = []


def _histogram_lines(name: str, labels: LabelItems,
                     hist: Mapping[str, object]) -> List[str]:
    """The ``_bucket``/``_sum``/``_count`` lines of one histogram
    series.  Bucket counts are cumulative; an explicit ``+Inf`` edge in
    the snapshot is folded into the terminal ``+Inf`` bucket instead of
    being emitted twice."""
    edges = [float(e) for e in hist["edges"]]  # type: ignore[index]
    counts = [int(c) for c in hist["counts"]]  # type: ignore[index]
    total = int(hist["count"])  # type: ignore[arg-type]
    lines: List[str] = []
    cumulative = 0
    for edge, count in zip(edges, counts):
        cumulative += count
        if math.isinf(edge) and edge > 0:
            # The snapshot's own +Inf edge: the terminal bucket below
            # covers it (values beyond +Inf cannot exist).
            continue
        bucket_labels = _render_labels(
            labels + (("le", format_value(edge)),))
        lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
    inf_labels = _render_labels(labels + (("le", "+Inf"),))
    lines.append(f"{name}_bucket{inf_labels} {total}")
    lines.append(f"{name}_sum{_render_labels(labels)} "
                 f"{format_value(float(hist['sum']))}")  # type: ignore[arg-type]
    lines.append(f"{name}_count{_render_labels(labels)} {total}")
    return lines


def render_groups(groups: Sequence[Tuple[Mapping[str, object],
                                         Optional[Mapping[str, str]]]],
                  prefix: str = DEFAULT_PREFIX) -> str:
    """Render labelled registry snapshots into one exposition document.

    ``groups`` holds ``(snapshot, labels)`` pairs — each snapshot in
    the :meth:`~repro.telemetry.metrics.MetricsRegistry.as_dict` shape,
    each label set applied to every series of that snapshot.  Samples
    sharing a metric name across groups are folded under a single
    ``# TYPE`` block (the format forbids repeating one), which is how
    the live endpoint merges per-worker registries on scrape: the
    service registry renders unlabelled, each shard's registry renders
    with a ``shard="N"`` label, one family per name.

    Raises :class:`~repro.errors.TelemetryError` when the same name is
    used with different instrument types or when two samples collide
    on identical labels.
    """
    families: Dict[str, _Family] = {}
    seen: Dict[Tuple[str, str, LabelItems], bool] = {}

    def family(internal: str, kind: str) -> _Family:
        found = families.get(internal)
        if found is None:
            found = _Family(internal, kind)
            families[internal] = found
        elif found.kind != kind:
            raise TelemetryError(
                f"metric {internal!r} rendered as both "
                f"{found.kind} and {kind}",
                context={"subsystem": "telemetry",
                         "component": "expose", "name": internal})
        return found

    def add(internal: str, kind: str, suffix: str,
            labels: LabelItems, value: float) -> None:
        key = (internal, suffix, labels)
        if key in seen:
            raise TelemetryError(
                f"duplicate sample for {internal!r} with labels "
                f"{dict(labels)}",
                context={"subsystem": "telemetry",
                         "component": "expose", "name": internal})
        seen[key] = True
        family(internal, kind).samples.append((suffix, labels, value))

    for snapshot, raw_labels in groups:
        labels = _label_items(raw_labels)
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            add(name, "counter", "", labels, float(value))
        for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            add(name, "gauge", "", labels, float(value))
        for name, hist in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            add(name, "histogram", "", labels, 0.0)
            # The histogram payload rides on the family, keyed by its
            # label set; store it for the render pass below.
            families[name].samples[-1] = ("__hist__", labels, hist)  # type: ignore[assignment]

    lines: List[str] = []
    for internal in sorted(families):
        fam = families[internal]
        exposed = sanitize_metric_name(internal, prefix)
        if fam.kind == "counter":
            exposed += "_total"
        lines.append(f"# HELP {exposed} "
                     f"{escape_help('repro metric ' + internal)}")
        lines.append(f"# TYPE {exposed} {fam.kind}")
        for suffix, labels, value in fam.samples:
            if suffix == "__hist__":
                lines.extend(_histogram_lines(
                    exposed, labels, value))  # type: ignore[arg-type]
            else:
                lines.append(f"{exposed}{_render_labels(labels)} "
                             f"{format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_snapshot(snapshot: Mapping[str, object],
                    labels: Optional[Mapping[str, str]] = None,
                    prefix: str = DEFAULT_PREFIX) -> str:
    """Render one registry snapshot (one label set) to exposition
    text.  Pure convenience over :func:`render_groups`."""
    return render_groups([(snapshot, labels)], prefix=prefix)


def render_registry(registry, labels: Optional[Mapping[str, str]] = None,
                    prefix: str = DEFAULT_PREFIX) -> str:
    """Render a live :class:`~repro.telemetry.metrics.MetricsRegistry`."""
    return render_snapshot(registry.as_dict(), labels=labels,
                           prefix=prefix)


# ----------------------------------------------------------------------
# Parsing (the validation inverse)
# ----------------------------------------------------------------------

def _parse_value(token: str, where: str) -> float:
    mapped = {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}
    if token in mapped:
        return mapped[token]
    try:
        return float(token)
    except ValueError:
        raise TelemetryError(
            f"{where}: unparseable sample value {token!r}",
            context={"subsystem": "telemetry",
                     "component": "expose"}) from None


def _parse_labels(text: str, where: str) -> LabelItems:
    items: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0:
            raise TelemetryError(
                f"{where}: malformed label block",
                context={"subsystem": "telemetry",
                         "component": "expose"})
        name = text[i:eq].strip()
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise TelemetryError(
                f"{where}: label value must be quoted",
                context={"subsystem": "telemetry",
                         "component": "expose"})
        j = eq + 2
        value_chars: List[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                nxt = text[j + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise TelemetryError(
                f"{where}: unterminated label value",
                context={"subsystem": "telemetry",
                         "component": "expose"})
        items.append((name, "".join(value_chars)))
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return tuple(sorted(items))


def _valid_name(name: str) -> bool:
    return bool(name) and name[0] in _NAME_FIRST_OK and all(
        ch in _NAME_OK for ch in name)


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back into typed metric families.

    Returns ``{family_name: {"type": str, "help": str | None,
    "samples": {(sample_name, label_items): value}}}`` where histogram
    sample names keep their ``_bucket``/``_sum``/``_count`` suffixes
    and the family name is the base.  Validates as it goes — duplicate
    ``TYPE`` lines, illegal names, unparseable values, non-cumulative
    histogram buckets and a ``+Inf`` bucket disagreeing with
    ``_count`` all raise :class:`~repro.errors.TelemetryError` — so a
    successful parse *is* the well-formedness assertion CI wants.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_for(name: str) -> Dict[str, object]:
        # A histogram sample belongs to its base family.
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                candidate = name[: -len(suffix)]
                if candidate in families and \
                        families[candidate]["type"] == "histogram":
                    base = candidate
                break
        return families.setdefault(
            base, {"type": "untyped", "help": None, "samples": {}})

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        where = f"exposition line {lineno}"
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            family_for(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise TelemetryError(
                    f"{where}: malformed TYPE line",
                    context={"subsystem": "telemetry",
                             "component": "expose"})
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                raise TelemetryError(
                    f"{where}: unknown metric type {kind!r}",
                    context={"subsystem": "telemetry",
                             "component": "expose"})
            if not _valid_name(name):
                raise TelemetryError(
                    f"{where}: illegal metric name {name!r}",
                    context={"subsystem": "telemetry",
                             "component": "expose"})
            fam = families.setdefault(
                name, {"type": "untyped", "help": None, "samples": {}})
            if fam["type"] != "untyped":
                raise TelemetryError(
                    f"{where}: duplicate TYPE for {name!r}",
                    context={"subsystem": "telemetry",
                             "component": "expose"})
            fam["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        # Sample line: name[{labels}] value [timestamp]
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise TelemetryError(
                    f"{where}: unbalanced label braces",
                    context={"subsystem": "telemetry",
                             "component": "expose"})
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close], where)
            remainder = line[close + 1:].strip()
        else:
            fields = line.split()
            if len(fields) < 2:
                raise TelemetryError(
                    f"{where}: sample line needs a value",
                    context={"subsystem": "telemetry",
                             "component": "expose"})
            name, remainder = fields[0], " ".join(fields[1:])
            labels = ()
        if not _valid_name(name):
            raise TelemetryError(
                f"{where}: illegal sample name {name!r}",
                context={"subsystem": "telemetry",
                         "component": "expose"})
        value_token = remainder.split()[0] if remainder.split() else ""
        value = _parse_value(value_token, where)
        samples = family_for(name)["samples"]
        key = (name, labels)
        if key in samples:  # type: ignore[operator]
            raise TelemetryError(
                f"{where}: duplicate sample {name!r} {dict(labels)}",
                context={"subsystem": "telemetry",
                         "component": "expose"})
        samples[key] = value  # type: ignore[index]

    _validate_histograms(families)
    return families


def _validate_histograms(
        families: Dict[str, Dict[str, object]]) -> None:
    for base, fam in families.items():
        if fam["type"] != "histogram":
            continue
        samples: Dict[Tuple[str, LabelItems], float] = \
            fam["samples"]  # type: ignore[assignment]
        # Group buckets per non-le label signature.
        series: Dict[LabelItems, List[Tuple[float, float]]] = {}
        counts: Dict[LabelItems, float] = {}
        for (name, labels), value in samples.items():
            rest = tuple(item for item in labels if item[0] != "le")
            if name == base + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    raise TelemetryError(
                        f"{base}: bucket sample without an le label",
                        context={"subsystem": "telemetry",
                                 "component": "expose"})
                series.setdefault(rest, []).append(
                    (_parse_value(le, base), value))
            elif name == base + "_count":
                counts[rest] = value
        for rest, buckets in series.items():
            buckets.sort(key=lambda item: item[0])
            cumulative = [v for _, v in buckets]
            if any(b < a for a, b in zip(cumulative, cumulative[1:])):
                raise TelemetryError(
                    f"{base}: bucket counts are not cumulative",
                    context={"subsystem": "telemetry",
                             "component": "expose",
                             "labels": dict(rest)})
            if not buckets or not math.isinf(buckets[-1][0]):
                raise TelemetryError(
                    f"{base}: histogram series lacks a +Inf bucket",
                    context={"subsystem": "telemetry",
                             "component": "expose",
                             "labels": dict(rest)})
            total = counts.get(rest)
            if total is None or buckets[-1][1] != total:
                raise TelemetryError(
                    f"{base}: +Inf bucket ({buckets[-1][1]}) disagrees "
                    f"with _count ({total})",
                    context={"subsystem": "telemetry",
                             "component": "expose",
                             "labels": dict(rest)})


def histogram_quantile(edges: Sequence[float],
                       counts: Sequence[int],
                       quantile: float) -> float:
    """Estimate a quantile from fixed-bucket histogram counts.

    ``edges``/``counts`` are the registry snapshot shape (``counts``
    has ``len(edges) + 1`` entries, non-cumulative).  Uses the standard
    Prometheus estimator: linear interpolation inside the bucket the
    quantile falls in, clamped to the last finite edge for the
    overflow bucket.  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= quantile <= 1.0:
        raise TelemetryError(
            f"quantile must be in [0, 1], got {quantile}",
            context={"subsystem": "telemetry", "component": "expose"})
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = quantile * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            if index >= len(edges):
                return float(edges[-1])  # overflow bucket: clamp
            upper = float(edges[index])
            lower = float(edges[index - 1]) if index > 0 else 0.0
            if count == 0 or math.isinf(upper):
                return upper if not math.isinf(upper) else lower
            fraction = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * fraction
    return float(edges[-1])


# ----------------------------------------------------------------------
# Offline snapshot builders (``repro stats --format prom``)
# ----------------------------------------------------------------------

def snapshot_from_events(events: Sequence[Mapping[str, object]]) -> dict:
    """Build a registry snapshot from parsed telemetry JSONL events.

    Event counts become ``stream.events.<kind>`` counters (plus a
    ``stream.events`` total — exposed as
    ``repro_stream_events_total``), sessions a ``stream.sessions``
    gauge,
    fault sites ``stream.faults.<site>`` counters, and span durations
    are re-bucketed into the *same* ``span.<name>_seconds`` histograms
    the live hub maintains — so an offline stream and a live scrape
    render identical span families.
    """
    from .metrics import MetricsRegistry
    from .profiling import SPAN_BUCKET_EDGES_S

    registry = MetricsRegistry()
    sessions = set()
    registry.counter("stream.events")
    for event in events:
        kind = str(event.get("kind", "unknown"))
        registry.counter("stream.events").inc()
        registry.counter(f"stream.events.{kind}").inc()
        if "session" in event:
            sessions.add(event["session"])
        data = event.get("data", {})
        if not isinstance(data, Mapping):
            continue
        if kind == "fault_injected":
            site = str(data.get("site", "unknown"))
            registry.counter(f"stream.faults.{site}").inc()
        elif kind == "span":
            name = str(data.get("name", "unknown"))
            registry.histogram(f"span.{name}_seconds",
                               SPAN_BUCKET_EDGES_S).observe(
                float(data.get("duration_s", 0.0)))  # type: ignore[arg-type]
    registry.gauge("stream.sessions").set(len(sessions))
    return registry.as_dict()


def snapshot_from_bench(bench: Mapping[str, object]) -> dict:
    """Registry snapshot of a ``repro-bench/1`` document: every metric
    becomes a ``bench.<name>`` gauge, plus ``bench.cpu_count`` and
    ``bench.workers`` context gauges."""
    from .metrics import MetricsRegistry

    registry = MetricsRegistry()
    metrics = bench.get("metrics")
    if not isinstance(metrics, Mapping):
        raise TelemetryError(
            "bench document has no 'metrics' mapping",
            context={"subsystem": "telemetry", "component": "expose"})
    for name, metric in metrics.items():
        registry.gauge(f"bench.{name}").set(
            float(metric["value"]))  # type: ignore[index]
    for key in ("cpu_count", "workers"):
        if key in bench:
            registry.gauge(f"bench.{key}").set(
                float(bench[key]))  # type: ignore[arg-type]
    return registry.as_dict()
