"""Pluggable event sinks: ring buffer, JSONL writer, null.

A sink receives every :class:`~repro.telemetry.events.TelemetryEvent`
the hub emits, in emission order.  Sinks are deliberately dumb — no
filtering, no buffering policy beyond what the sink *is* — so the hub
stays the single place that decides what gets emitted.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Deque, Optional, Tuple, Union

from ..errors import TelemetryError
from ..ioutil import replace_into_place
from .events import TelemetryEvent

PathLike = Union[str, pathlib.Path]


class TelemetrySink:
    """Interface every sink implements."""

    def write(self, event: TelemetryEvent) -> None:
        """Receive one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further writes are an error."""


class NullSink(TelemetrySink):
    """Drops everything; counts what it dropped.

    Useful for overhead measurement: the full emission path runs
    (event construction, hub accounting) with no storage cost.
    """

    def __init__(self) -> None:
        self.dropped = 0

    def write(self, event: TelemetryEvent) -> None:
        del event
        self.dropped += 1

    def close(self) -> None:
        pass


class BufferSink(TelemetrySink):
    """Keeps **every** event in memory, in emission order.

    The lossless sibling of :class:`RingBufferSink`, used where the
    whole stream must survive the session — most importantly the batch
    runner's cross-process stream collection, where each worker ships
    its sessions' complete event streams back to the parent for
    deterministic interleaving (``docs/performance.md``).  Unbounded:
    callers own the memory trade-off.
    """

    def __init__(self) -> None:
        self._events: list = []

    def write(self, event: TelemetryEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[TelemetryEvent, ...]:
        """Every event received, oldest first."""
        return tuple(self._events)


class RingBufferSink(TelemetrySink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise TelemetryError(
                f"ring buffer capacity must be >= 1, got {capacity}",
                context={"subsystem": "telemetry", "component": "ring"})
        self.capacity = capacity
        self._events: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self._written = 0

    def write(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        self._written += 1

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._events)

    @property
    def written(self) -> int:
        """Total events received (including ones since evicted)."""
        return self._written

    @property
    def events(self) -> Tuple[TelemetryEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def by_kind(self, kind: str) -> Tuple[TelemetryEvent, ...]:
        """Retained events of one kind, oldest first."""
        return tuple(e for e in self._events if e.kind == kind)


class JsonlSink(TelemetrySink):
    """Appends one JSON object per event to a file.

    Lines follow the version-1 schema of
    :meth:`TelemetryEvent.to_json_dict`; keys are sorted so identical
    event streams serialize identically.

    Crash-safe: events stream into a sibling temporary file which is
    atomically renamed over ``path`` on :meth:`close`.  A session that
    dies mid-run leaves the previous complete stream (or nothing) at
    the destination, never a truncated one; the orphaned ``.tmp`` file
    survives for post-mortem inspection.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self._tmp_path = self.path.with_name(
            self.path.name + ".inflight.tmp")
        self._handle: Optional[object] = self._tmp_path.open("w")
        self._written = 0

    @property
    def written(self) -> int:
        """Events written so far."""
        return self._written

    def write(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            raise TelemetryError(
                f"JSONL sink {self.path} is closed",
                context={"subsystem": "telemetry", "component": "jsonl",
                         "path": str(self.path)})
        self._handle.write(json.dumps(event.to_json_dict(),
                                      sort_keys=True) + "\n")
        self._written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()  # type: ignore[attr-defined]
            self._handle = None
            replace_into_place(self._tmp_path, self.path)
