"""Telemetry: structured events, metrics, and hot-path profiling.

The simulator's figures are end-of-session aggregates; debugging a
governor misstep or quantifying metering cost needs the *time-resolved*
record of what happened.  This package provides that record as three
cooperating pieces:

* :class:`TelemetryHub` (:mod:`repro.telemetry.hub`) — a structured
  event bus.  Components emit typed events (rate switches, section
  transitions, touch boosts, watchdog state changes, fault injections,
  V-Sync clips, profiling spans) carrying simulation time, monotonic
  wall time, and a session id; pluggable sinks receive them (in-memory
  ring buffer, JSONL writer, null sink).
* :class:`MetricsRegistry` (:mod:`repro.telemetry.metrics`) —
  deterministic counters, gauges, and fixed-bucket histograms wired
  into the governor, panel, content-rate meter, watchdog, and batch
  runner.
* :func:`timed` / spans (:mod:`repro.telemetry.profiling`) —
  ``perf_counter`` spans on the metering hot path (grid comparison,
  double-buffer copy, frame diff), making the paper's Figure 6
  overhead claim a measured artifact.

Telemetry is **off by default**: a session with no
:class:`TelemetryConfig` takes no telemetry branch anywhere and is
bit-identical to the uninstrumented pipeline.  See
``docs/observability.md`` for the event taxonomy, JSONL schema, and
naming conventions.
"""

from .events import (
    EVENT_FAULT_INJECTED,
    EVENT_KINDS,
    EVENT_RATE_SWITCH,
    EVENT_SECTION_TRANSITION,
    EVENT_SESSION_END,
    EVENT_SESSION_START,
    EVENT_SPAN,
    EVENT_TOUCH_BOOST,
    EVENT_VSYNC_CLIP,
    EVENT_WATCHDOG_STATE,
    TelemetryEvent,
    interleave_streams,
)
from .hub import TelemetryConfig, TelemetryHub, build_hub
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .profiling import SPAN_BUCKET_EDGES_S, span_summary, timed
from .sinks import (
    BufferSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TelemetrySink,
)
from .stats import (
    format_stats,
    parse_jsonl,
    summarize_events,
    summarize_jsonl,
)

__all__ = [
    "BufferSink",
    "Counter",
    "EVENT_FAULT_INJECTED",
    "EVENT_KINDS",
    "EVENT_RATE_SWITCH",
    "EVENT_SECTION_TRANSITION",
    "EVENT_SESSION_END",
    "EVENT_SESSION_START",
    "EVENT_SPAN",
    "EVENT_TOUCH_BOOST",
    "EVENT_VSYNC_CLIP",
    "EVENT_WATCHDOG_STATE",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "SPAN_BUCKET_EDGES_S",
    "TelemetryConfig",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetrySink",
    "build_hub",
    "format_stats",
    "interleave_streams",
    "merge_snapshots",
    "parse_jsonl",
    "span_summary",
    "summarize_events",
    "summarize_jsonl",
    "timed",
]
