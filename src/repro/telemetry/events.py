"""The typed event taxonomy and the event record itself.

Every telemetry event is one :class:`TelemetryEvent`: a *kind* from the
closed taxonomy below, the simulation clock and the monotonic wall
clock at emission, the id of the session that produced it, and a small
``data`` payload whose keys are fixed per kind (documented in
``docs/observability.md``).

The taxonomy is deliberately closed — :meth:`TelemetryHub.emit
<repro.telemetry.hub.TelemetryHub.emit>` rejects unknown kinds — so a
JSONL stream written today stays parseable by tomorrow's tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

#: Session lifecycle markers (data: app, governor, seed, duration_s).
EVENT_SESSION_START = "session_start"
EVENT_SESSION_END = "session_end"

#: A panel rate switch took effect (data: from_hz, to_hz).
EVENT_RATE_SWITCH = "rate_switch"

#: A governor rate request waited for the next frame boundary before
#: taking effect — the V-Sync latch (data: rate_hz, waited_s).
EVENT_VSYNC_CLIP = "vsync_clip"

#: A periodic governor decision landed in a different section of the
#: control table than the previous one (data: from_hz, to_hz).
EVENT_SECTION_TRANSITION = "section_transition"

#: A touch event forced an immediate rate override (data: rate_hz).
EVENT_TOUCH_BOOST = "touch_boost"

#: The governor watchdog's degradation ladder moved
#: (data: from_state, to_state).
EVENT_WATCHDOG_STATE = "watchdog_state"

#: The fault injector fired (data: site, detail, magnitude_s).
EVENT_FAULT_INJECTED = "fault_injected"

#: A profiling span closed (data: name, duration_s).
EVENT_SPAN = "span"

#: Every kind the hub accepts, in documentation order.
EVENT_KINDS = (
    EVENT_SESSION_START,
    EVENT_SESSION_END,
    EVENT_RATE_SWITCH,
    EVENT_VSYNC_CLIP,
    EVENT_SECTION_TRANSITION,
    EVENT_TOUCH_BOOST,
    EVENT_WATCHDOG_STATE,
    EVENT_FAULT_INJECTED,
    EVENT_SPAN,
)

#: JSONL schema version written by :class:`~repro.telemetry.sinks.
#: JsonlSink`; bump on any incompatible change to the line format.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured event on the bus.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    session_id:
        Id of the session that emitted the event (deterministic:
        ``app:governor:seed`` unless overridden).
    sim_time_s:
        Simulation-clock timestamp of the emission.
    wall_time_s:
        Monotonic wall-clock seconds since the hub was created
        (``perf_counter`` based; *not* deterministic across runs).
    data:
        Kind-specific payload; keys per kind are documented in
        ``docs/observability.md``.
    """

    kind: str
    session_id: str
    sim_time_s: float
    wall_time_s: float
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        """The JSONL line representation (stable schema, version 1)."""
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "session": self.session_id,
            "sim_s": self.sim_time_s,
            "wall_s": self.wall_time_s,
            "data": dict(self.data),
        }


def interleave_streams(
        streams: Sequence[Sequence[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Merge per-session event streams into one deterministic timeline.

    ``streams`` holds one event-dict list per session (the
    :meth:`TelemetryEvent.to_json_dict` form, each list in emission
    order), indexed by the session's *input position* — in a batch, its
    config index.  Events are ordered by ``(sim_time, stream index,
    within-stream position)``: sessions share one simulated timeline,
    ties go to the earlier input slot, and a session's own events never
    reorder.  The key uses no wall-clock field, so the *order* is
    identical no matter how many workers produced the streams or when
    each finished — this is the merge the parallel batch runner applies
    before writing a combined JSONL stream.
    """
    merged = []
    for stream_index, stream in enumerate(streams):
        for position, event in enumerate(stream):
            merged.append((float(event.get("sim_s", 0.0)),
                           stream_index, position, event))
    merged.sort(key=lambda item: item[:3])
    return [event for _, _, _, event in merged]
