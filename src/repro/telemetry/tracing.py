"""Job-scoped tracing: deterministic trace IDs and Perfetto export.

A job's life is scattered across artifacts — journal records, per-run
telemetry JSONL, checkpoints — and, after a SIGKILL, across *process
generations*.  This module stitches the pieces back into one timeline.

Two design decisions make that work without any coordination state:

* **Trace IDs are deterministic.**  :func:`mint_trace_id` hashes
  ``job_id`` + ``submitted_seq``, so the submit CLI, the service
  ingesting a spool file, and a post-crash incarnation re-ingesting
  the *same* spool file all derive the identical ID.  A job file may
  carry its ``trace_id`` explicitly (``repro submit`` writes one), but
  the scheme survives job files that predate the field.
* **Export is journal-driven.**  The journal already records every
  transition (ingest, attempt start, checkpoint, park, resume, done)
  with ``wall_s`` stamps; :func:`journal_trace_events` folds those
  records into Chrome trace-event JSON — the format Perfetto and
  ``chrome://tracing`` load natively.  Each service generation becomes
  a ``pid`` row, each job a stable ``tid`` lane, queue waits and
  attempts become duration (``X``) slices, checkpoints and resumes
  instants (``i``).  A kill mid-attempt leaves an unterminated span;
  the exporter closes it at the last record seen and flags it
  ``truncated`` so the gap is visible rather than silently dropped.

Timestamps come from the journal's ``wall_s`` fields (seconds since
the epoch, stamped by the service).  Records without ``wall_s`` (from
journals written before tracing landed) fall back to a synthetic
1 ms-per-record clock so old journals still render, just without real
durations.
"""

from __future__ import annotations

import hashlib
import pathlib
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from ..errors import TelemetryError
from ..ioutil import atomic_write_json

PathLike = Union[str, pathlib.Path]

#: Lowercase-hex trace IDs, 8..64 chars (sha256 prefix by default).
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: Journal ops that terminate an attempt span, mapped to the slice
#: name the closing produces.
_ATTEMPT_END_OPS = {
    "job_done": "attempt",
    "job_failed": "attempt",
    "attempt_failed": "attempt",
    "job_parked": "attempt",
}

#: Journal ops rendered as instant events on the job's lane.
_INSTANT_OPS = (
    "checkpoint_written", "checkpoint_invalid",
    "job_resumed", "job_rejected",
)


def mint_trace_id(job_id: str, submitted_seq: int = 0) -> str:
    """Deterministically derive a job's trace ID.

    Same inputs ⇒ same ID, which is the whole point: every process
    that sees the job (submitter, first service generation, the
    generation that resumes it after a kill) mints identically.
    """
    digest = hashlib.sha256(
        f"{job_id}\x00{int(submitted_seq)}".encode("utf-8")).hexdigest()
    return digest[:32]


def validate_trace_id(trace_id: str) -> str:
    """Check shape (lowercase hex, 8..64 chars); returns the ID."""
    if not isinstance(trace_id, str) or not _TRACE_ID_RE.match(trace_id):
        raise TelemetryError(
            f"malformed trace id {trace_id!r} "
            "(want 8..64 lowercase hex chars)",
            context={"subsystem": "telemetry", "component": "tracing"})
    return trace_id


def _wall_ts_us(records: List[Dict[str, Any]]) -> List[float]:
    """Per-record timestamps in microseconds, relative to the earliest
    ``wall_s`` seen.  Records lacking ``wall_s`` get a synthetic
    1 ms-per-record clock anchored at the previous real timestamp."""
    base: Optional[float] = None
    for record in records:
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            base = float(wall) if base is None else min(base, float(wall))
    out: List[float] = []
    last = 0.0
    for index, record in enumerate(records):
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool) \
                and base is not None:
            ts = (float(wall) - base) * 1e6
        else:
            ts = last + 1000.0  # synthetic 1 ms step
        last = max(last, ts)
        out.append(ts)
    return out


def journal_trace_events(
        records: Iterable[Mapping[str, Any]],
        job_ids: Optional[Iterable[str]] = None) -> List[Dict[str, Any]]:
    """Render journal records as Chrome trace events.

    ``job_ids`` optionally restricts the export to certain jobs
    (service-level records like ``service_start`` are always kept —
    they delimit the generations).  Returns the ``traceEvents`` list;
    wrap it with :func:`chrome_trace_document` before writing.
    """
    record_list = [dict(r) for r in records]
    wanted = set(job_ids) if job_ids is not None else None
    timestamps = _wall_ts_us(record_list)

    events: List[Dict[str, Any]] = []
    generation = 0
    lanes: Dict[str, int] = {}          # job_id -> tid
    named: set = set()                  # (pid, tid) thread_name emitted
    # job_id -> (slice name, start ts, args) for the open span
    open_spans: Dict[str, tuple] = {}
    last_ts = 0.0

    def lane_for(job_id: str) -> int:
        if job_id not in lanes:
            lanes[job_id] = len(lanes) + 1
        return lanes[job_id]

    def thread_meta(pid: int, tid: int, name: str) -> None:
        if (pid, tid) in named:
            return
        named.add((pid, tid))
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})

    def args_of(record: Dict[str, Any]) -> Dict[str, Any]:
        args = {k: v for k, v in record.items()
                if k not in ("op", "seq", "wall_s")}
        return args

    def close_span(job_id: str, name: str, ts: float,
                   record: Dict[str, Any],
                   truncated: bool = False) -> None:
        opened = open_spans.pop(job_id, None)
        if opened is None:
            return
        span_name, start_ts, span_args, pid = opened
        args = dict(span_args)
        args.update(args_of(record))
        if truncated:
            args["truncated"] = True
        events.append({
            "ph": "X", "name": name or span_name, "cat": span_name,
            "pid": pid, "tid": lane_for(job_id),
            "ts": start_ts, "dur": max(0.0, ts - start_ts),
            "args": args,
        })

    for record, ts in zip(record_list, timestamps):
        last_ts = max(last_ts, ts)
        op = record.get("op")
        job_id = record.get("job_id")
        if op == "service_start":
            # A new process generation: close anything the previous
            # one left open (it was killed mid-flight).
            for orphan in list(open_spans):
                close_span(orphan, "", ts, {}, truncated=True)
            generation += 1
            events.append({"ph": "M", "name": "process_name",
                           "pid": generation,
                           "args": {"name":
                                    f"repro serve (gen {generation})"}})
            events.append({"ph": "i", "name": "service_start", "s": "g",
                           "pid": generation, "tid": 0, "ts": ts,
                           "args": args_of(record)})
            continue
        pid = max(generation, 1)
        if op == "service_stop":
            events.append({"ph": "i", "name": "service_stop", "s": "g",
                           "pid": pid, "tid": 0, "ts": ts,
                           "args": args_of(record)})
            continue
        if not isinstance(job_id, str):
            continue
        if wanted is not None and job_id not in wanted:
            continue
        tid = lane_for(job_id)
        thread_meta(pid, tid, f"job {job_id}")
        if op == "job_ingested":
            # Queue wait: ingest -> first attempt_start.
            close_span(job_id, "", ts, {}, truncated=True)
            open_spans[job_id] = ("queue_wait", ts,
                                  args_of(record), pid)
        elif op == "attempt_start":
            close_span(job_id, "queue_wait", ts, record)
            open_spans[job_id] = ("attempt", ts, args_of(record), pid)
        elif op in _ATTEMPT_END_OPS:
            close_span(job_id, op, ts, record)
            if op == "job_parked":
                # Parked jobs wait for re-dispatch: a fresh wait span.
                open_spans[job_id] = ("parked_wait", ts,
                                      args_of(record), pid)
        elif op in _INSTANT_OPS:
            if op == "job_resumed":
                close_span(job_id, "parked_wait", ts, record)
                open_spans[job_id] = ("attempt", ts,
                                      args_of(record), pid)
            else:
                events.append({"ph": "i", "name": str(op), "s": "t",
                               "pid": pid, "tid": tid, "ts": ts,
                               "args": args_of(record)})
        else:
            events.append({"ph": "i", "name": str(op or "record"),
                           "s": "t", "pid": pid, "tid": tid, "ts": ts,
                           "args": args_of(record)})

    # Journal ended with spans still open (service killed, or journal
    # truncated): close them at the last timestamp, flagged.
    for orphan in list(open_spans):
        close_span(orphan, "", last_ts, {}, truncated=True)
    return events


def telemetry_trace_events(
        events: Iterable[Mapping[str, Any]],
        pid: int = 0) -> List[Dict[str, Any]]:
    """Render a telemetry JSONL stream (one session's events) as
    Chrome trace events.

    Span events become ``X`` slices (their ``wall_s`` marks the span
    *end*; the start is recovered from ``duration_s``), everything
    else an instant on the session's lane.  ``wall_s`` here is seconds
    since the hub's epoch, so timelines from different runs should be
    exported separately (or distinguished via ``pid``).
    """
    out: List[Dict[str, Any]] = []
    lanes: Dict[str, int] = {}
    named: set = set()

    def lane_for(session: str) -> int:
        if session not in lanes:
            lanes[session] = len(lanes) + 1
        return lanes[session]

    for event in events:
        session = str(event.get("session", "session"))
        tid = lane_for(session)
        if (pid, tid) not in named:
            named.add((pid, tid))
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": tid, "args": {"name": session}})
        wall = event.get("wall_s")
        wall_s = float(wall) if isinstance(wall, (int, float)) \
            and not isinstance(wall, bool) else 0.0
        kind = str(event.get("kind", "event"))
        data = event.get("data")
        data = dict(data) if isinstance(data, Mapping) else {}
        if kind == "span":
            duration = float(data.get("duration_s", 0.0) or 0.0)
            out.append({
                "ph": "X", "name": str(data.get("name", "span")),
                "cat": "span", "pid": pid, "tid": tid,
                "ts": max(0.0, (wall_s - duration)) * 1e6,
                "dur": duration * 1e6,
                "args": {"sim_s": event.get("sim_s")},
            })
        else:
            out.append({"ph": "i", "name": kind, "s": "t", "pid": pid,
                        "tid": tid, "ts": wall_s * 1e6,
                        "args": {"sim_s": event.get("sim_s"), **data}})
    return out


def chrome_trace_document(
        trace_events: List[Dict[str, Any]],
        metadata: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Wrap a ``traceEvents`` list into the JSON object format
    Perfetto and ``chrome://tracing`` load."""
    document: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["metadata"] = dict(metadata)
    return document


def write_chrome_trace(path: PathLike,
                       document: Mapping[str, Any]) -> None:
    """Atomically write a Chrome trace JSON document."""
    atomic_write_json(pathlib.Path(path), dict(document))
