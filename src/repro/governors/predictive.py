"""Dynamic-Sampling-Rate-style predictive governor (zoo extension).

The Dynamic Sampling Rate line of work observes that frame coherence
is *predictable*: the recent history of inter-frame change is a good
forecast of the next frame's change, so a controller can set the rate
for what is about to happen instead of reacting to what already did.

This policy consumes the grid comparator's history — the timestamps
of frames the meter judged meaningful — incrementally, maintains an
exponentially-weighted moving average of the inter-arrival intervals,
and forecasts the next-frame change rate as the EWMA's reciprocal.
When the stream goes quiet (no meaningful frame for several predicted
intervals) the forecast decays with the growing gap, so a paused
video or an idle screen ramps down instead of latching at the last
busy estimate.  The forecast feeds the same Equation 1 section table
as the paper's reactive control, preserving the headroom property
that prevents the naive governor's deadlock.
"""

from __future__ import annotations

from typing import Optional

from ..core.content_rate import ContentRateMeter
from ..core.governor import GovernorPolicy
from ..core.section_table import SectionTable
from ..errors import ConfigurationError


class PredictiveRateGovernor(GovernorPolicy):
    """Forecast next-frame change from meaningful-frame history.

    Parameters
    ----------
    table:
        Section table mapping the forecast rate to a panel rate.
    meter:
        The meter whose meaningful-frame log is the change history.
    alpha:
        EWMA weight of the newest inter-arrival interval (0 < alpha
        <= 1; higher adapts faster, lower smooths harder).
    idle_factor:
        Quiet-stream threshold: when the gap since the last meaningful
        frame exceeds ``idle_factor`` predicted intervals, the
        forecast decays to ``1 / gap``.
    """

    name = "predictive-rate"

    def __init__(self, table: SectionTable, meter: ContentRateMeter,
                 alpha: float = 0.3,
                 idle_factor: float = 2.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}")
        if idle_factor <= 0:
            raise ConfigurationError(
                f"idle_factor must be > 0, got {idle_factor}")
        self.table = table
        self.meter = meter
        self.alpha = alpha
        self.idle_factor = idle_factor
        self._consumed = 0
        self._last_time: Optional[float] = None
        self._ewma_interval: Optional[float] = None

    def _ingest_history(self) -> None:
        """Fold meaningful frames that arrived since the last decision
        into the interval EWMA (incremental: each event once)."""
        log = self.meter.meaningful_frames
        total = len(log)
        if total == self._consumed:
            return
        times = log.times
        for index in range(self._consumed, total):
            time = float(times[index])
            if self._last_time is not None:
                interval = time - self._last_time
                if interval > 0:
                    if self._ewma_interval is None:
                        self._ewma_interval = interval
                    else:
                        self._ewma_interval = (
                            self.alpha * interval +
                            (1.0 - self.alpha) * self._ewma_interval)
            self._last_time = time
        self._consumed = total

    def forecast_rate(self, now: float) -> float:
        """Predicted meaningful frames per second for the next tick."""
        self._ingest_history()
        if self._ewma_interval is None or self._last_time is None:
            return 0.0
        predicted = 1.0 / self._ewma_interval
        gap = now - self._last_time
        if gap > self.idle_factor * self._ewma_interval and gap > 0:
            # The stream went quiet: the history says "busy" but the
            # present disagrees — decay toward the observed silence.
            return min(predicted, 1.0 / gap)
        return predicted

    def select_rate(self, now: float) -> float:
        return self.table.lookup(self.forecast_rate(now))
