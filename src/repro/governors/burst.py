"""BurstLink-style burst-mode refresh policy (zoo extension).

BurstLink's idea: instead of pacing the display pipeline at the
content rate continuously, render *ahead* into the double buffer in a
short burst at the panel's maximum rate, then drop the panel to its
floor and serve the buffered frames until the buffer drains.  Energy
is saved in the long floor intervals; the burst amortizes wake-up
costs.

The simulation presents frames through a live compositor rather than
a prefetch queue, so the policy emulates the burst schedule as a
deterministic duty cycle: within each ``period_s`` window the panel
runs at the ceiling for the fraction of the period the measured
content rate actually needs (``content / ceiling``), and at the floor
for the rest.  A fully-busy screen degenerates to the fixed maximum;
a static screen sits at the floor — the same envelope real bursting
produces, with the burst phase pinned to the simulation clock so
every engine and worker count replays it identically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.content_rate import ContentRateMeter
from ..core.governor import GovernorPolicy
from ..errors import ConfigurationError
from ..units import ensure_positive


class BurstRefreshGovernor(GovernorPolicy):
    """Duty-cycled max-rate bursts with floor dwells between them.

    Parameters
    ----------
    refresh_rates_hz:
        The panel's discrete levels; the policy only ever uses the
        floor (minimum) and ceiling (maximum).
    meter:
        Content-rate meter sizing each period's burst fraction.
    window_s:
        Sliding window of the meter reads.
    period_s:
        Length of one burst cycle (burst + floor dwell).
    """

    name = "burst-mode"

    def __init__(self, refresh_rates_hz: Sequence[float],
                 meter: ContentRateMeter,
                 window_s: Optional[float] = None,
                 period_s: float = 1.0) -> None:
        if not refresh_rates_hz:
            raise ConfigurationError(
                "burst governor needs at least one refresh rate")
        rates = [float(r) for r in refresh_rates_hz]
        self.floor_hz = min(rates)
        self.ceiling_hz = max(rates)
        self.meter = meter
        self.window_s = None if window_s is None else ensure_positive(
            window_s, "window_s")
        self.period_s = ensure_positive(period_s, "period_s")

    def burst_fraction(self, now: float) -> float:
        """Fraction of the current period spent bursting, in [0, 1]."""
        content = self.meter.content_rate(now, self.window_s)
        if self.ceiling_hz <= 0:
            return 1.0
        return min(1.0, content / self.ceiling_hz)

    def select_rate(self, now: float) -> float:
        duty = self.burst_fraction(now)
        if duty >= 1.0:
            return self.ceiling_hz
        phase = (now % self.period_s) / self.period_s
        return self.ceiling_hz if phase < duty else self.floor_hz

    def on_touch(self, time: float) -> Optional[float]:
        # Interaction opens a burst immediately (BurstLink bursts on
        # demand): respond at the ceiling without waiting for the next
        # decision tick.
        return self.ceiling_hz
