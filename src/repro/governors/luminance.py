"""SmartNight-style content-luminance governor (zoo extension).

SmartNight's observation: on an emissive (OLED) panel, both the cost
and the *perceptibility* of refreshing depend on what is displayed.
Dark content emits less light, and at low luminance the human flicker
threshold drops — dark frames tolerate lower refresh rates at equal
perceived quality.  This policy couples the paper's section-based
control to the per-pixel OLED emission model in
:mod:`repro.power.oled`: each decision prices the framebuffer's
current emission, normalizes it to a relative luminance in ``[0, 1]``
(0 = full black, 1 = full white), and steps the section-selected rate
down one or two panel levels when the screen is dark.

Emission and drive power are reported *jointly* by running sessions
with ``track_oled=True``: the session's
:class:`~repro.power.oled.OledEmissionTracker` adds the
content-dependent emission component to the same power report the
refresh-dependent drive components feed, which is how the tournament
shows dark content costing less than light content end to end.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.governor import GovernorPolicy
from ..errors import ConfigurationError
from ..graphics.framebuffer import Framebuffer
from ..power.oled import OledModel


class ContentLuminanceGovernor(GovernorPolicy):
    """Section control with luminance-conditional rate down-stepping.

    Parameters
    ----------
    inner:
        The content-rate policy supplying the base rate (the paper's
        section control in the registered configuration).
    framebuffer:
        The session framebuffer whose pixels are priced each decision.
    refresh_rates_hz:
        The panel's discrete levels (down-steps move along this list).
    model:
        OLED emission model used for pricing; defaults to the stock
        :class:`~repro.power.oled.OledModel` (the same defaults the
        session's emission tracker uses).
    dark_threshold:
        Relative luminance below which one level of down-stepping is
        tolerated (dim content).
    deep_dark_threshold:
        Relative luminance below which two levels are tolerated
        (near-black content).
    """

    name = "content-luminance"

    def __init__(self, inner: GovernorPolicy, framebuffer: Framebuffer,
                 refresh_rates_hz: Sequence[float],
                 model: Optional[OledModel] = None,
                 dark_threshold: float = 0.25,
                 deep_dark_threshold: float = 0.08) -> None:
        if not refresh_rates_hz:
            raise ConfigurationError(
                "luminance governor needs at least one refresh rate")
        if not 0.0 <= deep_dark_threshold <= dark_threshold <= 1.0:
            raise ConfigurationError(
                f"luminance thresholds need 0 <= deep_dark "
                f"({deep_dark_threshold}) <= dark ({dark_threshold}) "
                f"<= 1")
        self.inner = inner
        self.model = model or OledModel()
        self.dark_threshold = dark_threshold
        self.deep_dark_threshold = deep_dark_threshold
        self._framebuffer = framebuffer
        self._rates: Tuple[float, ...] = tuple(
            sorted(float(r) for r in refresh_rates_hz))
        self._last_luminance = 1.0

    # ------------------------------------------------------------------
    # Luminance probe
    # ------------------------------------------------------------------
    def relative_luminance(self) -> float:
        """Displayed emission as a fraction of full white, in [0, 1]."""
        power = self.model.frame_power_mw(self._framebuffer.pixels)
        span = self.model.full_white_mw - self.model.full_black_mw
        if span <= 0:
            return 1.0
        fraction = (power - self.model.full_black_mw) / span
        return min(1.0, max(0.0, fraction))

    @property
    def last_luminance(self) -> float:
        """Relative luminance seen by the most recent decision."""
        return self._last_luminance

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def _down_steps(self, luminance: float) -> int:
        if luminance < self.deep_dark_threshold:
            return 2
        if luminance < self.dark_threshold:
            return 1
        return 0

    def select_rate(self, now: float) -> float:
        rate = self.inner.select_rate(now)
        luminance = self.relative_luminance()
        self._last_luminance = luminance
        steps = self._down_steps(luminance)
        if steps == 0:
            return rate
        # Walk down the panel's level list from the section-selected
        # rate, clamped at the floor.
        index = 0
        for position, level in enumerate(self._rates):
            if level >= rate:
                index = position
                break
        else:
            index = len(self._rates) - 1
        return self._rates[max(0, index - steps)]

    def on_touch(self, time: float) -> Optional[float]:
        # Interaction outranks luminance: chain to the inner policy so
        # touch boosting (when composed) still fires at full rate.
        return self.inner.on_touch(time)
