"""The governor zoo: refresh-rate policies from the related work.

The paper's section-based controller is one point in a policy space
its related work maps out.  This package implements four neighbouring
points (see ``docs/governors.md`` for lineage and behaviour):

* :class:`~repro.governors.luminance.ContentLuminanceGovernor` —
  SmartNight-style content-luminance coupling: dark frames tolerate
  lower refresh rates at equal perceived quality, priced through the
  per-pixel OLED emission model in :mod:`repro.power.oled`.
* :class:`~repro.governors.scene.SceneRateGovernor` — EVSO-style
  per-scene rate selection: playback segments into scenes by
  inter-frame similarity from the grid meter, one rate per scene.
* :class:`~repro.governors.burst.BurstRefreshGovernor` —
  BurstLink-style bursting: render ahead into the double buffer, then
  drop the panel to its floor between bursts (emulated as a
  deterministic duty cycle).
* :class:`~repro.governors.predictive.PredictiveRateGovernor` —
  Dynamic-Sampling-Rate-style forecasting: the grid comparator's
  meaningful-frame history predicts the next-frame change rate
  instead of reacting to the current one.

Policy classes only: selector strings register as builtins in
:mod:`repro.pipeline.governors` (``luminance`` / ``scene`` /
``burst`` / ``predictive``), which keeps one source of truth for
names and ships factories to batch workers by module import, exactly
like the original seven.  None of the four is vector-eligible — they
are stateful or read live pixels — so the
:func:`~repro.pipeline.eligibility.probe_vector_eligibility` probe
routes them to the scalar engine transparently under
``engine="auto"``/``"vector"``.
"""

from .burst import BurstRefreshGovernor
from .luminance import ContentLuminanceGovernor
from .predictive import PredictiveRateGovernor
from .scene import SceneRateGovernor

__all__ = [
    "BurstRefreshGovernor",
    "ContentLuminanceGovernor",
    "PredictiveRateGovernor",
    "SceneRateGovernor",
]
