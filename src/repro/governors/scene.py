"""EVSO-style per-scene rate governor (zoo extension).

EVSO's observation: video playback is piecewise-stationary.  Within a
scene the inter-frame similarity — and therefore the meaningful frame
rate the grid meter measures — barely moves, so re-deciding the
refresh rate every control period only adds switch churn.  This
policy segments playback into scenes using the meter's windowed
content rate as its similarity signal: a scene opens with one section
-table lookup, that rate is *latched*, and it holds until the
measured rate drifts far enough from the scene's opening estimate to
declare a boundary.

Compared to the paper's section control this trades reaction latency
inside a scene for far fewer rate switches; the tournament shows the
trade explicitly in the ``rate_switches`` column.
"""

from __future__ import annotations

from typing import Optional

from ..core.content_rate import ContentRateMeter
from ..core.governor import GovernorPolicy
from ..core.section_table import SectionTable
from ..errors import ConfigurationError
from ..units import ensure_positive


class SceneRateGovernor(GovernorPolicy):
    """One refresh rate per detected scene.

    Parameters
    ----------
    table:
        Section table mapping a content-rate estimate to a panel rate
        (scene openings reuse Equation 1, keeping the headroom
        property inside every scene).
    meter:
        The grid-backed content-rate meter supplying the inter-frame
        similarity signal.
    window_s:
        Sliding window of the meter reads.
    change_fraction:
        Scene-boundary sensitivity: a new scene opens when the
        measured rate differs from the scene's opening estimate by
        more than this fraction of it (with a 1 fps floor so silent
        scenes still end when content starts).
    """

    name = "scene-rate"

    def __init__(self, table: SectionTable, meter: ContentRateMeter,
                 window_s: Optional[float] = None,
                 change_fraction: float = 0.5) -> None:
        if change_fraction <= 0:
            raise ConfigurationError(
                f"change_fraction must be > 0, got {change_fraction}")
        self.table = table
        self.meter = meter
        self.window_s = None if window_s is None else ensure_positive(
            window_s, "window_s")
        self.change_fraction = change_fraction
        self._scene_rate: Optional[float] = None
        self._scene_content = 0.0
        self._scenes = 0

    @property
    def scenes(self) -> int:
        """Scenes opened so far (>= 1 once the first decision ran)."""
        return self._scenes

    def _open_scene(self, content: float) -> float:
        self._scenes += 1
        self._scene_content = content
        self._scene_rate = self.table.lookup(content)
        return self._scene_rate

    def select_rate(self, now: float) -> float:
        content = self.meter.content_rate(now, self.window_s)
        if self._scene_rate is None:
            return self._open_scene(content)
        tolerance = self.change_fraction * max(self._scene_content, 1.0)
        if abs(content - self._scene_content) > tolerance:
            return self._open_scene(content)
        return self._scene_rate
