"""repro — Content-centric Display Energy Management for Mobile Devices.

A full offline reproduction of Kim, Jung & Cha (DAC 2014): the
**content rate** metric, its low-cost measurement via double buffering
and grid-based framebuffer comparison, and the **section-based
refresh-rate control** with **touch boosting** that cuts display-path
power without visible quality loss — all running on a simulated
Android-style display pipeline (surfaces, compositor, V-Sync, panel
with discrete refresh levels, calibrated power model, Monkey-style
input, and a 30-app synthetic workload catalog).

Quickstart
----------
>>> from repro import SessionConfig, run_session
>>> baseline = run_session(SessionConfig(app="Jelly Splash",
...                                      governor="fixed",
...                                      duration_s=30.0, seed=1))
>>> governed = run_session(SessionConfig(app="Jelly Splash",
...                                      governor="section+boost",
...                                      duration_s=30.0, seed=1))
>>> saved = (baseline.power_report().mean_power_mw
...          - governed.power_report().mean_power_mw)
>>> saved > 0
True
"""

from .apps import (
    AppCategory,
    AppProfile,
    Application,
    GAME_APP_NAMES,
    GENERAL_APP_NAMES,
    LiveWallpaper,
    WallpaperProfile,
    all_app_names,
    app_profile,
    nexus_revamped,
)
from .baselines import (
    E3ScrollGovernor,
    FixedRefreshGovernor,
    NaiveMatchGovernor,
    OracleGovernor,
)
from .core import (
    ContentCentricManager,
    ContentRateMeter,
    DoubleBuffer,
    GridComparator,
    GridSpec,
    ManagerConfig,
    MeterConfig,
    QualityReport,
    SampledDoubleBuffer,
    Section,
    SectionBasedGovernor,
    SectionTable,
    TouchBoostGovernor,
    compute_quality,
)
from .display import (
    DisplayPanel,
    FIXED_60_PANEL,
    GALAXY_S3_PANEL,
    LTPO_120_PANEL,
    PanelSpec,
    THREE_LEVEL_PANEL,
    panel_preset,
    panel_preset_names,
)
from .core.watchdog import GovernorWatchdog, WatchdogConfig
from .errors import (
    ConfigurationError,
    DisplayError,
    FaultInjectionError,
    GraphicsError,
    MeteringError,
    ReproError,
    SimulationError,
    SpecError,
    TelemetryError,
    WorkerCrashError,
    WorkloadError,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultWindow,
)
from .graphics import Framebuffer, Surface, SurfaceManager
from .inputs import (
    MonkeyConfig,
    MonkeyScriptGenerator,
    TouchEvent,
    TouchKind,
    TouchScript,
    TouchSource,
)
from .pipeline import (
    APPS,
    GOVERNORS,
    PANELS,
    GovernorContext,
    Registry,
    SessionBuilder,
    SessionSpec,
    build_governor,
    fixed_baseline_config,
    governor_names,
    run_fixed_baseline,
    run_spec,
    spec_roundtrip,
)
from .power import (
    MonsoonMeter,
    PowerCalibration,
    PowerModel,
    PowerReport,
    galaxy_s3_calibration,
)
from .sim import Simulator
from .sim.batch import (
    batch_failure_summary,
    batch_metrics,
    batch_telemetry_summary,
    format_batch_failures,
    is_failure_record,
    make_failure_record,
    run_batch,
    run_session_summary,
)
from .sim.scenario import (
    ScenarioConfig,
    ScenarioResult,
    ScenarioSegment,
    run_scenario,
)
from .sim.session import (
    GOVERNOR_CHOICES,
    SessionConfig,
    SessionResult,
    run_session,
)
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    TelemetryConfig,
    TelemetryEvent,
    TelemetryHub,
    TelemetrySink,
    build_hub,
    format_stats,
    parse_jsonl,
    summarize_events,
    summarize_jsonl,
    timed,
)

__version__ = "1.0.0"

__all__ = [
    "AppCategory",
    "AppProfile",
    "Application",
    "ConfigurationError",
    "ContentCentricManager",
    "ContentRateMeter",
    "Counter",
    "DisplayError",
    "DisplayPanel",
    "DoubleBuffer",
    "E3ScrollGovernor",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultWindow",
    "FIXED_60_PANEL",
    "FixedRefreshGovernor",
    "Framebuffer",
    "GALAXY_S3_PANEL",
    "GAME_APP_NAMES",
    "GENERAL_APP_NAMES",
    "GOVERNOR_CHOICES",
    "Gauge",
    "GovernorWatchdog",
    "GraphicsError",
    "GridComparator",
    "GridSpec",
    "Histogram",
    "JsonlSink",
    "LTPO_120_PANEL",
    "LiveWallpaper",
    "ManagerConfig",
    "MeterConfig",
    "MeteringError",
    "MetricsRegistry",
    "MonkeyConfig",
    "MonkeyScriptGenerator",
    "MonsoonMeter",
    "NaiveMatchGovernor",
    "NullSink",
    "OracleGovernor",
    "PanelSpec",
    "PowerCalibration",
    "PowerModel",
    "PowerReport",
    "APPS",
    "GOVERNORS",
    "GovernorContext",
    "PANELS",
    "QualityReport",
    "Registry",
    "ReproError",
    "RingBufferSink",
    "SampledDoubleBuffer",
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioSegment",
    "Section",
    "SectionBasedGovernor",
    "SectionTable",
    "SessionBuilder",
    "SessionConfig",
    "SessionResult",
    "SessionSpec",
    "SimulationError",
    "SpecError",
    "Simulator",
    "Surface",
    "SurfaceManager",
    "THREE_LEVEL_PANEL",
    "TelemetryConfig",
    "TelemetryError",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetrySink",
    "TouchBoostGovernor",
    "TouchEvent",
    "TouchKind",
    "TouchScript",
    "TouchSource",
    "WallpaperProfile",
    "WatchdogConfig",
    "WorkerCrashError",
    "WorkloadError",
    "all_app_names",
    "app_profile",
    "batch_failure_summary",
    "batch_metrics",
    "batch_telemetry_summary",
    "build_governor",
    "build_hub",
    "compute_quality",
    "fixed_baseline_config",
    "format_batch_failures",
    "format_stats",
    "galaxy_s3_calibration",
    "governor_names",
    "is_failure_record",
    "make_failure_record",
    "nexus_revamped",
    "panel_preset",
    "panel_preset_names",
    "parse_jsonl",
    "run_batch",
    "run_fixed_baseline",
    "run_scenario",
    "run_session",
    "run_session_summary",
    "run_spec",
    "spec_roundtrip",
    "summarize_events",
    "summarize_jsonl",
    "timed",
    "__version__",
]
