"""The stock configuration: a fixed refresh rate.

Android on the paper's device pins the panel at 60 Hz regardless of
content.  Every power-saving figure in the evaluation is the difference
between a governed run and this baseline under the same workload
script.
"""

from __future__ import annotations

from ..core.governor import GovernorPolicy
from ..units import ensure_positive


class FixedRefreshGovernor(GovernorPolicy):
    """Always selects the same refresh rate."""

    def __init__(self, rate_hz: float = 60.0) -> None:
        self.rate_hz = ensure_positive(rate_hz, "rate_hz")
        self.name = f"fixed-{rate_hz:g}hz"

    def select_rate(self, now: float) -> float:
        del now
        return self.rate_hz
