"""Oracle refresh-rate control: perfect content-rate knowledge.

The oracle bypasses both limitations of the real system — metering
error and V-Sync clipping of the measurable content rate — by reading
the application model's *true* instantaneous content rate.  It is an
upper bound: the gap between the oracle and the section-based governor
is the price of having to measure.
"""

from __future__ import annotations

from ..apps.base import Application
from ..core.governor import GovernorPolicy
from ..core.section_table import SectionTable


class OracleGovernor(GovernorPolicy):
    """Section-table control driven by ground-truth content rate."""

    name = "oracle"

    def __init__(self, table: SectionTable, application: Application) -> None:
        self.table = table
        self.application = application

    def select_rate(self, now: float) -> float:
        true_rate = self.application.current_content_fps(now)
        # The table is defined over measurable content rates; the true
        # rate can exceed the panel maximum, which the top section
        # (open-ended) absorbs.
        return self.table.lookup(true_rate)
