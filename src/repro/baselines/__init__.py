"""Baseline refresh-rate policies the paper compares against or implies.

* :class:`FixedRefreshGovernor` — the stock Android configuration
  (fixed 60 Hz); every "power saved" number in the paper is relative
  to this.
* :class:`~repro.core.governor.NaiveMatchGovernor` (re-exported) — the
  paper's failed first attempt: match the refresh rate to the measured
  content rate and deadlock under V-Sync clipping.
* :class:`OracleGovernor` — cheats by reading the application's true
  content rate (no meter, no V-Sync clipping); an upper bound on what
  any measurement-driven controller can achieve.
* :class:`E3ScrollGovernor` — an interaction-driven controller in the
  spirit of Han et al.'s E3 (the paper's reference [16]): rate is
  driven by touch/scroll activity only, blind to content.
"""

from ..core.governor import NaiveMatchGovernor
from .e3 import E3ScrollGovernor
from .fixed import FixedRefreshGovernor
from .oracle import OracleGovernor

__all__ = [
    "E3ScrollGovernor",
    "FixedRefreshGovernor",
    "NaiveMatchGovernor",
    "OracleGovernor",
]
