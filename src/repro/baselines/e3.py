"""E3-style interaction-driven refresh control (Han et al., SenSys'13).

The paper's reference [16] adapts the frame rate to *scrolling
operations*: high rate while the user scrolls, low rate otherwise.  It
is content-blind — a video or a game animation with no touch input gets
the low rate (and stutters), while a static screen being tapped gets
the high rate (and wastes power).  Reproducing it makes the paper's
content-centric argument concrete in the benchmarks.
"""

from __future__ import annotations

from ..core.governor import GovernorPolicy
from ..errors import ConfigurationError
from ..inputs.touch import TouchEvent, TouchKind
from ..units import ensure_positive


class E3ScrollGovernor(GovernorPolicy):
    """High rate during interaction, low rate otherwise.

    Parameters
    ----------
    low_rate_hz, high_rate_hz:
        The two operating points (both must be panel levels).
    tail_s:
        How long after the last interaction the high rate is held
        (covers fling animation after the finger lifts).
    """

    name = "e3-scroll"

    def __init__(self, low_rate_hz: float, high_rate_hz: float,
                 tail_s: float = 1.0) -> None:
        self.low_rate_hz = ensure_positive(low_rate_hz, "low_rate_hz")
        self.high_rate_hz = ensure_positive(high_rate_hz, "high_rate_hz")
        if high_rate_hz <= low_rate_hz:
            raise ConfigurationError(
                f"high_rate_hz ({high_rate_hz}) must exceed low_rate_hz "
                f"({low_rate_hz})")
        self.tail_s = ensure_positive(tail_s, "tail_s")
        self._high_until = float("-inf")

    def select_rate(self, now: float) -> float:
        return self.high_rate_hz if now < self._high_until \
            else self.low_rate_hz

    def on_touch(self, time: float) -> float:
        """Any interaction raises the rate immediately."""
        self._high_until = time + self.tail_s
        return self.high_rate_hz

    def on_touch_event(self, event: TouchEvent) -> None:
        """Richer hook for scroll gestures: hold high for the drag."""
        hold = self.tail_s
        if event.kind is TouchKind.SCROLL:
            hold += event.duration_s
        self._high_until = max(self._high_until, event.time + hold)
