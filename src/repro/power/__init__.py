"""Power substrate: the simulated Monsoon power meter.

The paper measures whole-device power with a Monsoon meter at 50 %
brightness.  Offline we model device power as a sum of components, each
tied to an observable the simulation produces exactly — refresh rate,
frame-update count, application render count — with coefficients
calibrated so the *differences* between a fixed-60 Hz run and a
governed run land on the paper's reported scale (see
:mod:`repro.power.calibration` for the derivation).
"""

from .battery import (
    BatterySpec,
    GALAXY_S3_BATTERY,
    minutes_gained,
    screen_on_hours,
)
from .calibration import (
    PowerCalibration,
    galaxy_s3_calibration,
    lcd_phone_calibration,
)
from .meter import MonsoonMeter
from .oled import OledEmissionTracker, OledModel
from .model import PowerBreakdown, PowerModel, PowerReport

__all__ = [
    "BatterySpec",
    "GALAXY_S3_BATTERY",
    "MonsoonMeter",
    "OledEmissionTracker",
    "OledModel",
    "PowerBreakdown",
    "PowerCalibration",
    "PowerModel",
    "PowerReport",
    "galaxy_s3_calibration",
    "lcd_phone_calibration",
    "minutes_gained",
    "screen_on_hours",
]
