"""Monsoon power-meter emulation.

The paper samples whole-device current with a Monsoon Power Monitor.
Real meter readings carry measurement noise and are reported as mean ±
standard deviation across repeated runs; :class:`MonsoonMeter` adds a
configurable, seeded noise floor on top of the exact model power so the
reproduction's tables can carry honest ±figures of the same character.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..units import ensure_non_negative


def integrate_segments(values: Union[Sequence[float], np.ndarray],
                       durations: Union[Sequence[float], np.ndarray]
                       ) -> float:
    """Integrate a piecewise-constant signal from per-segment values
    and durations.

    The single implementation of the energy integral, shared by
    :meth:`repro.sim.tracing.StepSeries.integrate` (scalar sessions)
    and the vector engine's batched power integration.  Per-segment
    products are computed vectorised, but the accumulation stays
    **sequential in segment order**: IEEE-754 addition is not
    associative, and byte-identical summaries require the exact floats
    the original scalar loop produced (numpy's pairwise ``.sum()``
    rounds differently).
    """
    value_arr = np.asarray(values, dtype=np.float64)
    duration_arr = np.asarray(durations, dtype=np.float64)
    if value_arr.shape != duration_arr.shape:
        raise ValueError(
            f"values {value_arr.shape} and durations "
            f"{duration_arr.shape} must align")
    products = value_arr * duration_arr
    total = 0.0
    for product in products.tolist():
        total += product
    return total


class MonsoonMeter:
    """Adds seeded measurement noise to an exact power trace.

    Parameters
    ----------
    noise_mw:
        Standard deviation of the additive Gaussian sampling noise, in
        milliwatts.  Monsoon-class meters resolve well under 10 mW at
        phone currents; the default is conservative.
    seed:
        Seed for the noise stream (repeatable "measurements").
    """

    def __init__(self, noise_mw: float = 5.0, seed: int = 0) -> None:
        self.noise_mw = ensure_non_negative(noise_mw, "noise_mw")
        self._rng = np.random.default_rng(seed)

    def measure_trace(self, times: np.ndarray,
                      power_mw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the trace with sampling noise applied.

        ``times`` passes through untouched; power gains i.i.d. Gaussian
        noise, floored at zero (a current meter never reads negative
        power for a discharging phone).
        """
        if times.shape != power_mw.shape:
            raise ValueError(
                f"times {times.shape} and power {power_mw.shape} must "
                f"align")
        noisy = power_mw + self._rng.normal(0.0, self.noise_mw,
                                            size=power_mw.shape)
        return times, np.maximum(noisy, 0.0)

    def measure_mean(self, power_mw: float, samples: int = 100) -> float:
        """One session-mean 'reading': the exact mean plus the residual
        noise of averaging ``samples`` meter samples."""
        if samples <= 0:
            raise ValueError("samples must be > 0")
        residual = self.noise_mw / np.sqrt(samples)
        return max(0.0, power_mw + float(self._rng.normal(0.0, residual)))
