"""OLED emission power: content-dependent panel draw (extension).

The paper's evaluation device is a Galaxy S3 — an AMOLED panel, whose
emission power depends on what is displayed (each sub-pixel emits its
own light; black is nearly free).  The paper factors this out by
reporting *differences* under the same content, but the related work it
cites (Chameleon, FOCUS, OLED DVS) lives entirely in this
content-dependence.  Since the simulation has real pixels, modelling
emission is natural and lets the benchmarks show that refresh-rate
control and content-colour techniques are *orthogonal* savings.

Model
-----
Per sub-pixel, emission power follows the standard display model: the
stored value is gamma-decoded to luminance, and each channel has its
own efficiency (blue OLED emitters are the least efficient):

    P_frame = base + area_scale * mean over pixels of
              sum_c k_c * (value_c / 255) ** gamma

Coefficients default to magnitudes consistent with published AMOLED
measurements for a 4.8-inch 2012-era panel: a full-white screen around
1 W of emission, full black near zero, with blue costing roughly twice
red.  As with the rest of the power substrate, absolute numbers are
calibration; shapes (white >> black, blue-heavy > red-heavy) are exact
properties of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..sim.tracing import StepSeries
from ..units import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class OledModel:
    """Content-dependent emission power model.

    Parameters
    ----------
    full_channel_mw:
        Emission power of the whole panel showing a full-intensity
        (255) frame of each pure channel, ``(red, green, blue)`` in mW.
    gamma:
        Display gamma used to decode stored values to luminance.
    base_mw:
        Emission floor (driver overhead) even on an all-black frame.
    """

    full_channel_mw: Tuple[float, float, float] = (280.0, 350.0, 550.0)
    gamma: float = 2.2
    base_mw: float = 15.0

    def __post_init__(self) -> None:
        if len(self.full_channel_mw) != 3:
            raise ConfigurationError(
                "full_channel_mw needs (red, green, blue)")
        for value in self.full_channel_mw:
            ensure_non_negative(value, "full_channel_mw entry")
        ensure_positive(self.gamma, "gamma")
        ensure_non_negative(self.base_mw, "base_mw")

    # ------------------------------------------------------------------
    # Frame pricing
    # ------------------------------------------------------------------
    def frame_power_mw(self, pixels: np.ndarray) -> float:
        """Emission power while ``pixels`` is on screen.

        ``pixels`` is any ``(h, w, 3)`` uint8 frame; resolution does
        not matter because the model works in mean per-pixel luminance
        (the panel's area is folded into the channel coefficients).
        """
        if pixels.ndim != 3 or pixels.shape[-1] != 3:
            raise ConfigurationError(
                f"expected an (h, w, 3) frame, got shape {pixels.shape}")
        luminance = (pixels.astype(np.float64) / 255.0) ** self.gamma
        channel_mean = luminance.mean(axis=(0, 1))
        coeffs = np.asarray(self.full_channel_mw, dtype=np.float64)
        return float(self.base_mw + (coeffs * channel_mean).sum())

    @property
    def full_white_mw(self) -> float:
        """Emission power of a full-white frame."""
        return self.base_mw + float(sum(self.full_channel_mw))

    @property
    def full_black_mw(self) -> float:
        """Emission power of a full-black frame (the floor)."""
        return self.base_mw


class OledEmissionTracker:
    """Records a session's emission power as a step series.

    Attach to a framebuffer like the content-rate meter: each frame
    update re-prices the emission, which then holds until the next
    update (emission depends on what is *displayed*, not on the
    refresh rate — the displayed image persists between updates).
    """

    def __init__(self, framebuffer, model: OledModel = None,
                 start_time: float = 0.0) -> None:
        self.model = model or OledModel()
        self._framebuffer = framebuffer
        initial = self.model.frame_power_mw(framebuffer.pixels)
        self.history = StepSeries("oled_emission_mw", initial, start_time)
        self._evaluations = 0
        framebuffer.add_update_listener(self._on_frame_update)

    @property
    def evaluations(self) -> int:
        """Frame updates priced so far."""
        return self._evaluations

    def _on_frame_update(self, time: float, framebuffer) -> None:
        self._evaluations += 1
        self.history.set(time,
                         self.model.frame_power_mw(framebuffer.pixels))

    def mean_emission_mw(self, start: float, end: float) -> float:
        """Time-weighted mean emission power over a window."""
        return self.history.mean(start, end)

    def energy_mj(self, start: float, end: float) -> float:
        """Emission energy over a window, in millijoules."""
        return self.history.integrate(start, end)

    def detach(self) -> None:
        """Stop observing the framebuffer."""
        self._framebuffer.remove_update_listener(self._on_frame_update)
