"""Battery-life projection: turning milliwatts into minutes.

The paper reports savings in milliwatts; what a user feels is screen-on
time.  This module converts mean device power into battery life for a
given cell (the Galaxy S3 LTE ships a 2100 mAh / 3.8 V pack) and
expresses a saving as minutes of screen-on time gained — the headline a
product team would quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import ensure_positive


@dataclass(frozen=True)
class BatterySpec:
    """A battery pack.

    Parameters
    ----------
    capacity_mah:
        Rated capacity in milliamp-hours.
    nominal_voltage_v:
        Nominal cell voltage (energy = capacity x voltage).
    usable_fraction:
        Fraction of rated energy actually deliverable before shutdown
        (real devices cut off above 0 % and lose some to converter
        inefficiency).
    """

    capacity_mah: float = 2100.0
    nominal_voltage_v: float = 3.8
    usable_fraction: float = 0.92

    def __post_init__(self) -> None:
        ensure_positive(self.capacity_mah, "capacity_mah")
        ensure_positive(self.nominal_voltage_v, "nominal_voltage_v")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError(
                f"usable_fraction must be in (0, 1], got "
                f"{self.usable_fraction}")

    @property
    def usable_energy_mj(self) -> float:
        """Deliverable energy in millijoules.

        mAh x V = mWh; x 3600 = mJ (1 mWh = 3.6 J = 3600 mJ).
        """
        return (self.capacity_mah * self.nominal_voltage_v * 3600.0 *
                self.usable_fraction)


#: The paper's device pack.
GALAXY_S3_BATTERY = BatterySpec(capacity_mah=2100.0,
                                nominal_voltage_v=3.8,
                                usable_fraction=0.92)


def screen_on_hours(mean_power_mw: float,
                    battery: BatterySpec = GALAXY_S3_BATTERY) -> float:
    """Hours of screen-on time at a constant mean power draw."""
    ensure_positive(mean_power_mw, "mean_power_mw")
    return battery.usable_energy_mj / mean_power_mw / 3600.0


def minutes_gained(baseline_power_mw: float, governed_power_mw: float,
                   battery: BatterySpec = GALAXY_S3_BATTERY) -> float:
    """Screen-on minutes gained by a power saving.

    Negative if the "saving" is actually a regression.
    """
    ensure_positive(baseline_power_mw, "baseline_power_mw")
    ensure_positive(governed_power_mw, "governed_power_mw")
    gained_h = (screen_on_hours(governed_power_mw, battery) -
                screen_on_hours(baseline_power_mw, battery))
    return 60.0 * gained_h
