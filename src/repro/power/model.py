"""Component power model evaluated over session traces.

The model is deliberately *post hoc*: a session records exact traces of
the refresh rate (a step series), frame updates, and application render
passes, and the model turns those into energy.  Keeping power out of
the simulation loop means one session can be priced under several
calibrations (ablations) without re-running it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..apps.profile import AppProfile
from ..errors import ConfigurationError
from ..sim.tracing import EventLog, StepSeries
from ..units import ensure_positive
from .calibration import PowerCalibration


@dataclass(frozen=True)
class PowerBreakdown:
    """Energy per component over a window, in millijoules.

    ``emission_mj`` is the optional content-dependent OLED emission
    component (zero unless the session tracked it; see
    :mod:`repro.power.oled`).
    """

    base_mj: float
    panel_mj: float
    compose_mj: float
    render_mj: float
    meter_mj: float
    emission_mj: float = 0.0

    @property
    def total_mj(self) -> float:
        """Total energy across all components."""
        return (self.base_mj + self.panel_mj + self.compose_mj +
                self.render_mj + self.meter_mj + self.emission_mj)


@dataclass(frozen=True)
class PowerReport:
    """Power summary for one session."""

    duration_s: float
    breakdown: PowerBreakdown

    @property
    def energy_mj(self) -> float:
        """Total session energy in millijoules."""
        return self.breakdown.total_mj

    @property
    def mean_power_mw(self) -> float:
        """Session-average power in milliwatts."""
        return self.energy_mj / self.duration_s

    def component_power_mw(self) -> "dict[str, float]":
        """Average power per component, in milliwatts."""
        d = self.duration_s
        b = self.breakdown
        return {
            "base": b.base_mj / d,
            "panel": b.panel_mj / d,
            "compose": b.compose_mj / d,
            "render": b.render_mj / d,
            "meter": b.meter_mj / d,
            "emission": b.emission_mj / d,
        }


class PowerModel:
    """Prices session traces under a calibration.

    Parameters
    ----------
    calibration:
        Component coefficients (defaults to the Galaxy S3 values).
    """

    def __init__(self,
                 calibration: Optional[PowerCalibration] = None) -> None:
        self.calibration = calibration or PowerCalibration()

    # ------------------------------------------------------------------
    # Whole-session energy
    # ------------------------------------------------------------------
    def evaluate(self, profile: AppProfile, rate_history: StepSeries,
                 compositions: EventLog, renders: EventLog,
                 duration_s: float,
                 metering_active: bool = False,
                 emission_history: Optional[StepSeries] = None
                 ) -> PowerReport:
        """Energy of one session.

        Parameters
        ----------
        profile:
            The running application (supplies its CPU and render cost).
        rate_history:
            Panel refresh rate over time.
        compositions:
            Frame-update timestamps (Surface Manager work).
        renders:
            Application render-pass timestamps.
        duration_s:
            Session length.
        metering_active:
            True for governed runs: charges the proposed system's own
            per-frame metering overhead.
        emission_history:
            Optional OLED emission power trace (content-dependent
            component; see :class:`~repro.power.oled.
            OledEmissionTracker`).
        """
        ensure_positive(duration_s, "duration_s")
        return self.evaluate_window(
            profile, rate_history, compositions, renders,
            0.0, duration_s, metering_active=metering_active,
            emission_history=emission_history)

    def evaluate_window(self, profile: AppProfile,
                        rate_history: StepSeries,
                        compositions: EventLog, renders: EventLog,
                        start_s: float, end_s: float,
                        metering_active: bool = False,
                        emission_history: Optional[StepSeries] = None
                        ) -> PowerReport:
        """Energy over the window ``[start_s, end_s]``.

        Used by multi-app scenarios, where each segment runs a
        different application (hence a different CPU/render profile)
        against the shared display traces.
        """
        if end_s <= start_s:
            raise ConfigurationError(
                f"window [{start_s}, {end_s}] must have positive span")
        cal = self.calibration
        span = end_s - start_s
        base_mw = cal.device_base_mw + profile.cpu_base_mw
        frames = compositions.count_in(start_s, end_s)
        breakdown = PowerBreakdown(
            base_mj=base_mw * span,
            panel_mj=cal.panel_mw_per_hz *
            rate_history.integrate(start_s, end_s),
            compose_mj=cal.compose_mj_per_frame * frames,
            render_mj=profile.render_cost_mj *
            renders.count_in(start_s, end_s),
            meter_mj=(cal.meter_overhead_mj_per_frame * frames
                      if metering_active else 0.0),
            emission_mj=(emission_history.integrate(start_s, end_s)
                         if emission_history is not None else 0.0),
        )
        return PowerReport(duration_s=span, breakdown=breakdown)

    # ------------------------------------------------------------------
    # Power trace (Figure 8 shape)
    # ------------------------------------------------------------------
    def power_trace(self, profile: AppProfile, rate_history: StepSeries,
                    compositions: EventLog, renders: EventLog,
                    duration_s: float, bin_width_s: float = 1.0,
                    metering_active: bool = False,
                    emission_history: Optional[StepSeries] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mean power per time bin: ``(bin_centers, power_mw)``."""
        ensure_positive(duration_s, "duration_s")
        ensure_positive(bin_width_s, "bin_width_s")
        if bin_width_s > duration_s:
            raise ConfigurationError(
                "bin_width_s must not exceed duration_s")
        cal = self.calibration
        base_mw = cal.device_base_mw + profile.cpu_base_mw
        edges = np.arange(0.0, duration_s + bin_width_s * 1e-9,
                          bin_width_s)
        if edges[-1] < duration_s:
            edges = np.append(edges, duration_s)
        centers = (edges[:-1] + edges[1:]) / 2.0
        power = np.empty(len(centers))
        per_frame_mj = cal.compose_mj_per_frame + (
            cal.meter_overhead_mj_per_frame if metering_active else 0.0)
        for i in range(len(centers)):
            t0, t1 = edges[i], edges[i + 1]
            width = t1 - t0
            panel_mw = cal.panel_mw_per_hz * rate_history.mean(t0, t1)
            compose_mw = per_frame_mj * compositions.count_in(t0, t1) / width
            render_mw = (profile.render_cost_mj *
                         renders.count_in(t0, t1) / width)
            emission_mw = (emission_history.mean(t0, t1)
                           if emission_history is not None else 0.0)
            power[i] = (base_mw + panel_mw + compose_mw + render_mw +
                        emission_mw)
        return centers, power
