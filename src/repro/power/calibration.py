"""Power-model calibration for the Galaxy S3 LTE.

The model charges four components:

``base``
    Everything independent of display activity: backlight at 50 %
    brightness, SoC idle, radios, plus the running app's CPU draw
    (``AppProfile.cpu_base_mw``).
``panel``
    Display scan-out and the memory traffic of reading the framebuffer
    each refresh — linear in the refresh rate.
``compose``
    Surface Manager work per frame update (composition + framebuffer
    write) — one fixed energy per composition.
``render``
    The application's drawing work per posted frame — per-app energy
    (games re-draw a full 3D scene; a feed app invalidates a view).

Calibration targets (reconstructed from the paper, which lost trailing
zeros in OCR; see DESIGN.md Section 3):

* Facebook, section-based control: ~150 mW saved.  Facebook idles with
  a near-zero frame rate, so its saving is almost purely the panel
  component across 60 Hz -> 20 Hz: ``k_panel * 40 approx 140 mW`` gives
  ``k_panel = 3.5 mW/Hz``.
* Jelly Splash, section-based control: ~500 mW saved.  Its 60 fps
  free-running loop drops to ~20 fps, so the saving is panel (140 mW)
  plus ~40 fps of composition and render work:
  ``40 * (E_compose + E_render) approx 360 mW-s/s`` with
  ``E_compose = 1.2 mJ`` and ``E_render = 4.5 mJ`` (game-class) lands
  within 10 %.
* Whole-device magnitudes: general apps total 600-850 mW, games
  1000-1400 mW at fixed 60 Hz (consistent with Carroll & Heiser's
  smartphone breakdowns and the paper's percentage savings:
  ~120 mW / ~18.6 % general, ~290 mW / ~27 % games).

Absolute numbers are calibration, not measurement.  Every experiment
reports the *shape* (ordering, ratios, crossovers) as the reproduction
target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import ensure_non_negative


@dataclass(frozen=True)
class PowerCalibration:
    """Coefficients of the component power model.

    Parameters
    ----------
    device_base_mw:
        Screen-on, app-independent device power (backlight at 50 %
        brightness + SoC idle + radios).
    panel_mw_per_hz:
        Panel scan + framebuffer read traffic per hertz of refresh.
    compose_mj_per_frame:
        Energy per Surface Manager composition (frame update).
    meter_overhead_mj_per_frame:
        Energy the proposed system itself spends per frame update on
        the grid comparison and double-buffer copy.  The paper measures
        this as "almost no computational overhead" at the 9K operating
        point; it is charged to governed runs only, keeping the
        comparison honest.
    """

    device_base_mw: float = 430.0
    panel_mw_per_hz: float = 3.5
    compose_mj_per_frame: float = 1.2
    meter_overhead_mj_per_frame: float = 0.05

    def __post_init__(self) -> None:
        ensure_non_negative(self.device_base_mw, "device_base_mw")
        ensure_non_negative(self.panel_mw_per_hz, "panel_mw_per_hz")
        ensure_non_negative(self.compose_mj_per_frame,
                            "compose_mj_per_frame")
        ensure_non_negative(self.meter_overhead_mj_per_frame,
                            "meter_overhead_mj_per_frame")


def galaxy_s3_calibration() -> PowerCalibration:
    """The default calibration described in this module's docstring."""
    return PowerCalibration()


def lcd_phone_calibration() -> PowerCalibration:
    """An LCD-device variant (extension).

    LCD phones of the same generation differ from the AMOLED S3 in two
    ways that matter here: the backlight is a large *constant* draw
    (content-independent — folded into ``device_base_mw``), and the
    per-hertz scan cost is somewhat lower (no per-pixel emission driver
    work scaling with refresh).  Net effect: the same governor saves
    fewer milliwatts on LCD (smaller rate-dependent slice of a larger
    fixed pie) — a known deployment caveat worth modelling.
    """
    return PowerCalibration(
        device_base_mw=620.0,     # backlight-dominated floor
        panel_mw_per_hz=2.4,
        compose_mj_per_frame=1.2,
        meter_overhead_mj_per_frame=0.05,
    )
