"""Replay configs: a trace file back into a runnable session.

:func:`replay_config` rebuilds the recorded session's configuration
from the spec embedded in the trace header and swaps the workload for
the trace itself.  Two fields are forced:

* ``app`` becomes the :class:`~repro.traces.profile.TraceProfile` of
  the file — the frame source replays the capture;
* ``status_bar`` is off — the recorded frames already *contain* the
  composited overlay, so replaying it would double-draw.

Everything else — governor, seed, panel, resolution divisor, meter
budget, Monkey shape, fault plan — comes from the recorded session, so
a same-governor replay reproduces the summary byte for byte.  Pass
``governor=`` to re-meter the same frames under a different policy.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Optional, Union

from ..errors import TraceError
from .format import FrameTrace, PathLike, load_trace
from .profile import TraceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.session import SessionConfig, SessionResult


def replay_config(path: PathLike, *,
                  governor: Optional[str] = None,
                  **overrides: Any) -> "SessionConfig":
    """The :class:`~repro.sim.session.SessionConfig` replaying ``path``.

    Keyword overrides pass through to ``dataclasses.replace`` on the
    reconstructed config (``seed=``, ``telemetry=``, ...); ``app`` and
    ``status_bar`` are owned by the replay and cannot be overridden.
    """
    from ..pipeline.spec import SessionSpec

    for forced in ("app", "status_bar"):
        if forced in overrides:
            raise TraceError(
                f"replay_config owns the {forced!r} field; it cannot "
                f"be overridden")
    trace = load_trace(path)
    spec_doc = trace.meta.get("spec")
    if not isinstance(spec_doc, dict):
        raise TraceError(
            f"trace {path} carries no source session spec; it cannot "
            f"be replayed")
    spec = SessionSpec.from_json_dict(spec_doc)
    config = spec.to_config()
    config = dataclasses.replace(
        config, app=TraceProfile(str(path)), status_bar=False,
        **overrides)
    if governor is not None:
        config = dataclasses.replace(config, governor=governor)
    return config


def replay_session(path: PathLike, *,
                   governor: Optional[str] = None,
                   **overrides: Any) -> "SessionResult":
    """Run the replay session for ``path`` (see :func:`replay_config`)."""
    from ..sim.session import run_session

    return run_session(replay_config(path, governor=governor,
                                     **overrides))


def trace_of(source: Union[FrameTrace, PathLike]) -> FrameTrace:
    """``source`` as a decoded trace (paths load, traces pass through)."""
    if isinstance(source, FrameTrace):
        return source
    return load_trace(source)
