"""Synthetic traces: video / scroll / idle frame streams on demand.

These generate the three canonical content classes the paper's
analysis distinguishes, without running a session first:

* ``video`` — full-frame noise at a fixed cadence (no coherence; the
  codec's worst case, stored via the raw-payload fallback);
* ``scroll`` — a fixed texture sliding vertically (full-frame change
  with high run coherence);
* ``idle`` — a static UI with a tiny clock region ticking at 1 Hz (the
  mostly-static case where dirty-rect + RLE shine).

Every generated trace embeds a representative app profile and a full
session spec, so it replays through exactly the same path as a
recorded one.  Generation is deterministic in ``seed``; all randomness
is drawn at build time, never at replay time.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from ..errors import TraceError
from .format import FrameTrace, TraceBuilder
from .source import AUX_CONTENT_CHANGES, AUX_RENDERS

#: The synthetic kinds :func:`synthetic_trace` accepts.
SYNTH_KINDS = ("video", "scroll", "idle")

#: Geometry of the default replay pipeline (galaxy-s3 panel at the
#: default ``resolution_divisor=8``): 720/8 x 1280/8.
_DEFAULT_WIDTH = 90
_DEFAULT_HEIGHT = 160


def _synthetic_profile(kind: str, content_fps: float) -> AppProfile:
    """A representative profile for a generated trace.

    ``touch_events_per_s=0`` keeps replay sessions free of Monkey
    randomness — a generated trace replays identically under any
    numpy version (the committed golden fixture relies on this).
    """
    style = {"video": RenderStyle.VIDEO,
             "scroll": RenderStyle.SCROLL,
             "idle": RenderStyle.SMALL_REGION}[kind]
    return AppProfile(
        name=f"trace-{kind}",
        category=AppCategory.GENERAL,
        idle_content_fps=content_fps,
        active_content_fps=content_fps,
        content_process=ContentProcess.PERIODIC,
        idle_submit_fps=0.0,
        render_style=style,
        render_cost_mj=0.5,
        cpu_base_mw=50.0,
        touch_events_per_s=0.0,
        scroll_fraction=0.0,
        notes=f"synthetic {kind} trace")


def _synthetic_meta(kind: str, profile: AppProfile, duration_s: float,
                    seed: int) -> dict:
    from ..pipeline.spec import SessionSpec, encode_dataclass
    from ..sim.session import SessionConfig

    config = SessionConfig(app=profile, duration_s=duration_s,
                           seed=seed)
    spec = SessionSpec.from_config(config)
    return {
        "origin": f"synthetic:{kind}",
        "profile": encode_dataclass(profile),
        "spec": spec.to_json_dict(),
    }


def synthetic_trace(kind: str, *, duration_s: float = 10.0,
                    seed: int = 0, width: int = _DEFAULT_WIDTH,
                    height: int = _DEFAULT_HEIGHT) -> FrameTrace:
    """Generate one synthetic trace (see module docstring for kinds)."""
    if kind not in SYNTH_KINDS:
        raise TraceError(f"unknown synthetic trace kind {kind!r}; "
                         f"choices: {SYNTH_KINDS}")
    if duration_s <= 0:
        raise TraceError(
            f"duration_s must be positive, got {duration_s}")
    rng = np.random.default_rng([seed, SYNTH_KINDS.index(kind)])
    builder = TraceBuilder(width, height)
    content_times = []

    if kind == "video":
        fps = 24.0
        period = 1.0 / fps
        count = int(duration_s / period)
        for index in range(1, count + 1):
            time = index * period
            frame = rng.integers(0, 256, (height, width, 3),
                                 dtype=np.uint8)
            builder.add_frame(time, frame)
            content_times.append(time)
    elif kind == "scroll":
        fps = 30.0
        period = 1.0 / fps
        count = int(duration_s / period)
        # A tall banded texture; each frame slides the viewport down.
        bands = rng.integers(0, 256, (height * 3, 1, 3), dtype=np.uint8)
        texture = np.repeat(np.repeat(bands, 4, axis=0)[:height * 3],
                            width, axis=1)
        step = 3
        for index in range(1, count + 1):
            time = index * period
            offset = (index * step) % (texture.shape[0] - height)
            builder.add_frame(time,
                              texture[offset:offset + height])
            content_times.append(time)
    else:  # idle
        fps = 1.0
        background = np.full((height, width, 3), 32, dtype=np.uint8)
        # A static "UI": a header bar and two content cards.
        background[: height // 12] = (70, 70, 90)
        background[height // 6: height // 2, 4: width - 4] = (55, 55, 55)
        background[height // 2 + 4: height - 8,
                   4: width - 4] = (48, 48, 60)
        clock_h = max(2, height // 24)
        clock_w = max(4, width // 6)
        frame = background.copy()
        count = int(duration_s / (1.0 / fps))
        for index in range(1, count + 1):
            time = index * 1.0
            # The clock region redraws each second with fresh digits.
            frame[1:1 + clock_h, width - clock_w - 1: width - 1] = (
                rng.integers(0, 256, (clock_h, clock_w, 3),
                             dtype=np.uint8))
            builder.add_frame(time, frame)
            content_times.append(time)

    profile = _synthetic_profile(kind, fps)
    times = np.asarray(content_times, dtype=np.float64)
    aux = {AUX_CONTENT_CHANGES: times, AUX_RENDERS: times.copy()}
    return builder.build(
        duration_s, aux=aux,
        meta=_synthetic_meta(kind, profile, duration_s, seed))


def synthetic_geometry() -> Tuple[int, int]:
    """The default generated-trace geometry ``(width, height)``."""
    return _DEFAULT_WIDTH, _DEFAULT_HEIGHT
