"""Frame-trace record/replay: captured framebuffer streams as workloads.

The paper's evaluation is "offline frame analysis": every number comes
from the sequence of frames the display pipeline actually produced.
This package makes that sequence a first-class artifact —

* :mod:`~repro.traces.format` — the ``repro-trace/1`` binary container:
  per-frame dirty-rect + run-length-encoded deltas exploiting the frame
  coherence of real UI content (consecutive frames are mostly equal);
* :mod:`~repro.traces.recorder` — :class:`TraceRecorder` taps the
  framebuffer during any session and captures the exact frame stream
  the content-rate meter saw;
* :mod:`~repro.traces.source` — :class:`TraceFrameSource`, an
  application that replays a trace through the normal compositor path,
  so a recorded trace runs under any governor via ``repro run``,
  ``run_batch`` at any worker count, and the experiments;
* :mod:`~repro.traces.replay` — config helpers guaranteeing the
  headline property: record a session, replay it under the same
  governor, and the session summary is byte-identical;
* :mod:`~repro.traces.synth` — synthetic video / scroll / idle traces
  for tests and benchmarks.

Submodules load lazily (PEP 562) so that low-level layers — the
pipeline registries, the spec codec — can import the trace profile
type without dragging in the whole replay stack, and without import
cycles.
"""

from __future__ import annotations

import importlib
from typing import List

#: Public name -> defining submodule (resolved on first attribute use).
_EXPORTS = {
    "TRACE_MAGIC": "format",
    "TRACE_SCHEMA": "format",
    "TRACE_VERSION": "format",
    "FrameRecord": "format",
    "FrameTrace": "format",
    "TraceBuilder": "format",
    "load_trace": "format",
    "rle_decode": "format",
    "rle_encode": "format",
    "save_trace": "format",
    "TraceProfile": "profile",
    "TRACE_APP_PREFIX": "profile",
    "TraceRecorder": "recorder",
    "record_session": "recorder",
    "TraceFrameSource": "source",
    "register_trace": "source",
    "replay_config": "replay",
    "replay_session": "replay",
    "SYNTH_KINDS": "synth",
    "synthetic_trace": "synth",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
