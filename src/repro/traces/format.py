"""The ``repro-trace/1`` binary frame-trace container.

A trace is the exact sequence of framebuffer writes one session
produced: for each write, the simulation time and the pixels.  Storing
every frame raw would cost ``frames * width * height * 3`` bytes; real
UI content has strong frame coherence — consecutive frames are mostly
identical — so each frame is stored as a **delta** against the
previous one:

* the **dirty rect** is the bounding box of changed pixels (empty for
  a redundant frame — a write whose content did not change);
* the rect's pixels are **run-length encoded** as ``(count: u16,
  value: u8)`` pairs; when RLE would expand the data (noise-like
  content has no runs), the raw rect bytes are stored instead and the
  record's RAW flag is set.

File layout (all integers little-endian)::

    magic    8 bytes   b"REPROTRC"
    version  u16       1
    hlen     u32       header length
    header   hlen      UTF-8 JSON: schema, width, height, duration_s,
                       frame_count, meta (source profile/spec/origin)
    aux      u16 channel count, then per channel:
                       u16 name length, name UTF-8,
                       u64 value count, values as float64
    frames   frame_count records:
                       f64 time, u8 flags, u16 y0/x0/y1/x1 dirty rect,
                       u32 payload length, payload bytes

Aux channels carry the per-session event streams replay needs to
reproduce derived reports exactly (the source application's
content-change and render instants).  Decoding starts from an all-zero
canvas — the state of a freshly created
:class:`~repro.graphics.framebuffer.Framebuffer` — and applies deltas
in order, so decode(encode(frames)) is bit-exact.

Every malformed input (bad magic, unsupported version, truncation,
inconsistent payload) raises :class:`~repro.errors.TraceError`.
"""

from __future__ import annotations

import json
import pathlib
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TraceError
from ..ioutil import atomic_write_bytes

#: Identifies the trace document layout; bump on breaking changes.
TRACE_SCHEMA = "repro-trace/1"

#: First eight bytes of every trace file.
TRACE_MAGIC = b"REPROTRC"

#: Container version the writer emits and the reader accepts.
TRACE_VERSION = 1

#: Record flag: payload is raw rect bytes, not run-length pairs.
FLAG_RAW = 0x01

#: Longest run one ``(count, value)`` pair can express.
_MAX_RUN = 0xFFFF

#: Structured dtype of one RLE pair (packed: 3 bytes).
_RLE_DTYPE = np.dtype([("count", "<u2"), ("value", "u1")])

_HEAD = struct.Struct("<8sHI")
_RECORD = struct.Struct("<dBHHHHI")

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# Run-length codec
# ----------------------------------------------------------------------
def rle_encode(data: np.ndarray) -> bytes:
    """``data`` (any-shape uint8) as packed ``(count, value)`` pairs."""
    flat = np.ascontiguousarray(data, dtype=np.uint8).ravel()
    if flat.size == 0:
        return b""
    boundaries = np.flatnonzero(flat[1:] != flat[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [flat.size]))
    lengths = ends - starts
    values = flat[starts]
    if int(lengths.max()) > _MAX_RUN:
        # Split over-long runs; rare (only huge uniform regions).
        split_lengths: List[int] = []
        split_values: List[int] = []
        for length, value in zip(lengths.tolist(), values.tolist()):
            while length > _MAX_RUN:
                split_lengths.append(_MAX_RUN)
                split_values.append(value)
                length -= _MAX_RUN
            split_lengths.append(length)
            split_values.append(value)
        lengths = np.asarray(split_lengths, dtype=np.int64)
        values = np.asarray(split_values, dtype=np.uint8)
    pairs = np.empty(lengths.size, dtype=_RLE_DTYPE)
    pairs["count"] = lengths
    pairs["value"] = values
    return pairs.tobytes()


def rle_decode(payload: bytes, expected_size: int) -> np.ndarray:
    """Packed pairs back to a flat uint8 array of ``expected_size``."""
    if len(payload) % _RLE_DTYPE.itemsize:
        raise TraceError(
            f"RLE payload length {len(payload)} is not a multiple of "
            f"{_RLE_DTYPE.itemsize}")
    pairs = np.frombuffer(payload, dtype=_RLE_DTYPE)
    counts = pairs["count"].astype(np.int64)
    if counts.size and int(counts.min()) == 0:
        raise TraceError("RLE payload contains a zero-length run")
    total = int(counts.sum())
    if total != expected_size:
        raise TraceError(
            f"RLE payload decodes to {total} bytes, expected "
            f"{expected_size}")
    return np.repeat(pairs["value"], counts)


# ----------------------------------------------------------------------
# Frame records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrameRecord:
    """One framebuffer write: time + delta against the previous frame.

    ``rect`` is the half-open dirty bounding box ``(y0, x0, y1, x1)``;
    ``(0, 0, 0, 0)`` means no pixel changed (a redundant frame).
    ``payload`` holds the rect's pixels, RLE pairs unless ``raw``.
    """

    time: float
    rect: Tuple[int, int, int, int]
    raw: bool
    payload: bytes

    @property
    def empty(self) -> bool:
        """True for a redundant frame (no pixels changed)."""
        y0, x0, y1, x1 = self.rect
        return y1 <= y0 or x1 <= x0

    @property
    def encoded_size(self) -> int:
        """On-disk bytes of this record, fixed fields included."""
        return _RECORD.size + len(self.payload)

    def apply(self, canvas: np.ndarray) -> bool:
        """Apply this delta to ``canvas`` (H, W, 3 uint8) in place.

        Returns True when pixels changed (the record was not empty).
        """
        if self.empty:
            return False
        y0, x0, y1, x1 = self.rect
        height, width = canvas.shape[:2]
        if y1 > height or x1 > width:
            raise TraceError(
                f"frame record rect {self.rect} exceeds trace geometry "
                f"{width}x{height}")
        size = (y1 - y0) * (x1 - x0) * 3
        if self.raw:
            if len(self.payload) != size:
                raise TraceError(
                    f"raw payload is {len(self.payload)} bytes, rect "
                    f"{self.rect} needs {size}")
            patch = np.frombuffer(self.payload, dtype=np.uint8)
        else:
            patch = rle_decode(self.payload, size)
        canvas[y0:y1, x0:x1] = patch.reshape(y1 - y0, x1 - x0, 3)
        return True


def encode_frame_delta(time: float, previous: np.ndarray,
                       current: np.ndarray) -> FrameRecord:
    """The :class:`FrameRecord` turning ``previous`` into ``current``."""
    changed = (current != previous).any(axis=2)
    if not changed.any():
        return FrameRecord(time=time, rect=(0, 0, 0, 0), raw=False,
                           payload=b"")
    rows = changed.any(axis=1)
    cols = changed.any(axis=0)
    y0 = int(np.argmax(rows))
    y1 = int(len(rows) - np.argmax(rows[::-1]))
    x0 = int(np.argmax(cols))
    x1 = int(len(cols) - np.argmax(cols[::-1]))
    region = np.ascontiguousarray(current[y0:y1, x0:x1])
    rle = rle_encode(region)
    if len(rle) < region.nbytes:
        return FrameRecord(time=time, rect=(y0, x0, y1, x1), raw=False,
                           payload=rle)
    return FrameRecord(time=time, rect=(y0, x0, y1, x1), raw=True,
                       payload=region.tobytes())


# ----------------------------------------------------------------------
# The trace container
# ----------------------------------------------------------------------
class FrameTrace:
    """A decoded trace: geometry, frame records, aux event channels.

    Parameters
    ----------
    width, height:
        Framebuffer geometry the frames were captured at.
    duration_s:
        Length of the recorded session.
    records:
        Frame records in time order (non-decreasing times).
    aux:
        Named float64 event-time channels (``content_changes``,
        ``renders``) replay uses to rebuild derived reports exactly.
    meta:
        JSON-ready provenance: the source app profile, the source
        session spec, and an origin tag.
    """

    def __init__(self, width: int, height: int, duration_s: float,
                 records: Sequence[FrameRecord],
                 aux: Optional[Mapping[str, np.ndarray]] = None,
                 meta: Optional[Mapping[str, Any]] = None) -> None:
        if width <= 0 or height <= 0:
            raise TraceError(
                f"trace geometry must be positive, got {width}x{height}")
        if width > _MAX_RUN or height > _MAX_RUN:
            raise TraceError(
                f"trace geometry {width}x{height} exceeds the u16 rect "
                f"limit ({_MAX_RUN})")
        if duration_s <= 0:
            raise TraceError(
                f"trace duration must be positive, got {duration_s}")
        self.width = int(width)
        self.height = int(height)
        self.duration_s = float(duration_s)
        self.records: Tuple[FrameRecord, ...] = tuple(records)
        last = float("-inf")
        for record in self.records:
            if record.time < last:
                raise TraceError(
                    f"frame times go backwards ({record.time:.6f} < "
                    f"{last:.6f})")
            last = record.time
        self.aux: Dict[str, np.ndarray] = {
            str(name): np.asarray(values, dtype=np.float64)
            for name, values in (aux or {}).items()}
        self.meta: Dict[str, Any] = dict(meta or {})

    # -- sizes ---------------------------------------------------------
    @property
    def frame_count(self) -> int:
        """Number of recorded framebuffer writes."""
        return len(self.records)

    @property
    def raw_frame_bytes(self) -> int:
        """What the frames would cost stored raw (no deltas, no RLE)."""
        return self.frame_count * self.width * self.height * 3

    @property
    def encoded_frame_bytes(self) -> int:
        """On-disk bytes of the frame section (record overhead
        included — the honest compressed size)."""
        return sum(record.encoded_size for record in self.records)

    @property
    def compression_ratio(self) -> float:
        """``encoded_frame_bytes / raw_frame_bytes`` (0.0 when empty);
        small is good — mostly-static UI traces land well under 0.25."""
        raw = self.raw_frame_bytes
        if raw == 0:
            return 0.0
        return self.encoded_frame_bytes / raw

    # -- decoding ------------------------------------------------------
    def frames(self) -> Iterator[Tuple[float, np.ndarray]]:
        """Yield ``(time, pixels)`` per record, pixels fully decoded.

        The yielded array is a live canvas reused between iterations;
        copy it to keep a frame.
        """
        canvas = np.zeros((self.height, self.width, 3), dtype=np.uint8)
        for record in self.records:
            record.apply(canvas)
            yield record.time, canvas

    def frame_times(self) -> np.ndarray:
        """All record times as a float64 array."""
        return np.asarray([record.time for record in self.records],
                          dtype=np.float64)

    # -- summary -------------------------------------------------------
    def info_dict(self) -> Dict[str, Any]:
        """A JSON-ready description (what ``repro trace info`` prints)."""
        meaningful = sum(1 for record in self.records
                         if not record.empty)
        return {
            "schema": TRACE_SCHEMA,
            "width": self.width,
            "height": self.height,
            "duration_s": self.duration_s,
            "frame_count": self.frame_count,
            "meaningful_frames": meaningful,
            "redundant_frames": self.frame_count - meaningful,
            "raw_frame_bytes": self.raw_frame_bytes,
            "encoded_frame_bytes": self.encoded_frame_bytes,
            "compression_ratio": self.compression_ratio,
            "aux_channels": {name: int(values.size)
                             for name, values in sorted(self.aux.items())},
            "meta": self.meta,
        }

    # -- serialization -------------------------------------------------
    def save(self, path: PathLike) -> pathlib.Path:
        """Write the trace; returns the path."""
        return save_trace(self, path)

    @classmethod
    def load(cls, path: PathLike) -> "FrameTrace":
        """Read a trace written by :meth:`save`."""
        return load_trace(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FrameTrace {self.width}x{self.height} "
                f"{self.frame_count} frames {self.duration_s:g}s>")


class TraceBuilder:
    """Incremental trace construction from successive full frames.

    Keeps exactly one previous-frame copy; each :meth:`add_frame` call
    delta-encodes against it.  Both the live recorder and the synthetic
    generators feed frames through here, so every trace takes the same
    encoding path.
    """

    def __init__(self, width: int, height: int) -> None:
        self.width = int(width)
        self.height = int(height)
        self._previous = np.zeros((self.height, self.width, 3),
                                  dtype=np.uint8)
        self._records: List[FrameRecord] = []
        self._last_time = float("-inf")

    @property
    def frame_count(self) -> int:
        """Frames added so far."""
        return len(self._records)

    def add_frame(self, time: float, pixels: np.ndarray) -> FrameRecord:
        """Delta-encode one full frame; times must not decrease."""
        if pixels.shape != self._previous.shape:
            raise TraceError(
                f"frame shape {pixels.shape} does not match trace "
                f"geometry {self._previous.shape}")
        if pixels.dtype != np.uint8:
            raise TraceError(
                f"frames must be uint8, got {pixels.dtype}")
        if time < self._last_time:
            raise TraceError(
                f"frame times go backwards ({time:.6f} < "
                f"{self._last_time:.6f})")
        record = encode_frame_delta(float(time), self._previous, pixels)
        self._records.append(record)
        np.copyto(self._previous, pixels)
        self._last_time = float(time)
        return record

    def build(self, duration_s: float,
              aux: Optional[Mapping[str, np.ndarray]] = None,
              meta: Optional[Mapping[str, Any]] = None) -> FrameTrace:
        """Finish: the accumulated records as a :class:`FrameTrace`."""
        return FrameTrace(self.width, self.height, duration_s,
                          self._records, aux=aux, meta=meta)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def save_trace(trace: FrameTrace, path: PathLike) -> pathlib.Path:
    """Serialize ``trace`` to ``path`` (see module docstring layout)."""
    header = {
        "schema": TRACE_SCHEMA,
        "width": trace.width,
        "height": trace.height,
        "duration_s": trace.duration_s,
        "frame_count": trace.frame_count,
        "meta": trace.meta,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    chunks: List[bytes] = [
        _HEAD.pack(TRACE_MAGIC, TRACE_VERSION, len(header_bytes)),
        header_bytes,
        struct.pack("<H", len(trace.aux)),
    ]
    for name in sorted(trace.aux):
        name_bytes = name.encode("utf-8")
        values = np.ascontiguousarray(trace.aux[name],
                                      dtype="<f8")
        chunks.append(struct.pack("<H", len(name_bytes)))
        chunks.append(name_bytes)
        chunks.append(struct.pack("<Q", values.size))
        chunks.append(values.tobytes())
    for record in trace.records:
        y0, x0, y1, x1 = record.rect
        flags = FLAG_RAW if record.raw else 0
        chunks.append(_RECORD.pack(record.time, flags, y0, x0, y1, x1,
                                   len(record.payload)))
        chunks.append(record.payload)
    path = pathlib.Path(path)
    try:
        # Atomic: a crash mid-write must never leave a torn trace at
        # the destination (the reader treats truncation as corruption).
        atomic_write_bytes(path, b"".join(chunks))
    except OSError as exc:
        raise TraceError(f"cannot write trace {path}: {exc}") from None
    return path


class _Reader:
    """Cursor over trace bytes; every read checks for truncation."""

    def __init__(self, data: bytes, path: pathlib.Path) -> None:
        self._data = data
        self._path = path
        self._pos = 0

    def take(self, count: int, what: str) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise TraceError(
                f"trace {self._path} is truncated: {what} needs "
                f"{count} bytes at offset {self._pos}, file has "
                f"{len(self._data)}")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


def load_trace(path: PathLike) -> FrameTrace:
    """Read one trace file; malformed input raises
    :class:`~repro.errors.TraceError`."""
    path = pathlib.Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from None
    reader = _Reader(data, path)
    magic, version, header_len = _HEAD.unpack(
        reader.take(_HEAD.size, "file head"))
    if magic != TRACE_MAGIC:
        raise TraceError(
            f"{path} is not a repro trace (bad magic {magic!r})")
    if version != TRACE_VERSION:
        raise TraceError(
            f"trace {path} has unsupported version {version}; this "
            f"reader handles version {TRACE_VERSION}")
    try:
        header = json.loads(reader.take(header_len, "header")
                            .decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(
            f"trace {path} header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        raise TraceError(f"trace {path} header must be an object")
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        raise TraceError(
            f"trace {path} schema is {schema!r}, expected "
            f"{TRACE_SCHEMA!r}")
    for key in ("width", "height", "duration_s", "frame_count"):
        if key not in header:
            raise TraceError(f"trace {path} header is missing {key!r}")

    (channel_count,) = struct.unpack(
        "<H", reader.take(2, "aux channel count"))
    aux: Dict[str, np.ndarray] = {}
    for _ in range(channel_count):
        (name_len,) = struct.unpack(
            "<H", reader.take(2, "aux channel name length"))
        name = reader.take(name_len, "aux channel name").decode("utf-8")
        (count,) = struct.unpack(
            "<Q", reader.take(8, "aux channel value count"))
        values = np.frombuffer(
            reader.take(8 * count, f"aux channel {name!r} values"),
            dtype="<f8")
        aux[name] = values.astype(np.float64)

    records: List[FrameRecord] = []
    for index in range(int(header["frame_count"])):
        time, flags, y0, x0, y1, x1, payload_len = _RECORD.unpack(
            reader.take(_RECORD.size, f"frame record {index}"))
        payload = reader.take(payload_len, f"frame payload {index}")
        records.append(FrameRecord(
            time=time, rect=(y0, x0, y1, x1),
            raw=bool(flags & FLAG_RAW), payload=payload))
    if not reader.exhausted:
        raise TraceError(
            f"trace {path} has trailing bytes after the last frame "
            f"record")
    return FrameTrace(
        width=int(header["width"]), height=int(header["height"]),
        duration_s=float(header["duration_s"]), records=records,
        aux=aux, meta=header.get("meta") or {})
