"""Recording: tap a session's framebuffer and capture its frame stream.

:class:`TraceRecorder` hooks the same place the paper's content-rate
meter hooks — the framebuffer's update notification — so the trace
holds *exactly* the frame sequence the meter saw: every compositor
write, meaningful or redundant, at its simulation timestamp.  The tap
is read-only; a recorded session is byte-identical to an unrecorded
one.

:func:`record_session` is the one-call form: it assembles the session
through the normal :class:`~repro.pipeline.builder.SessionBuilder`
stages, attaches the recorder between the display stage and the meter
stage, runs the session, and seals the trace with the provenance the
replay path needs (the resolved app profile, the full session spec,
and the source application's content-change/render event streams).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from ..errors import TraceError
from ..graphics.framebuffer import Framebuffer
from .format import FrameTrace, TraceBuilder
from .source import AUX_CONTENT_CHANGES, AUX_RENDERS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.session import SessionConfig, SessionResult


class TraceRecorder:
    """Capture every write of a framebuffer as delta-encoded records.

    Attach before the session starts (the builder's display stage has
    run, the panel has not); frames encode incrementally against one
    previous-frame copy, so memory stays at the *encoded* trace size
    plus a single frame.
    """

    def __init__(self, framebuffer: Framebuffer) -> None:
        self._framebuffer = framebuffer
        self._builder = TraceBuilder(framebuffer.width,
                                     framebuffer.height)
        self._attached = True
        framebuffer.add_update_listener(self._on_update)

    @property
    def frame_count(self) -> int:
        """Frames captured so far."""
        return self._builder.frame_count

    @property
    def attached(self) -> bool:
        """True while the recorder is listening for writes."""
        return self._attached

    def detach(self) -> None:
        """Stop capturing (idempotent)."""
        if self._attached:
            self._framebuffer.remove_update_listener(self._on_update)
            self._attached = False

    def _on_update(self, time: float, framebuffer: Framebuffer) -> None:
        self._builder.add_frame(time, framebuffer.pixels)

    def to_trace(self, duration_s: float,
                 aux: Optional[Dict[str, np.ndarray]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> FrameTrace:
        """Seal the capture into a :class:`FrameTrace`."""
        return self._builder.build(duration_s, aux=aux, meta=meta)


def trace_meta(config: "SessionConfig", origin: str) -> Dict[str, Any]:
    """The provenance block embedded in a trace header.

    Carries the resolved app profile (replay resolves to the *same*
    profile) and the full session spec (replay reconstructs the *same*
    config, app field aside).
    """
    from ..pipeline.spec import encode_dataclass

    return {
        "origin": origin,
        "profile": encode_dataclass(config.resolve_profile()),
        "spec": config.to_spec().to_json_dict(),
    }


def record_session(
        config: "SessionConfig"
) -> Tuple["SessionResult", FrameTrace]:
    """Run ``config`` with a recorder attached; returns result + trace.

    The recorded session itself is byte-identical to
    :func:`~repro.sim.session.run_session` of the same config — the
    tap only reads.
    """
    from ..pipeline.builder import SessionBuilder

    builder = SessionBuilder(config)
    builder.build_telemetry()
    builder.build_injector()
    builder.build_display()
    framebuffer = builder.framebuffer
    if framebuffer is None:  # pragma: no cover - builder guarantees it
        raise TraceError("session builder produced no framebuffer")
    recorder = TraceRecorder(framebuffer)
    result = builder.run()
    recorder.detach()
    aux = {
        AUX_CONTENT_CHANGES: result.application.content_changes.times,
        AUX_RENDERS: result.application.renders.times,
    }
    trace = recorder.to_trace(config.duration_s, aux=aux,
                              meta=trace_meta(config, origin="session"))
    return result, trace
