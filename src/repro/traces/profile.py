"""The workload-side identity of a trace: :class:`TraceProfile`.

A :class:`~repro.sim.session.SessionConfig` identifies its workload by
a registry name or a profile object; a trace workload is identified by
the trace *file path*.  :class:`TraceProfile` is that identity — a tiny
frozen dataclass holding only the path, so two configs replaying the
same file compare equal, specs round-trip losslessly, and batch workers
receive nothing heavier than a string.  The trace itself loads lazily
(and is cached per file state) the first time the pipeline needs it.

This module deliberately imports almost nothing: the pipeline
registries and the spec codec import it at module level, so it must
never pull the replay stack (or the pipeline) back in at import time.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Tuple

from ..errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..apps.profile import AppProfile
    from .format import FrameTrace

#: String-form trace workload: ``"trace:<path>"`` anywhere an app name
#: is accepted (CLI ``--app``, specs, the batch wire format).
TRACE_APP_PREFIX = "trace:"

#: path -> ((mtime_ns, size), FrameTrace); invalidated on file change.
_CACHE: Dict[str, Tuple[Tuple[int, int], "FrameTrace"]] = {}


@dataclass(frozen=True)
class TraceProfile:
    """A trace-backed workload, identified by its file path.

    Equality and hashing are by path alone — the identity a config
    carries across process and serialization boundaries.
    """

    path: str

    def load(self) -> "FrameTrace":
        """The decoded trace (cached until the file changes on disk)."""
        from .format import load_trace

        key = str(self.path)
        try:
            stat = pathlib.Path(key).stat()
            signature = (stat.st_mtime_ns, stat.st_size)
        except OSError as exc:
            raise TraceError(
                f"cannot read trace {key}: {exc}") from None
        cached = _CACHE.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
        trace = load_trace(key)
        _CACHE[key] = (signature, trace)
        return trace

    def as_app_profile(self) -> "AppProfile":
        """The source application's profile, embedded at record time.

        Replay sessions resolve to the *original* profile, so every
        profile-derived quantity — power model parameters, Monkey
        interaction hints, the summary's app name and category — is
        identical to the recorded session's.
        """
        return decode_trace_profile(self.load().meta, str(self.path))


def decode_trace_profile(meta: Mapping[str, Any],
                         origin: str) -> "AppProfile":
    """The :class:`~repro.apps.profile.AppProfile` embedded in trace
    ``meta``; raises :class:`~repro.errors.TraceError` when absent or
    undecodable."""
    from ..apps.profile import AppProfile
    from ..errors import SpecError
    from ..pipeline.spec import decode_dataclass

    fields = meta.get("profile")
    if not isinstance(fields, Mapping):
        raise TraceError(
            f"trace {origin} carries no source app profile; it cannot "
            f"be replayed as a workload")
    try:
        return decode_dataclass(AppProfile, dict(fields),
                                "trace profile")
    except SpecError as exc:
        raise TraceError(
            f"trace {origin} has an undecodable app profile: "
            f"{exc}") from None
