"""Trace replay as an application: :class:`TraceFrameSource`.

The frame source is a drop-in :class:`~repro.apps.base.Application`
whose "renderer" is the recorded frame stream: at each V-Sync it
applies every recorded framebuffer write that has come due to its
surface and posts once, so the compositor latch writes the exact bytes
the original session wrote at the exact same instants.

Why the summary comes out byte-identical under the same governor: the
recorded frame times *are* the original session's V-Sync instants, and
the simulator's float arithmetic is deterministic — so by induction
each replay V-Sync lands on the same float time, applies the same
delta, produces the same framebuffer bytes, hence the same meter
readings, the same governor decisions, and the same next V-Sync.  The
derived reports match too because the source application's
content-change and render instants travel with the trace as aux
channels and are replayed into the same event logs.

Under a *different* governor the V-Sync grid changes: recorded frames
then latch at the first V-Sync at-or-after their recorded time, and
frames that pile up between V-Syncs coalesce into one post — exactly
the V-Sync throttling a live application experiences.
"""

from __future__ import annotations

from typing import Optional

from ..apps.base import Application
from ..apps.profile import AppProfile
from ..errors import TraceError
from ..graphics.compositor import SurfaceManager
from ..graphics.surface import Surface
from ..sim.engine import Simulator
from .format import FrameTrace
from .profile import TraceProfile

#: Replay tolerance when matching recorded frame times to V-Syncs.
#: Same-governor replays hit the grid exactly (same float arithmetic);
#: the epsilon only guards against representation noise when a trace
#: is replayed under a foreign V-Sync grid.
_TIME_EPSILON = 1e-9

#: Aux channel names the recorder writes and the source replays.
AUX_CONTENT_CHANGES = "content_changes"
AUX_RENDERS = "renders"


class TraceFrameSource(Application):
    """An application that replays a recorded frame trace.

    Parameters
    ----------
    trace:
        The decoded trace to replay.
    profile:
        The source app profile embedded in the trace (drives power
        parameters, interaction hints, and the oracle governor's
        content-rate reads, exactly as in the recorded session).
    sim, compositor, surface, seed:
        As for :class:`~repro.apps.base.Application`.  The surface must
        match the trace geometry exactly.
    """

    def __init__(self, trace: FrameTrace, profile: AppProfile,
                 sim: Simulator, compositor: SurfaceManager,
                 surface: Surface, seed: int = 0) -> None:
        if (surface.width, surface.height) != (trace.width,
                                               trace.height):
            raise TraceError(
                f"trace geometry {trace.width}x{trace.height} does not "
                f"match the replay surface "
                f"{surface.width}x{surface.height}; run the replay "
                f"with the panel and resolution_divisor the trace was "
                f"recorded at")
        super().__init__(profile, sim, compositor, surface, seed=seed)
        self._trace = trace
        self._cursor = 0
        #: Frame records applied so far.
        self.replayed_frames = 0
        #: Records that shared a post with a later one (foreign V-Sync
        #: grids only; zero under the recording governor).
        self.coalesced_frames = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Arm the replay and pre-fill the source session's event logs.

        The aux channels hold *future* event times; they are written
        into the logs up front (the logs only require non-decreasing
        times) so every derived report — power from renders, quality
        from content changes — sees the recorded session's streams.
        """
        if self._started:
            raise TraceError(
                f"trace source {self.profile.name!r} already started")
        self._started = True
        for time in self._trace.aux.get(AUX_CONTENT_CHANGES, ()):
            self.content_changes.append(float(time))
        for time in self._trace.aux.get(AUX_RENDERS, ()):
            self.renders.append(float(time))

    # -- content process -----------------------------------------------
    def _schedule_next_content(self) -> None:
        """No live content process: the trace is the content.

        Also neutralizes the reschedule a touch triggers on entering
        the active state — interaction still elevates
        :meth:`current_content_fps` (the oracle governor reads it), but
        generates no synthetic content events.
        """

    # -- render loop ---------------------------------------------------
    def on_vsync(self, time: float) -> None:
        """Apply every recorded write due by ``time``; post once."""
        if not self._started:
            return
        records = self._trace.records
        applied = 0
        while (self._cursor < len(records)
               and records[self._cursor].time <= time + _TIME_EPSILON):
            record = records[self._cursor]
            if record.apply(self._surface.pixels):
                self._surface.mark_damaged()
            self._cursor += 1
            applied += 1
        if applied == 0:
            return
        self.replayed_frames += applied
        self.coalesced_frames += applied - 1
        self.submissions.append(time)
        self._compositor.post(self._surface)
        self._last_post_time = time

    @property
    def pending_records(self) -> int:
        """Trace records not yet replayed."""
        return len(self._trace.records) - self._cursor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceFrameSource {self.profile.name!r} "
                f"{self.replayed_frames}/{self._trace.frame_count}>")


def trace_workload(path: str) -> TraceProfile:
    """Registry factory: the :class:`TraceProfile` for ``path``.

    Module-level (and partial-friendly) so registered traces pickle by
    reference and ship to batch pool workers with the registry extras.
    """
    return TraceProfile(str(path))


def register_trace(name: str, path: str,
                   replace: bool = False) -> TraceProfile:
    """Register trace file ``path`` under workload ``name``.

    After this, ``name`` works anywhere an app name does — CLI
    ``--app``, :class:`~repro.sim.session.SessionConfig`, batch specs,
    experiments.  Returns the profile for convenience.
    """
    import functools

    from ..pipeline.apps import APPS

    profile = trace_workload(path)
    APPS.register(name, functools.partial(trace_workload, str(path)),
                  replace=replace)
    return profile
