"""``repro bench`` — the performance harness and its regression gate.

Three workloads cover the paths whose speed this repo actually cares
about:

* **meter hot path** — one :class:`~repro.core.grid.GridComparator`
  equal-frames comparison at the paper's 9K operating budget on a
  native-resolution frame pair (the per-V-Sync cost Figure 6 bounds);
* **native session** — one full-pipeline session at native 720x1280
  (metering, governor, panel, power integration);
* **parallel batch** — a 32-session native-resolution batch through
  :func:`repro.sim.batch.run_batch` at 1 worker and at N workers,
  yielding the scaling headline ``batch32_speedup_x``;
* **vector batch** — an idle-heavy 32-session batch once through the
  scalar path and once through the lockstep vector engine
  (``engine="vector"``; see :mod:`repro.sim.vector`), yielding
  ``vector_batch32_s`` and the headline ``vector_vs_scalar_x`` — the
  frame-coherence fast path's reason to exist.  The harness verifies
  both engines return byte-identical summaries before trusting either
  timing;
* **spec codec** — one full
  :class:`~repro.pipeline.spec.SessionSpec` round trip (config ->
  spec -> JSON -> spec -> config), the per-session dispatch overhead
  the parallel batch engine pays to ship sessions to workers;
* **exposition render** — one Prometheus text render of a busy
  metrics registry (the cost every ``/metrics`` scrape pays inside
  the service's event loop, so it must stay small);
* **cache-warm sweep** — one small parameter sweep cold then warm
  through the content-addressed result cache, yielding
  ``sweep_warm_vs_cold_x`` (how much a cached answer beats
  recomputing it — the cache's reason to exist).

Every metric is emitted in a machine-readable JSON document
(``BENCH_<rev>.json``; schema below) next to a human table, and
:func:`compare_bench` turns two such documents into a regression
verdict — CI's ``bench-gate`` job fails when any metric of the current
tree regresses more than 20 % against the committed
``BENCH_baseline.json``.  See ``docs/performance.md`` for the schema
and the gate's operating rules.

Timings are wall-clock and therefore noisy: single-digit percent
deltas are weather, the 20 % gate threshold is the signal band.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from .analysis.tables import format_table
from .apps.profile import AppCategory, AppProfile, RenderStyle
from .core.grid import GridComparator, GridSpec
from .errors import ConfigurationError
from .sim.batch import run_batch
from .sim.session import SessionConfig, run_session

#: Identifies the bench document layout; bump on breaking changes.
BENCH_SCHEMA = "repro-bench/1"

#: The paper's metering operating point (9K budget, Figure 6).
METER_SAMPLE_COUNT = 9216

#: Sessions in the batch-scaling workload.
BATCH_SESSIONS = 32

#: The idle-heavy vector workload: an always-on reading screen in the
#: spirit of the paper's Section 2 redundancy examples — genuine
#: content changes every ~20 s (a page turn, a clock tick drawn into a
#: small region), a gentle 1 fps submission loop re-posting the
#: unchanged frame in between, and touches so rare that the screen is
#: static for essentially the whole session.  It runs under the stock
#: ``fixed`` governor on the 120 Hz LTPO panel — the slow baseline arm
#: of a survey batch, pinned at the panel maximum — so almost every
#: composite is provably identical to the previous frame and almost
#: every governor tick is provably inert: exactly the shape the
#: frame-coherence fast path exists for, at the refresh rate where
#: skipping matters most.  One profile across the batch mirrors
#: ``_batch_configs`` (32x Facebook).
VECTOR_BATCH_PROFILE = AppProfile(
    name="always-on reader", category=AppCategory.GENERAL,
    idle_content_fps=0.05, active_content_fps=2.0,
    idle_submit_fps=1.0, touch_events_per_s=0.02,
    render_style=RenderStyle.SMALL_REGION,
    notes="idle-heavy vector bench workload")

#: Panel the vector workload runs on (the 120 Hz LTPO preset).
VECTOR_BATCH_PANEL = "ltpo-120"

#: Session length of the vector workload.  Long enough that per-batch
#: fixed costs (pipeline assembly, summary export) amortise and the
#: measured ratio reflects steady-state throughput.
VECTOR_BATCH_SESSION_S = 120.0


def _git_rev() -> str:
    """Short git revision of the working tree, or ``"local"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True)
        return out.stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def _metric(value: float, unit: str,
            higher_is_better: bool = False) -> Dict:
    return {"value": float(value), "unit": unit,
            "higher_is_better": higher_is_better}


def _time_meter_compare(repeats: int) -> float:
    """Best seconds of one 9K-budget equal-frames comparison.

    The minimum over ``repeats``, not the median Figure 6 reports:
    interference on a shared machine only ever *adds* time, so for a
    regression gate the minimum is the stable estimator of the code's
    own cost.
    """
    from .experiments.fig6 import make_frame_pair

    first, _ = make_frame_pair()
    duplicate = first.copy()
    grid = GridSpec.from_sample_count(first.shape[:2],
                                      METER_SAMPLE_COUNT)
    comparator = GridComparator(grid)
    comparator.frames_equal(duplicate, first)  # warm-up
    timings = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        comparator.frames_equal(duplicate, first)
        timings.append(time.perf_counter() - t0)
    return float(np.min(timings))


def _native_config(duration_s: float, seed: int = 1) -> SessionConfig:
    return SessionConfig(app="Facebook", governor="section+boost",
                         duration_s=duration_s, seed=seed,
                         resolution_divisor=1)


def _time_native_session(duration_s: float, best_of: int) -> float:
    """Best wall seconds of one native-resolution session.

    Best-of (the minimum), not the mean: wall timings on a shared
    machine are contaminated one-sidedly — interference only ever adds
    time — so the minimum is the stable estimator of the code's cost.
    """
    timings = []
    for _ in range(best_of):
        t0 = time.perf_counter()
        run_session(_native_config(duration_s))
        timings.append(time.perf_counter() - t0)
    return min(timings)


def _batch_configs(sessions: int, duration_s: float
                   ) -> List[SessionConfig]:
    return [_native_config(duration_s, seed=seed)
            for seed in range(sessions)]


def _time_batch(configs: List[SessionConfig], workers: int,
                best_of: int) -> float:
    """Best wall seconds of the batch workload at one worker count."""
    timings = []
    for _ in range(best_of):
        t0 = time.perf_counter()
        run_batch(configs, workers=workers)
        timings.append(time.perf_counter() - t0)
    return min(timings)


def _vector_batch_configs(sessions: int, duration_s: float
                          ) -> List[SessionConfig]:
    """The idle-heavy batch both engines race over (default grids)."""
    from .pipeline import PANELS

    panel = PANELS.get(VECTOR_BATCH_PANEL)()
    return [SessionConfig(app=VECTOR_BATCH_PROFILE, governor="fixed",
                          duration_s=duration_s, seed=seed,
                          panel=panel)
            for seed in range(sessions)]


def _time_vector_vs_scalar(configs: List[SessionConfig],
                           best_of: int) -> Dict[str, float]:
    """Best wall seconds of the idle-heavy batch on each engine.

    The first pass on each engine doubles as the equivalence check:
    the vector engine is only a performance layer, so if its
    summaries are not byte-identical to the scalar ones the timings
    measure a bug, not a speedup — the harness refuses to report
    them.  Best-of minimum afterwards, same rationale as the other
    wall timings.
    """
    scalar_entries = run_batch(configs, workers=1)
    vector_entries = run_batch(configs, workers=1, engine="vector")
    if scalar_entries != vector_entries:
        raise ConfigurationError(
            "vector bench is broken: scalar and vector engines "
            "disagree on the idle-heavy batch")
    scalar_timings = []
    vector_timings = []
    for _ in range(best_of):
        t0 = time.perf_counter()
        run_batch(configs, workers=1)
        scalar_timings.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_batch(configs, workers=1, engine="vector")
        vector_timings.append(time.perf_counter() - t0)
    return {"scalar_s": min(scalar_timings),
            "vector_s": min(vector_timings)}


def _time_spec_roundtrip(repeats: int) -> float:
    """Best seconds of one config -> spec -> JSON -> config round trip.

    This is the batch engine's per-session dispatch overhead; it must
    stay microscopic next to a session's run time, and the gate keeps
    it that way.  Minimum over ``repeats`` for the same reason as the
    meter timing.
    """
    from .pipeline.spec import spec_roundtrip

    config = _native_config(duration_s=30.0)
    spec_roundtrip(config)  # warm-up
    timings = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        spec_roundtrip(config)
        timings.append(time.perf_counter() - t0)
    return float(np.min(timings))


def _time_expose_render(repeats: int) -> float:
    """Best seconds of one Prometheus render of a busy registry.

    The workload is a merged-scrape-sized snapshot group: a service
    registry plus eight shard-labelled registries, each carrying a
    few hundred counters/gauges and a dozen span histograms — more
    than a real scrape sees, so the gate bounds the scrape cost from
    above.  Minimum over ``repeats``, same rationale as the other
    micro timings.
    """
    from .telemetry.expose import render_groups
    from .telemetry.metrics import MetricsRegistry

    edges = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0]
    service = MetricsRegistry()
    for index in range(200):
        service.counter(f"service.op_{index}").inc(index + 1)
        service.gauge(f"service.level_{index}").set(float(index) * 0.5)
    shards = []
    for shard in range(8):
        registry = MetricsRegistry()
        for index in range(50):
            registry.counter(f"worker.op_{index}").inc(index + shard)
        for index in range(12):
            histogram = registry.histogram(
                f"span.stage_{index}_seconds", edges)
            for sample in range(40):
                histogram.observe(0.0007 * (sample + 1))
        shards.append((registry.as_dict(), {"shard": str(shard)}))
    groups = [(service.as_dict(), None)] + shards
    render_groups(groups)  # warm-up
    timings = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        render_groups(groups)
        timings.append(time.perf_counter() - t0)
    return float(np.min(timings))


def _time_sweep_warm_cold(duration_s: float) -> Dict[str, float]:
    """Wall seconds of one small sweep, cold then cache-warm.

    The sweep is a 2-governor x 2-seed grid through
    :func:`repro.analysis.sweep.run_sweep` with a fresh
    :class:`~repro.cache.ResultCache`: the first pass computes and
    stores every cell, the second is served entirely from disk.  The
    ratio ``cold / warm`` is the cache's reason to exist — it must
    stay comfortably above 1, and the gate (with a loose per-metric
    threshold; the warm pass is microseconds, so the ratio is noisy)
    keeps a regression from silently re-simulating cached cells.
    """
    import tempfile

    from .analysis.sweep import run_sweep
    from .cache import ResultCache
    from .pipeline.spec import SessionSpec

    base = SessionSpec(app="Facebook", duration_s=duration_s)
    grid = {"governor": ["fixed", "section+boost"]}
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        cold_doc = run_sweep(base, grid, seeds=(0, 1), workers=1,
                             cache=cache)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_doc = run_sweep(base, grid, seeds=(0, 1), workers=1,
                             cache=cache)
        warm_s = time.perf_counter() - t0
        stats = cache.stats_dict()
    cells = len(cold_doc["cells"])
    if stats["hits"] != cells or cold_doc != warm_doc:
        raise ConfigurationError(
            f"sweep cache bench is broken: {stats['hits']} hits for "
            f"{cells} cells, documents "
            f"{'equal' if cold_doc == warm_doc else 'differ'}")
    return {"cold_s": cold_s, "warm_s": warm_s}


def _time_tournament(duration_s: float) -> float:
    """Wall seconds of one small governor tournament.

    Every registered governor over two catalog apps plus one
    synthetic trace (probe skipped: it adds two fixed-cost trace
    replays that measure nothing tournament-specific).  Guards the
    per-cell cost of the full-registry fan-out — a governor whose
    ``select_rate`` grows a hidden per-decision cost shows up here
    before it shows up in the 30-app run.
    """
    from .experiments.tournament import TournamentConfig, \
        run_tournament

    config = TournamentConfig(apps=("Facebook", "Jelly Splash"),
                              trace_kinds=("video",),
                              duration_s=duration_s,
                              trace_duration_s=duration_s,
                              luminance_probe=False)
    t0 = time.perf_counter()
    run_tournament(config, workers=1)
    return time.perf_counter() - t0


def _time_trace_replay(duration_s: float, best_of: int) -> float:
    """Best wall seconds of one trace-replay session.

    Records a default-resolution session once (recording cost is not
    the metric), then times replaying it under the recorded governor —
    the decode + dirty-rect patch + simulation path the trace
    subsystem adds.  Best-of minimum, same rationale as the other wall
    timings.
    """
    import tempfile

    from .traces import record_session, replay_config

    config = SessionConfig(app="Facebook", governor="section+boost",
                           duration_s=duration_s, seed=1)
    _, trace = record_session(config)
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "bench.rptrace"
        trace.save(path)
        replay = replay_config(path)
        run_session(replay)  # warm-up
        timings = []
        for _ in range(best_of):
            t0 = time.perf_counter()
            run_session(replay)
            timings.append(time.perf_counter() - t0)
    return min(timings)


def run_bench(workers: Optional[int] = None,
              fast: bool = False) -> Dict:
    """Run every workload; returns the bench document (see schema).

    ``workers`` is the parallel worker count for the batch workload
    (``None``: one per CPU); ``fast`` shrinks every workload for
    smoke-testing the harness itself — fast numbers are *not*
    comparable to full-size baselines, and the document records the
    flag so :func:`compare_bench` can refuse the comparison.
    """
    import multiprocessing

    if workers is None:
        workers = multiprocessing.cpu_count()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")

    repeats = 50 if fast else 200
    session_s = 10.0 if fast else 30.0
    sessions = 8 if fast else BATCH_SESSIONS
    batch_session_s = 10.0 if fast else 30.0
    best_of = 1 if fast else 2

    run_session(_native_config(2.0))  # warm-up (imports, caches)
    meter_s = _time_meter_compare(repeats)
    spec_s = _time_spec_roundtrip(repeats)
    expose_s = _time_expose_render(repeats)
    native_s = _time_native_session(session_s, best_of=3)
    replay_s = _time_trace_replay(session_s, best_of=3)
    configs = _batch_configs(sessions, batch_session_s)
    serial_s = _time_batch(configs, workers=1, best_of=best_of)
    parallel_s = _time_batch(configs, workers=workers,
                             best_of=best_of)
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    sweep = _time_sweep_warm_cold(2.0 if fast else 5.0)
    sweep_x = (sweep["cold_s"] / sweep["warm_s"]
               if sweep["warm_s"] > 0 else 0.0)
    tournament_s = _time_tournament(2.0 if fast else 5.0)
    vector_session_s = 20.0 if fast else VECTOR_BATCH_SESSION_S
    vector = _time_vector_vs_scalar(
        _vector_batch_configs(sessions, vector_session_s),
        best_of=best_of)
    vector_x = (vector["scalar_s"] / vector["vector_s"]
                if vector["vector_s"] > 0 else 0.0)

    return {
        "schema": BENCH_SCHEMA,
        "rev": _git_rev(),
        "python": platform.python_version(),
        "cpu_count": multiprocessing.cpu_count(),
        "workers": workers,
        "fast": fast,
        "sessions": sessions,
        "metrics": {
            "meter_compare_9k_s": _metric(meter_s, "s"),
            "spec_roundtrip_s": _metric(spec_s, "s"),
            "expose_render_s": _metric(expose_s, "s"),
            "native_session_s": _metric(native_s, "s"),
            "trace_replay_s": _metric(replay_s, "s"),
            "batch32_workers1_s": _metric(serial_s, "s"),
            "batch32_workersN_s": _metric(parallel_s, "s"),
            "batch32_speedup_x": _metric(speedup, "x",
                                         higher_is_better=True),
            "sweep_warm_vs_cold_x": _metric(sweep_x, "x",
                                            higher_is_better=True),
            "tournament_small_s": _metric(tournament_s, "s"),
            "vector_batch32_s": _metric(vector["vector_s"], "s"),
            "vector_vs_scalar_x": _metric(vector_x, "x",
                                          higher_is_better=True),
        },
    }


#: Metrics that only measure anything on a multicore runner.  They are
#: recorded everywhere (the numbers are still informative) but gated
#: only when both the baseline and the current runner actually had
#: cores to parallelize over — see :func:`gate_skips`.
PARALLEL_METRICS = ("batch32_workersN_s", "batch32_speedup_x")


def gate_skips(current: Dict, baseline: Dict) -> List[Dict]:
    """Per-metric gate exclusions, each with a printable reason.

    The parallel metrics are skipped when the baseline was recorded on
    a single core (``batch32_speedup_x`` ~ 1.0 there gates nothing but
    noise) or when the current runner has fewer cores than the
    baseline machine (an honest runner downgrade is not a code
    regression).  Returns one record per skipped metric: ``metric``,
    ``reason``.
    """
    skips: List[Dict] = []
    base_cores = int(baseline.get("cpu_count", 0) or 0)
    cur_cores = int(current.get("cpu_count", 0) or 0)
    for name in PARALLEL_METRICS:
        if name not in baseline.get("metrics", {}):
            continue
        if base_cores < 2:
            skips.append({
                "metric": name,
                "reason": (f"baseline was recorded on "
                           f"{base_cores} core(s); parallel metrics "
                           f"gate nothing there — regenerate the "
                           f"baseline on a multicore runner"),
            })
        elif cur_cores < base_cores:
            skips.append({
                "metric": name,
                "reason": (f"runner has {cur_cores} core(s), fewer "
                           f"than the baseline's {base_cores}; "
                           f"parallel throughput is not comparable"),
            })
    return skips


def _resolve_threshold(name: str, threshold: float,
                       metric_thresholds: Optional[Dict[str, float]],
                       ) -> float:
    if metric_thresholds and name in metric_thresholds:
        override = metric_thresholds[name]
        if override <= 0:
            raise ConfigurationError(
                f"metric threshold for {name!r} must be > 0, got "
                f"{override}")
        return override
    return threshold


def compare_bench(current: Dict, baseline: Dict,
                  threshold: float = 0.2,
                  metric_thresholds: Optional[Dict[str, float]] = None,
                  ) -> List[Dict]:
    """Regressions of ``current`` against ``baseline``.

    A lower-is-better metric regresses when it exceeds its baseline by
    more than its threshold (fraction); a higher-is-better metric when
    it falls short by more.  ``threshold`` applies to every metric not
    named in ``metric_thresholds`` (per-metric overrides — noisy
    metrics can be gated loosely without loosening the whole gate).  A
    baseline metric the current document lacks is a regression (a
    silently-dropped measurement must not pass the gate); *extra*
    current metrics are fine — that is how new metrics enter the
    baseline.  Metrics excluded by :func:`gate_skips` (parallel
    metrics without the cores to back them) are not gated at all.
    Returns one record per regression (empty: gate passes), each with
    ``metric``, ``baseline``, ``current`` and a human ``message``.
    """
    if threshold <= 0:
        raise ConfigurationError(
            f"threshold must be > 0, got {threshold}")
    for name, document in (("current", current),
                           ("baseline", baseline)):
        if document.get("schema") != BENCH_SCHEMA:
            raise ConfigurationError(
                f"{name} document schema is "
                f"{document.get('schema')!r}, expected "
                f"{BENCH_SCHEMA!r}")
    if bool(current.get("fast")) != bool(baseline.get("fast")):
        raise ConfigurationError(
            "refusing to compare a --fast document against a "
            "full-size one; their workloads differ")
    skipped = {skip["metric"] for skip in gate_skips(current, baseline)}
    regressions = []
    for name, base in baseline["metrics"].items():
        if name in skipped:
            continue
        allowed = _resolve_threshold(name, threshold,
                                     metric_thresholds)
        if name not in current["metrics"]:
            regressions.append({
                "metric": name, "baseline": base["value"],
                "current": None,
                "message": f"{name}: missing from current document",
            })
            continue
        cur = current["metrics"][name]
        if base["higher_is_better"]:
            limit = base["value"] * (1.0 - allowed)
            bad = cur["value"] < limit
            direction = "fell to"
        else:
            limit = base["value"] * (1.0 + allowed)
            bad = cur["value"] > limit
            direction = "rose to"
        if bad:
            regressions.append({
                "metric": name, "baseline": base["value"],
                "current": cur["value"],
                "message": (f"{name}: {direction} "
                            f"{cur['value']:.4g} {cur['unit']} "
                            f"(baseline {base['value']:.4g}, "
                            f"limit {limit:.4g})"),
            })
    return regressions


def format_bench(bench: Dict,
                 baseline: Optional[Dict] = None) -> str:
    """The human table for one bench document.

    With ``baseline``, adds a delta column (signed percent change per
    metric, against the baseline value).  Metrics the core-aware gate
    excludes (see :func:`gate_skips`) show ``SKIPPED (core-aware)``
    there instead of a delta — printing the committed
    ``batch32_speedup_x`` change next to gated metrics reads as a
    verdict the gate never issued.
    """
    headers = ["metric", "value", "unit", "better"]
    skipped = set()
    if baseline is not None:
        headers.append("vs baseline")
        skipped = {skip["metric"]
                   for skip in gate_skips(bench, baseline)}
    rows = []
    for name, metric in bench["metrics"].items():
        row = [name, f"{metric['value']:.4g}", metric["unit"],
               "higher" if metric["higher_is_better"] else "lower"]
        if baseline is not None:
            base = baseline["metrics"].get(name)
            if name in skipped:
                row.append("SKIPPED (core-aware)")
            elif base is None or base["value"] == 0:
                row.append("-")
            else:
                delta = 100.0 * (metric["value"] / base["value"] - 1.0)
                row.append(f"{delta:+.1f}%")
        rows.append(row)
    mode = " (fast)" if bench.get("fast") else ""
    title = (f"repro bench{mode} @ {bench['rev']} — python "
             f"{bench['python']}, {bench['cpu_count']} cpu, "
             f"{bench['workers']} workers")
    return format_table(headers, rows, title=title)


def load_bench(path) -> Dict:
    """Read one bench JSON document.

    Unreadable or malformed baselines raise
    :class:`~repro.errors.ConfigurationError` so the CLI reports a
    one-line error instead of a traceback.
    """
    try:
        text = pathlib.Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read bench baseline {path}: {exc}") from None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"bench baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"bench baseline {path} must be a JSON object, "
            f"got {type(document).__name__}")
    return document


def write_bench(bench: Dict, path=None) -> pathlib.Path:
    """Write a bench document atomically; default ``BENCH_<rev>.json``."""
    from .ioutil import atomic_write_json

    if path is None:
        path = f"BENCH_{bench['rev']}.json"
    return atomic_write_json(pathlib.Path(path), bench)


def main_check(current: Dict, baseline_path,
               threshold: float = 0.2,
               metric_thresholds: Optional[Dict[str, float]] = None,
               ) -> int:
    """Gate helper: print verdict (and skips), return an exit code."""
    baseline = load_bench(baseline_path)
    regressions = compare_bench(current, baseline, threshold,
                                metric_thresholds=metric_thresholds)
    # Verdicts go to stderr so `--json` keeps stdout parseable.
    for skip in gate_skips(current, baseline):
        print(f"bench gate: SKIP {skip['metric']} — {skip['reason']}",
              file=sys.stderr)
    if not regressions:
        print(f"bench gate: OK — no gated metric regressed more than "
              f"its threshold (default {100 * threshold:.0f}%) vs "
              f"{baseline_path}", file=sys.stderr)
        return 0
    print(f"bench gate: FAIL — {len(regressions)} metric(s) "
          f"regressed vs {baseline_path}", file=sys.stderr)
    for regression in regressions:
        print(f"  {regression['message']}", file=sys.stderr)
    return 1
