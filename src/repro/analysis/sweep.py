"""Parameter-grid sweeps with multi-seed statistics and regression
checking.

The survey answers one fixed question (every catalog app under three
governors).  Real experimentation asks *parameterized* questions — how
does power respond to the decision period?  does boost-hold length
trade quality for energy? — which are grids over
:class:`~repro.pipeline.spec.SessionSpec` fields.  This module expands
such grids, fans the resulting specs out over the deterministic batch
runner (optionally through a :class:`~repro.cache.ResultCache`, so a
repeated sweep costs file reads instead of simulation), aggregates
each grid cell across seeds into mean/std/95 % confidence intervals
(Student-t; null rather than zero when a single seed gives the
statistics nothing to say),
and diffs a sweep against a committed reference with per-metric
thresholds (``repro sweep --check``).

Two documents, deliberately separate:

* the **sweep document** (``repro-sweep/1``) holds only deterministic
  content — base spec, grid, seeds, per-cell metrics, aggregates — so
  a cold run and a cache-served warm run are byte-identical and CI can
  literally ``diff`` them;
* the **run-stats document** (``repro-sweep-stats/1``) holds the
  nondeterministic rest — wall clock, cache hit/miss counts — which is
  exactly what cold vs warm runs legitimately disagree about.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..errors import ConfigurationError
from ..pipeline.spec import SessionSpec
from .tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import ResultCache

#: Deterministic sweep document schema.
SWEEP_SCHEMA = "repro-sweep/1"

#: Nondeterministic run-stats document schema.
SWEEP_STATS_SCHEMA = "repro-sweep-stats/1"

#: Summary fields a sweep extracts from each session (power and
#: quality metrics; identity fields like app/governor live in params).
METRIC_FIELDS = ("mean_power_mw", "energy_mj", "mean_refresh_hz",
                 "frame_rate_fps", "content_rate_fps",
                 "redundant_rate_fps", "display_quality",
                 "dropped_fps", "rate_switches")

#: Metrics where a *decrease* is an improvement; everything else in
#: :data:`METRIC_FIELDS` regresses when it drops.
LOWER_IS_BETTER = frozenset({"mean_power_mw", "energy_mj",
                             "redundant_rate_fps", "dropped_fps",
                             "rate_switches"})

#: Spec fields a grid may sweep over (scalar, spec-expressible).
_SWEEPABLE_TYPES = (str, int, float, bool)


def _sweepable_fields() -> Dict[str, type]:
    """Grid-addressable SessionSpec fields and their scalar types."""
    hints = typing.get_type_hints(SessionSpec)
    fields: Dict[str, type] = {}
    for field in dataclasses.fields(SessionSpec):
        hint = hints[field.name]
        if hint in _SWEEPABLE_TYPES:
            fields[field.name] = hint
        elif typing.get_origin(hint) is typing.Union and \
                str in typing.get_args(hint):
            # app / panel: the string (registry key) form is sweepable.
            fields[field.name] = str
    return fields


def _coerce(field: str, kind: type, text: str) -> Any:
    text = text.strip()
    try:
        if kind is bool:
            lowered = text.lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(text)
        return kind(text)
    except ValueError:
        raise ConfigurationError(
            f"grid axis {field!r}: cannot parse {text!r} as "
            f"{kind.__name__}") from None


def parse_grid(text: str) -> Tuple[str, List[Any]]:
    """One ``--grid field=v1,v2,...`` argument -> ``(field, values)``.

    Values coerce to the spec field's declared type (``duration_s=30``
    becomes ``30.0``); unknown or non-scalar fields are rejected with
    the sweepable choices listed.
    """
    field, sep, values_text = text.partition("=")
    field = field.strip()
    fields = _sweepable_fields()
    if not sep or not field:
        raise ConfigurationError(
            f"grid axis {text!r} must look like field=v1,v2")
    if field not in fields:
        raise ConfigurationError(
            f"grid axis {field!r} is not a sweepable spec field; "
            f"choices: {tuple(sorted(fields))}")
    if field == "seed":
        raise ConfigurationError(
            "sweep seeds via --seeds (they are the replication axis), "
            "not as a grid dimension")
    values = [_coerce(field, fields[field], item)
              for item in values_text.split(",") if item.strip()]
    if not values:
        raise ConfigurationError(
            f"grid axis {field!r} needs at least one value")
    deduped = []
    for value in values:
        if value not in deduped:
            deduped.append(value)
    return field, deduped


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> \
        List[Dict[str, Any]]:
    """Cartesian expansion, axes in sorted-name order (deterministic).

    An empty grid expands to one empty cell — "sweep" degenerates to
    "replicate the base spec across seeds".
    """
    axes = sorted(grid)
    combos = itertools.product(*(list(grid[axis]) for axis in axes))
    return [dict(zip(axes, combo)) for combo in combos]


def _cell_specs(base: SessionSpec, params: Mapping[str, Any],
                seeds: Sequence[int]) -> List[SessionSpec]:
    return [dataclasses.replace(base, seed=seed, **params)
            for seed in seeds]


def _finite(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


#: Two-sided 95 % Student-t critical values by degrees of freedom
#: (standard table rows).  Sample std at the typical n=3-5 sweep badly
#: undercovers at the normal z=1.96; the t value is the correct
#: small-sample width.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df >= 1``.

    Degrees of freedom between table rows round *down* to the nearest
    tabulated row — the conservative direction (a slightly wider
    interval), so the reported CI never claims more confidence than
    the sample supports.
    """
    if df < 1:
        raise ConfigurationError(
            f"t critical value needs df >= 1, got {df}")
    if df in _T_CRITICAL_95:
        return _T_CRITICAL_95[df]
    return _T_CRITICAL_95[max(row for row in _T_CRITICAL_95
                              if row <= df)]


def _aggregate(values: List[float]) -> Dict[str, Any]:
    n = len(values)
    if n == 0:
        return {"mean": None, "std": None, "ci95": None, "n": 0}
    mean = sum(values) / n
    if n < 2:
        # One sample carries no dispersion information: std and ci95
        # are unknown (null), not zero — 0.0 would render a single
        # seed as perfect certainty.
        return {"mean": mean, "std": None, "ci95": None, "n": n}
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    ci95 = t_critical_95(n - 1) * std / math.sqrt(n)
    return {"mean": mean, "std": std, "ci95": ci95, "n": n}


def run_sweep(base: SessionSpec, grid: Mapping[str, Sequence[Any]],
              *, seeds: Sequence[int] = (1,),
              workers: Optional[int] = None,
              cache: Optional["ResultCache"] = None,
              engine: str = "scalar") -> Dict[str, Any]:
    """Run the full grid x seeds sweep; returns the sweep document.

    Every ``(params, seed)`` cell is one deterministic session; the
    whole sweep fans out as a single :func:`~repro.sim.batch.run_batch`
    call (fail-fast), so worker count never changes the document and a
    ``cache`` serves repeated cells from disk byte-identically.
    ``engine`` selects the batch execution engine — the document is
    byte-identical whichever engine computed it, so cache entries are
    engine-agnostic (a vector sweep is served from a scalar-warmed
    cache and vice versa).
    """
    from ..sim.batch import run_batch

    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    seeds = list(dict.fromkeys(int(seed) for seed in seeds))
    cells_params = expand_grid(grid)
    specs: List[SessionSpec] = []
    for params in cells_params:
        try:
            specs.extend(_cell_specs(base, params, seeds))
        except TypeError as exc:
            raise ConfigurationError(
                f"grid cell {params!r} does not apply to the base "
                f"spec: {exc}") from None
    entries = run_batch([spec.to_config() for spec in specs],
                        workers=workers, on_error="raise", cache=cache,
                        engine=engine)
    cells = []
    aggregates = []
    flat = iter(zip(specs, entries))
    for params in cells_params:
        samples: Dict[str, List[float]] = {name: []
                                           for name in METRIC_FIELDS}
        for seed in seeds:
            spec, entry = next(flat)
            metrics = {}
            for name in METRIC_FIELDS:
                value = _finite(entry.get(name))
                metrics[name] = value
                if value is not None:
                    samples[name].append(value)
            cells.append({"params": params, "seed": seed,
                          "spec_digest": spec.digest(),
                          "metrics": metrics})
        aggregates.append({
            "params": params,
            "metrics": {name: _aggregate(samples[name])
                        for name in METRIC_FIELDS}})
    return {
        "schema": SWEEP_SCHEMA,
        "base": base.to_json_dict(),
        "grid": {axis: list(grid[axis]) for axis in sorted(grid)},
        "seeds": seeds,
        "cells": cells,
        "aggregates": aggregates,
    }


# ----------------------------------------------------------------------
# Regression checking
# ----------------------------------------------------------------------
def _params_key(params: Mapping[str, Any]) -> Tuple:
    return tuple(sorted((k, repr(v)) for k, v in params.items()))


def compare_sweep(current: Mapping[str, Any],
                  reference: Mapping[str, Any],
                  threshold: float = 0.05,
                  metric_thresholds: Optional[Mapping[str, float]]
                  = None) -> List[Dict[str, Any]]:
    """Regressions of ``current`` against a committed ``reference``.

    A regression is a reference aggregate cell that is missing from
    the current sweep, a metric that lost its value, or a metric mean
    that moved in its *bad* direction (per :data:`LOWER_IS_BETTER`) by
    more than the threshold fraction of the reference mean.
    ``metric_thresholds`` overrides the default per metric name.
    Improvements never flag.
    """
    metric_thresholds = dict(metric_thresholds or {})
    for name, value in metric_thresholds.items():
        if value < 0:
            raise ConfigurationError(
                f"metric threshold {name!r} must be >= 0, got {value}")
    if threshold < 0:
        raise ConfigurationError(
            f"threshold must be >= 0, got {threshold}")
    current_cells = {_params_key(a["params"]): a
                     for a in current.get("aggregates", [])}
    regressions: List[Dict[str, Any]] = []
    for ref_cell in reference.get("aggregates", []):
        params = ref_cell["params"]
        cur_cell = current_cells.get(_params_key(params))
        if cur_cell is None:
            regressions.append({
                "params": params, "metric": None,
                "reference": None, "current": None, "delta_frac": None,
                "threshold": None,
                "reason": "grid cell missing from current sweep"})
            continue
        for name, ref_stats in ref_cell.get("metrics", {}).items():
            ref_mean = _finite((ref_stats or {}).get("mean"))
            if ref_mean is None:
                continue
            allowed = metric_thresholds.get(name, threshold)
            cur_stats = cur_cell.get("metrics", {}).get(name) or {}
            cur_mean = _finite(cur_stats.get("mean"))
            if cur_mean is None:
                regressions.append({
                    "params": params, "metric": name,
                    "reference": ref_mean, "current": None,
                    "delta_frac": None, "threshold": allowed,
                    "reason": "metric missing from current sweep"})
                continue
            delta = cur_mean - ref_mean
            if name in LOWER_IS_BETTER:
                bad = max(0.0, delta)
            else:
                bad = max(0.0, -delta)
            scale = abs(ref_mean)
            bad_frac = (bad / scale) if scale > 0 else \
                (math.inf if bad > 0 else 0.0)
            if bad_frac > allowed:
                direction = "rose" if delta > 0 else "fell"
                regressions.append({
                    "params": params, "metric": name,
                    "reference": ref_mean, "current": cur_mean,
                    "delta_frac": bad_frac, "threshold": allowed,
                    "reason": f"{name} {direction} "
                              f"{100 * bad_frac:.1f}% "
                              f"(allowed {100 * allowed:.1f}%)"})
    return regressions


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_params(params: Mapping[str, Any]) -> str:
    if not params:
        return "(base)"
    return " ".join(f"{k}={v}" for k, v in sorted(params.items()))


def _format_stat(stats: Mapping[str, Any], unit_scale: float = 1.0,
                 digits: int = 1) -> str:
    mean = stats.get("mean")
    if mean is None:
        return "-"
    text = f"{unit_scale * mean:.{digits}f}"
    ci95 = stats.get("ci95")
    # `is not None`, not truthiness: a zero-width interval (all seeds
    # agree exactly) is a legitimate, maximally-informative CI.
    if ci95 is not None and stats.get("n", 0) > 1:
        text += f" ±{unit_scale * ci95:.{digits}f}"
    return text


def format_sweep(document: Mapping[str, Any]) -> str:
    """The sweep's aggregate table (mean ±95 % CI across seeds)."""
    rows = []
    for cell in document.get("aggregates", []):
        metrics = cell.get("metrics", {})
        rows.append([
            _format_params(cell.get("params", {})),
            _format_stat(metrics.get("mean_power_mw", {}), digits=0),
            _format_stat(metrics.get("display_quality", {}),
                         unit_scale=100.0),
            _format_stat(metrics.get("mean_refresh_hz", {})),
            _format_stat(metrics.get("frame_rate_fps", {})),
        ])
    seeds = document.get("seeds", [])
    return format_table(
        ["cell", "power mW", "quality %", "refresh Hz", "fps"],
        rows,
        title=f"sweep: {len(rows)} cells x {len(seeds)} seeds")


def format_regressions(regressions: Sequence[Mapping[str, Any]]) -> str:
    """Human-readable regression report (empty list -> all-clear)."""
    if not regressions:
        return "sweep check: OK (no metric regressed)"
    lines = [f"sweep check: {len(regressions)} regression(s)"]
    for item in regressions:
        params = _format_params(item.get("params", {}))
        lines.append(f"  {params}: {item['reason']}")
    return "\n".join(lines)
