"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows the paper's tables and figures report;
this module owns the formatting so every bench looks the same.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Cells are converted with ``str``; floats should be pre-formatted by
    the caller so each experiment controls its own precision.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells for {len(headers)} "
                f"columns")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
