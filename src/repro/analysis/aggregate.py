"""Category aggregation — the machinery behind Table 1.

Given per-app measurements for one control method (power saved and
display quality against the fixed-60 Hz baseline), aggregate them into
the paper's category rows: mean ± std of saved power (%) and display
quality (%) over the 15 apps of each category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..apps.profile import AppCategory
from ..errors import ConfigurationError
from .stats import MeanStd, mean_std


@dataclass(frozen=True)
class AppMeasurement:
    """One app's outcome under one control method."""

    app_name: str
    category: AppCategory
    baseline_power_mw: float
    governed_power_mw: float
    display_quality: float  # fraction in [0, 1]

    @property
    def saved_power_mw(self) -> float:
        """Milliwatts saved against the fixed baseline."""
        return self.baseline_power_mw - self.governed_power_mw

    @property
    def saved_power_percent(self) -> float:
        """Percentage of baseline power saved."""
        if self.baseline_power_mw <= 0:
            raise ConfigurationError(
                f"{self.app_name}: baseline power must be > 0")
        return 100.0 * self.saved_power_mw / self.baseline_power_mw

    @property
    def display_quality_percent(self) -> float:
        """Display quality as a percentage."""
        return 100.0 * self.display_quality


@dataclass(frozen=True)
class MethodSummary:
    """One (category, method) cell pair of Table 1."""

    method: str
    category: AppCategory
    saved_power_percent: MeanStd
    saved_power_mw: MeanStd
    display_quality_percent: MeanStd
    n_apps: int


@dataclass(frozen=True)
class CategorySummary:
    """All methods' summaries for one category."""

    category: AppCategory
    methods: Dict[str, MethodSummary]


def summarize_method(method: str, category: AppCategory,
                     measurements: Sequence[AppMeasurement]
                     ) -> MethodSummary:
    """Aggregate one method over one category's apps."""
    rows = [m for m in measurements if m.category is category]
    if not rows:
        raise ConfigurationError(
            f"no measurements for category {category.value!r}")
    return MethodSummary(
        method=method,
        category=category,
        saved_power_percent=mean_std(
            [m.saved_power_percent for m in rows]),
        saved_power_mw=mean_std([m.saved_power_mw for m in rows]),
        display_quality_percent=mean_std(
            [m.display_quality_percent for m in rows]),
        n_apps=len(rows),
    )


def summarize_categories(
        per_method: Mapping[str, Sequence[AppMeasurement]]
) -> List[CategorySummary]:
    """Build the full Table 1 structure.

    ``per_method`` maps a method name (e.g. ``"section"``,
    ``"section+boost"``) to its per-app measurements across *both*
    categories.
    """
    if not per_method:
        raise ConfigurationError("no methods to summarize")
    summaries = []
    for category in (AppCategory.GENERAL, AppCategory.GAME):
        methods = {
            method: summarize_method(method, category, rows)
            for method, rows in per_method.items()
        }
        summaries.append(CategorySummary(category=category,
                                         methods=methods))
    return summaries
