"""Summary statistics used throughout the evaluation.

The paper's reporting conventions, reproduced here:

* headline numbers are **mean ± standard deviation across the
  applications of a category** (Table 1's "18.6 (±8.93)");
* robustness claims are phrased as "for 80 % of applications, X is
  less/more than Y" — a percentile across apps
  (:func:`percentile_of_apps`);
* power savings are reported both in milliwatts and as a percentage of
  the fixed-60 Hz baseline (:func:`savings_percent`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MeanStd:
    """A mean with its standard deviation (population std, ddof=0)."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.1f} (±{self.std:.2f})"


def mean_std(values: Sequence[float]) -> MeanStd:
    """Mean ± std of a sample (std is 0 for a single value)."""
    if len(values) == 0:
        raise ConfigurationError("mean_std of an empty sample")
    arr = np.asarray(values, dtype=float)
    return MeanStd(mean=float(arr.mean()),
                   std=float(arr.std(ddof=0)),
                   n=len(arr))


def percentile_of_apps(values: Sequence[float], fraction: float,
                       tail: str = "upper") -> float:
    """The paper's "for <fraction> of applications" statistic.

    ``tail="upper"`` answers "for 80 % of apps the value is AT LEAST"
    (the 20th percentile); ``tail="lower"`` answers "for 80 % of apps
    the value is AT MOST" (the 80th percentile).
    """
    if len(values) == 0:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(
            f"fraction must be in (0, 1), got {fraction}")
    arr = np.asarray(values, dtype=float)
    if tail == "upper":
        return float(np.percentile(arr, 100.0 * (1.0 - fraction)))
    if tail == "lower":
        return float(np.percentile(arr, 100.0 * fraction))
    raise ConfigurationError(f"tail must be 'upper' or 'lower', got "
                             f"{tail!r}")


def savings_percent(baseline_mw: float, governed_mw: float) -> float:
    """Power saved as a percentage of the baseline."""
    if baseline_mw <= 0:
        raise ConfigurationError(
            f"baseline power must be > 0, got {baseline_mw}")
    return 100.0 * (baseline_mw - governed_mw) / baseline_mw
