"""Touch-to-display latency analysis (extension).

Refresh-rate control changes more than power: at 20 Hz a V-Sync slot is
50 ms wide, so the first frame reacting to a touch can land tens of
milliseconds later than it would at 60 Hz.  Touch boosting exists
precisely to cap this.  This module measures it: for every touch, the
delay until the next *meaningful* frame reaches the framebuffer.

The metric corresponds to what phone vendors call touch latency
(minus the digitizer/render constants, which are governor-independent
and cancel out of comparisons).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_positive


@dataclass(frozen=True)
class LatencyReport:
    """Touch-response latency statistics for one session."""

    latencies_s: np.ndarray
    touches: int
    unanswered: int

    @property
    def answered(self) -> int:
        """Touches that produced a meaningful frame within the timeout."""
        return len(self.latencies_s)

    @property
    def mean_s(self) -> float:
        """Mean response latency."""
        if len(self.latencies_s) == 0:
            raise ConfigurationError("no answered touches; no mean")
        return float(self.latencies_s.mean())

    @property
    def p95_s(self) -> float:
        """95th-percentile response latency."""
        if len(self.latencies_s) == 0:
            raise ConfigurationError("no answered touches; no p95")
        return float(np.percentile(self.latencies_s, 95.0))

    @property
    def worst_s(self) -> float:
        """Worst answered latency."""
        if len(self.latencies_s) == 0:
            raise ConfigurationError("no answered touches; no worst")
        return float(self.latencies_s.max())


def touch_response_latencies(touch_times: Sequence[float],
                             meaningful_frame_times: Sequence[float],
                             timeout_s: float = 2.0) -> LatencyReport:
    """Latency from each touch to the next meaningful displayed frame.

    Parameters
    ----------
    touch_times:
        When each touch landed.
    meaningful_frame_times:
        When meaningful frames reached the framebuffer (ground truth:
        the compositor's meaningful-composition log).
    timeout_s:
        Touches with no meaningful frame within this window count as
        *unanswered* (the app genuinely showed nothing) and are
        excluded from the latency sample rather than polluting it.
    """
    ensure_positive(timeout_s, "timeout_s")
    frames = sorted(float(t) for t in meaningful_frame_times)
    latencies = []
    unanswered = 0
    for touch in touch_times:
        idx = bisect.bisect_right(frames, touch)
        if idx < len(frames) and frames[idx] - touch <= timeout_s:
            latencies.append(frames[idx] - touch)
        else:
            unanswered += 1
    return LatencyReport(
        latencies_s=np.asarray(latencies, dtype=float),
        touches=len(list(touch_times)),
        unanswered=unanswered,
    )


def session_touch_latency(result, timeout_s: float = 2.0) -> LatencyReport:
    """Latency report for a :class:`~repro.sim.session.SessionResult`."""
    return touch_response_latencies(
        result.touch_script.times,
        result.meaningful_compositions.times,
        timeout_s=timeout_s,
    )
